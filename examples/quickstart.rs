//! Quickstart: build a small WattDB cluster, load TPC-C, run an OLTP mix,
//! and trigger a physiological rebalance.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wattdb_common::{NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;

fn main() {
    // A 6-node cluster; data initially lives on nodes 0 and 1, the other
    // four are in standby drawing 2.5 W each.
    let mut db = WattDb::builder()
        .nodes(6)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.02)
        .segment_pages(16)
        .seed(42)
        .initial_data_nodes(&[NodeId(0), NodeId(1)])
        .build();

    println!("cluster up: power draw {:.1} W", db.power_now());

    // 16 closed-loop clients with 100 ms mean think time.
    db.start_oltp(16, SimDuration::from_millis(100));
    db.run_for(SimDuration::from_secs(30));
    println!(
        "after 30 s: {} transactions completed ({} aborted), {:.1} W",
        db.completed(),
        db.aborted(),
        db.power_now()
    );

    // Move half the data onto two freshly powered nodes, §4.3-style:
    // master first, segment read locks, bulk copies, ownership switch.
    db.rebalance(0.5, &[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
    while db.rebalancing() {
        db.run_for(SimDuration::from_secs(10));
    }
    let report = db.last_rebalance().expect("rebalanced");
    println!(
        "rebalanced: {} segments in {:.1} s ({} bytes shipped)",
        report.segments_moved,
        report.finished.since(report.started).as_secs_f64(),
        report.bytes_moved
    );

    // Keep serving: the new nodes now own half the key space.
    db.run_for(SimDuration::from_secs(30));
    db.stop_clients();
    println!(
        "final: {} transactions, cluster at {:.1} W across {} active nodes",
        db.completed(),
        db.power_now(),
        db.active_nodes().len()
    );

    // Per-bucket series (the Fig. 6 data for this run).
    println!("\n t(s)      qps   resp(ms)      W");
    for (at, qps, resp, watts, _) in db.timeseries() {
        println!(
            "{:>5.0} {:>8.1} {:>10.2} {:>6.1}",
            at.as_secs_f64(),
            qps,
            resp,
            watts
        );
    }
}
