//! Energy report: why the cluster must resize itself (§1/§3.1 quantified).
//!
//! A fixed-size cluster draws nearly constant power regardless of load —
//! the classic energy-proportionality failure that motivates WattDB. The
//! same workload on a right-sized cluster (standby nodes at 2.5 W) costs
//! far fewer Joules per query at low utilization.
//!
//! ```sh
//! cargo run --release --example energy_report
//! ```

use wattdb_common::{NodeId, SimDuration, Watts};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;
use wattdb_energy::{proportionality_index, UtilPower};

/// Run `clients` against a cluster whose data lives on `data_nodes`;
/// returns (qps, mean W).
fn measure(clients: u32, data_nodes: &[NodeId]) -> (f64, f64) {
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(2)
        .density(0.02)
        .segment_pages(16)
        .seed(5)
        .initial_data_nodes(data_nodes)
        .build();
    if clients > 0 {
        db.start_oltp(clients, SimDuration::from_millis(50));
    }
    db.run_for(SimDuration::from_secs(30));
    db.stop_clients();
    db.with_cluster(|c| {
        let samples = c.meter.series();
        let mean_w = samples.iter().map(|s| s.power.0).sum::<f64>() / samples.len().max(1) as f64;
        let qps = c.metrics.completed as f64 / 30.0;
        (qps, mean_w)
    })
}

fn main() {
    println!("Energy report — fixed 4-node-capable cluster vs right-sized\n");
    println!(
        "{:>8} {:>9} | {:>9} {:>11} | {:>9} {:>11}",
        "clients", "qps", "2-node W", "J/query", "sized W", "J/query"
    );
    let levels: [(u32, usize); 6] = [(0, 1), (2, 1), (4, 1), (8, 1), (16, 2), (32, 2)];
    let two = [NodeId(0), NodeId(1)];
    let one = [NodeId(0)];
    let mut fixed_obs = Vec::new();
    let mut sized_obs = Vec::new();
    let mut rows = Vec::new();
    let mut peak: f64 = 1.0;
    for &(n, nodes) in &levels {
        let (qps, w_fixed) = measure(n, &two);
        let (qps_sized, w_sized) = if nodes == 1 {
            measure(n, &one)
        } else {
            (qps, w_fixed)
        };
        peak = peak.max(qps.max(qps_sized));
        rows.push((n, qps, w_fixed, qps_sized, w_sized));
    }
    for &(n, qps, w_fixed, qps_sized, w_sized) in &rows {
        let jpq_fixed = if qps > 0.0 { w_fixed / qps } else { f64::NAN };
        let jpq_sized = if qps_sized > 0.0 {
            w_sized / qps_sized
        } else {
            f64::NAN
        };
        println!(
            "{n:>8} {qps:>9.1} | {w_fixed:>9.1} {jpq_fixed:>11.2} | {w_sized:>9.1} {jpq_sized:>11.2}"
        );
        fixed_obs.push(UtilPower {
            utilization: qps / peak,
            power: Watts(w_fixed),
        });
        sized_obs.push(UtilPower {
            utilization: qps_sized / peak,
            power: Watts(w_sized),
        });
    }
    println!(
        "\nenergy-proportionality index: fixed {:.3} vs right-sized {:.3}",
        proportionality_index(&fixed_obs),
        proportionality_index(&sized_obs)
    );
    println!("\nA fixed cluster burns ~constant Watts regardless of load (the §1");
    println!("motivation); suspending idle nodes to 2.5 W standby is what makes");
    println!("the cluster approach energy proportionality — and why repartitioning");
    println!("speed (Fig. 6) matters: it is the cost of changing size.");
}
