//! Elastic scale-out driven by the §3.4 monitoring/policy loop: the
//! cluster watches its own utilization and powers nodes up when the 80 %
//! CPU bound is breached, moving data physiologically.
//!
//! ```sh
//! cargo run --release --example elastic_scaleout
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use wattdb_common::{CostParams, NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;
use wattdb_core::monitor::start_monitoring;
use wattdb_core::policy::{apply, Decision, ElasticityPolicy, PolicyConfig};
use wattdb_energy::NodeState;

fn main() {
    // Heavier per-operation CPU (the full SQL-layer work on wimpy Atom
    // cores) so a single node saturates under this client load.
    let mut costs = CostParams::default();
    costs.index_node_visit = costs.index_node_visit * 40;
    costs.record_read = costs.record_read * 40;
    costs.record_write = costs.record_write * 40;
    costs.log_append = costs.log_append * 40;
    costs.buffer_hit = costs.buffer_hit * 40;
    let mut db = WattDb::builder()
        .nodes(6)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.02)
        .segment_pages(16)
        .io_scale(50)
        .costs(costs)
        .seed(1)
        .initial_data_nodes(&[NodeId(0)])
        .build();

    // One node serves everything; a heavy client load will push its CPU
    // past the threshold.
    db.start_oltp(48, SimDuration::from_millis(30));

    let policy = Rc::new(RefCell::new(ElasticityPolicy::new(PolicyConfig {
        cpu_high: 0.8,
        cpu_low: 0.2,
        patience: 2,
        move_fraction: 0.5,
    })));
    let decisions: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let policy = policy.clone();
        let decisions = decisions.clone();
        start_monitoring(
            &db.cluster,
            &mut db.sim,
            SimDuration::from_secs(5),
            move |cl, sim, view| {
                let (standby, with_data) = {
                    let c = cl.borrow();
                    let standby: Vec<NodeId> = c
                        .nodes
                        .iter()
                        .filter(|n| n.state == NodeState::Standby)
                        .map(|n| n.id)
                        .collect();
                    let mut with_data: Vec<NodeId> = c
                        .nodes
                        .iter()
                        .filter(|n| c.seg_dir.on_node(n.id).next().is_some())
                        .map(|n| n.id)
                        .collect();
                    with_data.sort_unstable();
                    (standby, with_data)
                };
                let decision = policy.borrow_mut().evaluate(view, &standby, &with_data);
                if decision != Decision::Hold {
                    decisions.borrow_mut().push(format!(
                        "t={:>4.0}s  mean cpu {:>4.1}%  -> {:?}",
                        sim.now().as_secs_f64(),
                        view.mean_active_cpu() * 100.0,
                        decision
                    ));
                    apply(cl, sim, &decision, 0.5);
                }
            },
        );
    }

    db.run_for(SimDuration::from_secs(180));
    db.stop_clients();

    println!("policy decisions:");
    for d in decisions.borrow().iter() {
        println!("  {d}");
    }
    let c = db.cluster.borrow();
    let active = c.active_nodes();
    println!(
        "\nactive nodes at end: {:?} ({} segments total)",
        active,
        c.seg_dir.len()
    );
    for n in &active {
        let segs = c.seg_dir.on_node(*n).count();
        println!("  {n}: {segs} segments");
    }
    assert!(
        active.len() > 1,
        "the policy should have scaled out under this load"
    );
    println!("\nscale-out happened autonomously — no manual rebalance call.");
}
