//! Elastic scale-out driven by the §3.4 control loop: the cluster watches
//! its own utilization and powers nodes up when the 80 % CPU bound is
//! breached, moving data physiologically — no manual rebalance calls,
//! just the autopilot.
//!
//! ```sh
//! cargo run --release --example elastic_scaleout
//! ```

use wattdb_common::{CostParams, NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;
use wattdb_core::policy::PolicyConfig;

fn main() {
    // Heavier per-operation CPU (the full SQL-layer work on wimpy Atom
    // cores) so a single node saturates under this client load.
    let mut costs = CostParams::default();
    costs.index_node_visit = costs.index_node_visit * 40;
    costs.record_read = costs.record_read * 40;
    costs.record_write = costs.record_write * 40;
    costs.log_append = costs.log_append * 40;
    costs.buffer_hit = costs.buffer_hit * 40;

    let mut db = WattDb::builder()
        .nodes(6)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.02)
        .segment_pages(16)
        .io_scale(50)
        .costs(costs)
        .seed(1)
        .initial_data_nodes(&[NodeId(0)])
        .policy(PolicyConfig {
            cpu_high: 0.8,
            cpu_low: 0.2,
            patience: 2,
            move_fraction: 0.5,
            ..Default::default()
        })
        .monitoring(SimDuration::from_secs(5))
        .autopilot(true)
        .build();

    // One node serves everything; a heavy client load will push its CPU
    // past the threshold and the autopilot takes it from there.
    db.start_oltp(48, SimDuration::from_millis(30));
    db.run_for(SimDuration::from_secs(180));
    db.stop_clients();

    println!("autopilot decisions:");
    for e in db.events() {
        println!(
            "  t={:>4.0}s  mean cpu {:>4.1}%  max {:>4.1}%  [{}] {:?} -> {:?}",
            e.at.as_secs_f64(),
            e.view.mean_active_cpu * 100.0,
            e.view.max_cpu * 100.0,
            e.planner.label(),
            e.decision,
            e.outcome,
        );
    }

    if let Some(r) = db.last_rebalance() {
        println!(
            "\nlast rebalance: planner={} segments={} bytes={} heat planned={:.1} moved={:.1}",
            r.planner.label(),
            r.segments_moved,
            r.bytes_moved,
            r.heat_planned,
            r.heat_moved,
        );
    }
    println!("\nhottest segments now:");
    for s in db.heat().into_iter().take(5) {
        println!(
            "  seg {:>4} on {}  heat {:>8.2}  (r {} / w {} / remote {})",
            s.seg.raw(),
            s.node,
            s.heat,
            s.reads,
            s.writes,
            s.remote_fetches,
        );
    }

    let status = db.status();
    println!(
        "\nactive nodes at end: {} of {} ({} segments total)",
        status.active_nodes,
        status.nodes.len(),
        status.segments
    );
    for n in status.nodes.iter().filter(|n| n.segments > 0) {
        println!("  {}: {} segments ({:?})", n.node, n.segments, n.state);
    }
    assert!(
        status.active_nodes > 1,
        "the autopilot should have scaled out under this load"
    );
    println!("\nscale-out happened autonomously — no manual rebalance call.");
}
