//! Scheme shoot-out: a compact Fig. 6 — physical vs logical vs
//! physiological repartitioning under identical OLTP load.
//!
//! ```sh
//! cargo run --release --example scheme_shootout
//! ```

use wattdb_common::{NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;

struct Outcome {
    scheme: Scheme,
    dip_qps: f64,
    recovered_qps: f64,
    rebalance_secs: Option<f64>,
    mean_resp_after: f64,
}

fn run(scheme: Scheme) -> Outcome {
    let mut db = WattDb::builder()
        .nodes(6)
        .scheme(scheme)
        .warehouses(4)
        .density(0.02)
        .segment_pages(16)
        .io_scale(200)
        .bucket(SimDuration::from_secs(5))
        .seed(3)
        .initial_data_nodes(&[NodeId(0), NodeId(1)])
        .build();
    db.start_oltp(16, SimDuration::from_millis(80));
    db.run_for(SimDuration::from_secs(30));
    let trigger = db.now();
    db.rebalance(0.5, &[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
    db.run_for(SimDuration::from_secs(90));
    db.stop_clients();
    let rebalance_secs = db
        .last_rebalance()
        .map(|r| r.finished.since(r.started).as_secs_f64());
    let series = db.timeseries();
    let t0 = trigger.as_secs_f64();
    let during: Vec<f64> = series
        .iter()
        .filter(|(at, ..)| {
            let t = at.as_secs_f64();
            t >= t0 && t < t0 + 30.0
        })
        .map(|&(_, qps, ..)| qps)
        .collect();
    let after: Vec<(f64, f64)> = series
        .iter()
        .filter(|(at, ..)| at.as_secs_f64() >= t0 + 60.0)
        .map(|&(_, qps, resp, ..)| (qps, resp))
        .collect();
    let dip = during.iter().copied().fold(f64::INFINITY, f64::min);
    let rec = after.iter().map(|(q, _)| *q).sum::<f64>() / after.len().max(1) as f64;
    let resp = after.iter().map(|(_, r)| *r).sum::<f64>() / after.len().max(1) as f64;
    Outcome {
        scheme,
        dip_qps: dip,
        recovered_qps: rec,
        rebalance_secs,
        mean_resp_after: resp,
    }
}

fn main() {
    println!("Scheme shoot-out: move 50% of TPC-C from 2 nodes to 2 fresh nodes\n");
    println!(
        "{:<16} {:>10} {:>14} {:>14} {:>14}",
        "scheme", "dip qps", "qps after", "resp(ms) after", "move time(s)"
    );
    let mut results = Vec::new();
    for scheme in [Scheme::Physical, Scheme::Logical, Scheme::Physiological] {
        let o = run(scheme);
        println!(
            "{:<16} {:>10.1} {:>14.1} {:>14.2} {:>14}",
            o.scheme.label(),
            o.dip_qps,
            o.recovered_qps,
            o.mean_resp_after,
            o.rebalance_secs
                .map(|s| format!("{s:.0}"))
                .unwrap_or_else(|| "running".into()),
        );
        results.push(o);
    }
    let physical = &results[0];
    let physio = &results[2];
    println!();
    if physio.recovered_qps > physical.recovered_qps {
        println!(
            "physiological ends {:.0}% above physical — ownership moved with the segments.",
            (physio.recovered_qps / physical.recovered_qps - 1.0) * 100.0
        );
    }
    println!("(paper §5.2: physiological delivers the best energy efficiency and adaptivity)");
}
