//! Integration: full cluster lifecycle — load, serve, rebalance under
//! load, verify §4.3's correctness obligations end to end.

use wattdb_common::{NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;

fn build(scheme: Scheme, seed: u64) -> WattDb {
    WattDb::builder()
        .nodes(6)
        .scheme(scheme)
        .warehouses(4)
        .density(0.01)
        .segment_pages(8)
        .seed(seed)
        .initial_data_nodes(&[NodeId(0), NodeId(1)])
        .build()
}

/// Checksum of all (table-agnostic) keys to detect loss/duplication.
fn key_checksum(db: &WattDb) -> u64 {
    db.with_cluster(|c| {
        let mut sum: u64 = 0;
        for idx in c.indexes.values() {
            for (k, _) in idx.entries() {
                sum = sum.wrapping_add(k.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
        }
        sum
    })
}

#[test]
fn physiological_move_preserves_every_record() {
    let mut db = build(Scheme::Physiological, 1);
    let before_keys = db.live_records();
    let before_sum = key_checksum(&db);
    db.rebalance(0.5, &[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
    db.run_for(SimDuration::from_secs(200));
    assert!(!db.rebalancing(), "move finished");
    assert_eq!(
        db.live_records(),
        before_keys,
        "no record lost or duplicated"
    );
    assert_eq!(key_checksum(&db), before_sum, "exact key population");
    // Ownership genuinely moved: targets now hold segments.
    assert!(db.segments_on(NodeId(2)) > 0);
    assert!(db.segments_on(NodeId(3)) > 0);
}

#[test]
fn logical_move_preserves_every_record() {
    let mut db = build(Scheme::Logical, 2);
    let before_keys = db.live_records();
    db.rebalance(0.5, &[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
    for _ in 0..240 {
        db.run_for(SimDuration::from_secs(5));
        if !db.rebalancing() {
            break;
        }
    }
    assert!(!db.rebalancing(), "logical move finished");
    // The logical move tombstones source records; vacuum reclaims them,
    // leaving exactly the original key population (now at the targets).
    db.vacuum();
    assert_eq!(db.live_records(), before_keys);
    assert!(db.last_rebalance().unwrap().records_moved > 0);
}

#[test]
fn physical_move_keeps_ownership_but_relocates_storage() {
    let mut db = build(Scheme::Physical, 3);
    let router_before = db.with_cluster(|c| c.router.nodes_with_data());
    db.rebalance(0.5, &[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
    db.run_for(SimDuration::from_secs(200));
    assert!(!db.rebalancing());
    // Storage moved...
    assert!(db.segments_on(NodeId(2)) > 0);
    // ...but query ownership did not: the router still names only the
    // original nodes (that is physical partitioning's defect, §4.1/§5.2).
    assert_eq!(
        db.with_cluster(|c| c.router.nodes_with_data()),
        router_before
    );
}

#[test]
fn rebalance_under_load_serves_queries_throughout() {
    let mut db = build(Scheme::Physiological, 4);
    db.start_oltp(8, SimDuration::from_millis(50));
    db.run_for(SimDuration::from_secs(10));
    let before = db.completed();
    db.rebalance(0.5, &[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
    db.run_for(SimDuration::from_secs(30));
    let during_or_after = db.completed();
    assert!(
        during_or_after > before + 50,
        "queries keep completing while repartitioning ({before} -> {during_or_after})"
    );
    db.stop_clients();
}

#[test]
fn transactions_started_before_move_read_consistently() {
    // §4.3 proof obligation 1: a snapshot taken before rebalancing stays
    // readable afterwards (MVCC keeps old versions).
    let mut db = build(Scheme::Physiological, 5);
    let key = wattdb_tpcc::keys::customer(3, 2, 1);
    let table = wattdb_tpcc::TpccTable::Customer.table_id();
    // Start a long transaction before the move.
    let (snap_txn, seg_before) = db.with_cluster_mut(|c| {
        let txn = c.txn.begin(wattdb_txn::TxnKind::User);
        let route = c.router.route(table, key).unwrap();
        let part = &c.partitions[&route.primary.partition];
        let seg = part.top.segment_for(key).unwrap();
        (txn, seg)
    });
    let before_payload = db.with_cluster(|c| {
        let idx = &c.indexes[&seg_before];
        c.txn
            .read(snap_txn, idx, &c.store, key)
            .unwrap()
            .unwrap()
            .payload
    });
    db.rebalance(0.5, &[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
    db.run_for(SimDuration::from_secs(200));
    assert!(!db.rebalancing());
    // The old transaction still reads its snapshot — the segment index
    // moved intact with the segment.
    let after_payload = db.with_cluster(|c| {
        let route = c.router.route(table, key).unwrap();
        let part = &c.partitions[&route.primary.partition];
        let seg = part.top.segment_for(key).unwrap();
        let idx = &c.indexes[&seg];
        c.txn
            .read(snap_txn, idx, &c.store, key)
            .unwrap()
            .unwrap()
            .payload
    });
    assert_eq!(before_payload, after_payload);
}

#[test]
fn transactions_after_move_route_to_new_node() {
    // §4.3 proof obligation 2: post-move transactions go to the new owner.
    let mut db = build(Scheme::Physiological, 6);
    let key = wattdb_tpcc::keys::customer(3, 9, 2);
    let table = wattdb_tpcc::TpccTable::Customer.table_id();
    let owner_before = db.with_cluster(|c| c.router.route(table, key).unwrap().primary.node);
    db.rebalance(0.5, &[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
    db.run_for(SimDuration::from_secs(200));
    let res = db.with_cluster(|c| c.router.route(table, key).unwrap());
    // Warehouse 3 sits in the upper half of node 1's range: it moved.
    assert_ne!(res.primary.node, owner_before, "ownership transferred");
    assert_eq!(res.also, None, "old pointer deleted after the move");
}

#[test]
fn deterministic_experiments() {
    let run = |seed: u64| {
        let mut db = build(Scheme::Physiological, seed);
        db.start_oltp(4, SimDuration::from_millis(50));
        db.run_for(SimDuration::from_secs(10));
        db.stop_clients();
        db.completed()
    };
    assert_eq!(run(42), run(42), "same seed, same result");
    assert_ne!(run(42), run(43), "different seed, different interleaving");
}
