//! Integration: the full §3.4 elasticity round trip, driven purely by the
//! autopilot — no manual `rebalance()` calls anywhere.
//!
//! One node starts hot under a heavy client load; the controller must
//! notice the 80 % CPU breach, power a standby node on, and repartition
//! onto it (scale-out). Then the load stops; the controller must notice
//! the idle cluster, drain the extra node, and power it back down to
//! standby (scale-in + suspension).

use wattdb_common::{CostParams, NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::autopilot::Outcome;
use wattdb_core::cluster::Scheme;
use wattdb_core::policy::{Decision, PolicyConfig};
use wattdb_energy::NodeState;

/// Heavier per-operation CPU (the full SQL-layer work on wimpy Atom
/// cores) so a single node saturates under this client load.
fn heavy_costs() -> CostParams {
    let mut costs = CostParams::default();
    costs.index_node_visit = costs.index_node_visit * 40;
    costs.record_read = costs.record_read * 40;
    costs.record_write = costs.record_write * 40;
    costs.log_append = costs.log_append * 40;
    costs.buffer_hit = costs.buffer_hit * 40;
    costs
}

#[test]
fn autopilot_scales_out_under_load_and_back_in_when_idle() {
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.02)
        .segment_pages(16)
        .costs(heavy_costs())
        .seed(1)
        .initial_data_nodes(&[NodeId(0)])
        .policy(PolicyConfig {
            cpu_high: 0.8,
            cpu_low: 0.2,
            patience: 2,
            move_fraction: 0.5,
            ..Default::default()
        })
        .monitoring(SimDuration::from_secs(5))
        .autopilot(true)
        .build();

    // ---- Phase 1: hot node 0 forces an automatic scale-out.
    db.start_oltp(48, SimDuration::from_millis(30));
    let mut scaled_out = false;
    for _ in 0..60 {
        db.run_for(SimDuration::from_secs(5));
        let spread = db
            .active_nodes()
            .iter()
            .filter(|&&n| db.segments_on(n) > 0)
            .count();
        if spread > 1 && !db.rebalancing() {
            scaled_out = true;
            break;
        }
    }
    assert!(scaled_out, "autopilot never scaled out: {:?}", db.events());

    let events = db.events();
    let scale_out = events
        .iter()
        .find(|e| matches!(e.decision, Decision::ScaleOut { .. }))
        .expect("scale-out decision logged");
    assert_eq!(scale_out.outcome, Outcome::Applied);
    assert!(
        scale_out.view.max_cpu > 0.8,
        "scale-out was driven by a CPU breach: {:?}",
        scale_out.view
    );
    let target = match &scale_out.decision {
        Decision::ScaleOut { targets, .. } => targets[0],
        _ => unreachable!(),
    };
    assert!(
        db.segments_on(target) > 0,
        "segments arrived on the powered-on node {target}"
    );
    // The default planner is heat-aware; the event log and the rebalance
    // report both record it, along with the heat it relocated.
    assert_eq!(scale_out.planner, wattdb_core::Planner::HeatAware);
    let report = db.last_rebalance().expect("rebalance completed");
    assert_eq!(report.planner, wattdb_core::Planner::HeatAware);
    assert!(
        report.heat_planned > 0.0 && report.heat_moved > 0.0,
        "planned/moved heat recorded: {report:?}"
    );

    // ---- Phase 2: the load stops; the idle cluster must shrink again.
    db.stop_clients();
    // Let in-flight transactions drain, then freeze the record population
    // (the scale-in itself fires only after `patience` idle windows, well
    // after quiescence).
    for _ in 0..100 {
        db.run_for(SimDuration::from_millis(500));
        if db.with_cluster(|c| c.jobs.is_empty()) {
            break;
        }
    }
    db.vacuum();
    let records_at_rest = db.live_records();
    let mut suspended: Option<Vec<NodeId>> = None;
    for _ in 0..120 {
        db.run_for(SimDuration::from_secs(5));
        if let Some(nodes) = db.events().iter().find_map(|e| match &e.outcome {
            Outcome::Suspended { nodes } if !nodes.is_empty() => Some(nodes.clone()),
            _ => None,
        }) {
            suspended = Some(nodes);
            break;
        }
    }
    let suspended =
        suspended.unwrap_or_else(|| panic!("autopilot never scaled back in: {:?}", db.events()));

    let events = db.events();
    let scale_in = events
        .iter()
        .find(|e| matches!(e.decision, Decision::ScaleIn { .. }) && e.outcome == Outcome::Applied)
        .expect("scale-in decision logged");
    assert!(
        scale_in.view.mean_active_cpu < 0.2,
        "scale-in was driven by idleness: {:?}",
        scale_in.view
    );

    // The drained node is empty and back in standby, drawing 2.5 W.
    for &n in &suspended {
        assert_eq!(db.segments_on(n), 0, "{n} drained before suspension");
    }
    let status = db.status();
    for &n in &suspended {
        assert_eq!(status.nodes[n.raw() as usize].state, NodeState::Standby);
    }
    // Nothing was lost across the scale-in drain.
    db.vacuum();
    assert_eq!(db.live_records(), records_at_rest, "population intact");
    // And the cluster still holds data on at least one active node.
    let holders = db
        .active_nodes()
        .iter()
        .filter(|&&n| db.segments_on(n) > 0)
        .count();
    assert!(holders >= 1, "survivors still serve the dataset");
}
