//! Integration: distributed query processing over the cluster — operator
//! placement, pruning, and the §3.3 offloading behaviour end to end.

use std::cell::RefCell;
use std::rc::Rc;

use wattdb_common::{CostParams, Key, KeyRange, NodeId, SimDuration};
use wattdb_core::replay::{replay_trace, SortMemoryBroker};
use wattdb_core::{Cluster, ClusterConfig};
use wattdb_query::{
    execute, place, AggFunc, ExecConfig, NodeLoad, PlacementPolicy, PlanNode, SyntheticTable,
};
use wattdb_sim::Sim;

fn cluster(nodes: u16) -> wattdb_core::ClusterRc {
    let active: Vec<NodeId> = (0..nodes).map(NodeId).collect();
    Cluster::new(
        ClusterConfig {
            nodes,
            buffer_pages: 1024,
            ..Default::default()
        },
        &active,
    )
}

fn timed(plan: &PlanNode, cl: &wattdb_core::ClusterRc, sim: &mut Sim) -> SimDuration {
    let (_, trace) = execute(plan, &CostParams::default(), &ExecConfig::default());
    let broker = Rc::new(RefCell::new(SortMemoryBroker::default()));
    let out: Rc<RefCell<Option<SimDuration>>> = Rc::new(RefCell::new(None));
    let o = out.clone();
    replay_trace(cl, sim, trace, broker, move |sim, started| {
        *o.borrow_mut() = Some(sim.now().since(started));
    });
    sim.run_to_completion();
    let d = out.borrow().expect("completed");
    d
}

#[test]
fn placement_pipeline_local_blocking_offloaded() {
    // A hot data node: the optimizer keeps the (pipelining) filter local
    // but offloads the aggregation, inserting a buffering operator.
    let mut plan = PlanNode::GroupAgg {
        input: Box::new(PlanNode::Filter {
            input: Box::new(PlanNode::Scan {
                source: Box::new(SyntheticTable::new(5_000, 100, 80)),
                on: NodeId(1),
            }),
            threshold: i64::MIN,
            on: NodeId(0),
        }),
        func: AggFunc::Count,
        on: NodeId(0),
    };
    place(
        &mut plan,
        &[
            NodeLoad {
                node: NodeId(1),
                cpu: 0.95,
            },
            NodeLoad {
                node: NodeId(2),
                cpu: 0.05,
            },
        ],
        &PlacementPolicy::default(),
    );
    // The aggregate landed on the cool node.
    assert_eq!(plan.placement(), NodeId(2));
    // And it still computes the right answer through the cluster.
    let cl = cluster(3);
    let mut sim = Sim::new();
    let (rows, _) = execute(&plan, &CostParams::default(), &ExecConfig::default());
    assert_eq!(rows.len(), 16, "16 groups");
    assert!(rows.iter().all(|t| t.values[0] > 0));
    let d = timed(&plan, &cl, &mut sim);
    assert!(d > SimDuration::ZERO);
}

#[test]
fn pruned_scan_reads_fewer_pages_and_finishes_faster() {
    let cl = cluster(2);
    let full = PlanNode::Scan {
        source: Box::new(SyntheticTable::new(50_000, 100, 80)),
        on: NodeId(1),
    };
    let pruned = PlanNode::Scan {
        source: Box::new(
            SyntheticTable::new(50_000, 100, 80)
                .with_range(KeyRange::new(Key(10_000), Key(15_000))),
        ),
        on: NodeId(1),
    };
    let mut sim = Sim::new();
    let t_full = timed(&full, &cl, &mut sim);
    let mut sim = Sim::new();
    let t_pruned = timed(&pruned, &cl, &mut sim);
    assert!(
        t_pruned.as_micros() * 5 < t_full.as_micros(),
        "segment pruning pays: {t_pruned} vs {t_full}"
    );
}

#[test]
fn concurrent_queries_contend_on_shared_cpu() {
    // One query alone vs. eight concurrent ones on the same node: the
    // shared-resource replay must show queueing delay.
    let cl = cluster(2);
    let plan = || PlanNode::Sort {
        input: Box::new(PlanNode::Scan {
            source: Box::new(SyntheticTable::new(2_000, 100, 80)),
            on: NodeId(1),
        }),
        on: NodeId(1),
    };
    let mut sim = Sim::new();
    let solo = timed(&plan(), &cl, &mut sim);
    let cl = cluster(2);
    let mut sim = Sim::new();
    let broker = Rc::new(RefCell::new(SortMemoryBroker::default()));
    let latencies: Rc<RefCell<Vec<SimDuration>>> = Rc::new(RefCell::new(Vec::new()));
    for _ in 0..8 {
        let (_, trace) = execute(&plan(), &CostParams::default(), &ExecConfig::default());
        let l = latencies.clone();
        replay_trace(&cl, &mut sim, trace, broker.clone(), move |sim, started| {
            l.borrow_mut().push(sim.now().since(started));
        });
    }
    sim.run_to_completion();
    let worst = latencies.borrow().iter().copied().max().unwrap();
    assert!(
        worst.as_micros() > solo.as_micros() * 3,
        "contention stretches the tail: solo {solo}, worst of 8 {worst}"
    );
}

#[test]
fn projection_before_shipping_reduces_wire_time() {
    let cl = cluster(3);
    // Sort remotely, shipping wide (2 KB) vs. projected-narrow tuples.
    let wide = PlanNode::Sort {
        input: Box::new(PlanNode::Scan {
            source: Box::new(SyntheticTable::new(20_000, 2000, 4)),
            on: NodeId(1),
        }),
        on: NodeId(2),
    };
    let narrow = PlanNode::Sort {
        input: Box::new(PlanNode::Project {
            input: Box::new(PlanNode::Scan {
                source: Box::new(SyntheticTable::new(20_000, 2000, 4)),
                on: NodeId(1),
            }),
            keep_width: 16,
            on: NodeId(1),
        }),
        on: NodeId(2),
    };
    let mut sim = Sim::new();
    let t_wide = timed(&wide, &cl, &mut sim);
    let mut sim = Sim::new();
    let t_narrow = timed(&narrow, &cl, &mut sim);
    assert!(
        t_narrow < t_wide,
        "early projection wins: {t_narrow} vs {t_wide}"
    );
}
