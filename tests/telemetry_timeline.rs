//! The telemetry subsystem's end-to-end contract, exercised through the
//! facade over policy-matrix-style scenarios:
//!
//! * **Determinism** — a fixed-seed run exports a byte-identical JSONL
//!   timeline every time; there is no wall-clock anywhere in the
//!   recorder.
//! * **Explainability from the export alone** — `WattDb::explain()` is
//!   defined as "parse the exported timeline, render it": every decision
//!   the autopilot took (holds included) must be reproducible — trigger,
//!   signal values, predicted-vs-realized outcome — purely from the
//!   file, with no access to live cluster state.
//! * **Span structure** — a CPU-burst scale-out opens a `rebalance` span
//!   whose `power-up` child sits inside the parent's bounds, and the
//!   window sample stream carries throughput and Wh-per-committed-txn.

use std::cell::RefCell;
use std::rc::Rc;

use wattdb_common::{CostParams, NodeId, SegmentId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::{Cluster, Scheme};
use wattdb_core::policy::PolicyConfig;
use wattdb_core::{decision_label, outcome_label};
use wattdb_telemetry::parse_jsonl;

const WINDOW_SECS: u64 = 5;

/// Skew trigger only: CPU bounds out of reach, so every decision in the
/// run is a Hold or a heat-skew rebalance — the policy-matrix stationary
/// scenario.
fn skew_only() -> PolicyConfig {
    PolicyConfig {
        cpu_high: 1.1,
        cpu_low: 0.0,
        patience: 2,
        skew_threshold: 1.5,
        skew_min_heat: 1.0,
        skew_cooldown: 4,
        ..Default::default()
    }
}

fn build(policy: PolicyConfig, seed: u64, data_nodes: &[NodeId]) -> WattDb {
    WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.05)
        .segment_pages(8)
        .seed(seed)
        .initial_data_nodes(data_nodes)
        .policy(policy)
        .monitoring(SimDuration::from_secs(WINDOW_SECS))
        .autopilot(true)
        .build()
}

/// Node-0 segments of the table holding the most of them, in key order.
fn node0_track(db: &WattDb) -> Vec<SegmentId> {
    db.with_cluster(|c| {
        let mut by_table: std::collections::HashMap<wattdb_common::TableId, Vec<_>> =
            std::collections::HashMap::new();
        for m in c.seg_dir.iter().filter(|m| m.node == NodeId(0)) {
            by_table
                .entry(m.table)
                .or_default()
                .push((m.key_range.map(|r| r.start), m.id));
        }
        let mut best = by_table
            .into_values()
            .max_by_key(|v| v.len())
            .expect("node 0 holds segments");
        best.sort();
        best.into_iter().map(|(_, id)| id).collect()
    })
}

fn bump(c: &mut Cluster, seg: SegmentId, now: wattdb_common::SimTime, n: u32) {
    for _ in 0..n {
        c.heat.record_read(seg, now);
    }
}

/// Run `windows` monitoring windows, injecting heat on the cadence.
fn drive(
    db: &mut WattDb,
    windows: u64,
    mut inject: impl FnMut(u64, &mut Cluster, wattdb_common::SimTime) + 'static,
) {
    let counter = Rc::new(RefCell::new(0u64));
    db.with_runtime(|cl, sim| {
        let handle = cl.clone();
        let counter = counter.clone();
        wattdb_sim::Repeater::every(sim, SimDuration::from_secs(WINDOW_SECS), move |sim| {
            let w = {
                let mut c = counter.borrow_mut();
                let w = *c;
                *c += 1;
                w
            };
            if w >= windows {
                return false;
            }
            inject(w, &mut handle.borrow_mut(), sim.now());
            true
        });
    });
    db.run_for(SimDuration::from_secs(WINDOW_SECS * (windows + 2)));
}

/// The policy-matrix stationary scenario: a hot range pinned to node 0's
/// bottom segments, the skew trigger rebalancing onto node 1.
fn stationary_run() -> WattDb {
    let mut db = build(skew_only(), 17, &[NodeId(0), NodeId(1)]);
    let track = node0_track(&db);
    let hot: Vec<SegmentId> = track.iter().copied().take(4).collect();
    drive(&mut db, 30, move |_, c, now| {
        for &s in &hot {
            bump(c, s, now, 40);
        }
    });
    db
}

#[test]
fn fixed_seed_exports_are_byte_identical() {
    let a = stationary_run().export_timeline_string();
    let b = stationary_run().export_timeline_string();
    assert!(!a.is_empty());
    assert_eq!(a, b, "two fixed-seed runs must export identical timelines");
}

#[test]
fn explain_reproduces_every_decision_from_the_export_alone() {
    let db = stationary_run();
    let text = db.export_timeline_string();
    let parsed = parse_jsonl(&text).expect("facade export is schema-valid");

    // The live recorder and the parsed file render the same account, so
    // nothing in `explain()` depends on state outside the export.
    assert_eq!(db.telemetry().explain(), parsed.explain());
    assert_eq!(db.explain(), parsed.explain());

    // One record per monitoring window, holds included, contiguously
    // numbered from window 0.
    assert!(parsed.decisions.len() >= 30, "a record per window");
    for (i, r) in parsed.decisions.iter().enumerate() {
        assert_eq!(r.window, i as u64, "windows contiguous from 0");
    }
    assert!(
        parsed
            .decisions
            .iter()
            .any(|r| r.trigger.is_empty() && r.outcome == "hold"),
        "hold windows are recorded too"
    );

    // Every control event reappears as a decision record at the same
    // virtual time, with the same trigger, decision, and outcome labels.
    for e in db.events() {
        let r = parsed
            .decisions
            .iter()
            .find(|r| r.at == e.at && r.decision == decision_label(&e.decision))
            .unwrap_or_else(|| panic!("event at {:?} missing from the timeline", e.at));
        assert_eq!(r.trigger, e.trigger);
        assert_eq!(r.outcome, outcome_label(&e.outcome));
    }

    // The applied rebalance carries its prediction and links to a closed
    // span whose realized attributes the explain line reports.
    let rebalance = parsed
        .decisions
        .iter()
        .find(|r| r.trigger == "heat-skew" && r.outcome == "applied")
        .expect("the stationary scenario rebalances");
    assert!(rebalance.predicted.is_some(), "planned heat recorded");
    let span = parsed
        .span(rebalance.span.expect("applied decision links its span"))
        .expect("linked span exported");
    assert_eq!(span.name, "rebalance");
    assert!(span.end.is_some(), "the move completed");
    for attr in ["bytes_moved", "heat_moved", "segments_moved"] {
        assert!(span.attr_f64(attr).is_some(), "realized attr {attr} set");
    }
    let line = &parsed.explain()[rebalance.window as usize];
    for needle in [
        "skew",
        "Rebalance",
        "applied",
        "predicted",
        "heat moved",
        "took",
    ] {
        assert!(needle_in(line, needle), "{needle:?} missing from {line:?}");
    }

    // Signal values in the record are the ones the renderer prints.
    assert!(
        needle_in(line, &format!("skew {:.2}", rebalance.signals.heat_skew)),
        "rendered skew matches the recorded signal: {line:?}"
    );

    // The sample stream covers the decision windows.
    assert!(!parsed.samples.is_empty());
    let sampled: std::collections::BTreeSet<u64> =
        parsed.samples.iter().map(|s| s.window).collect();
    for r in &parsed.decisions {
        assert!(sampled.contains(&r.window), "window {} unsampled", r.window);
    }
    assert!(
        parsed
            .samples
            .iter()
            .all(|s| s.value("heat.skew").is_some()),
        "every sample carries the skew gauge"
    );
}

fn needle_in(hay: &str, needle: &str) -> bool {
    hay.contains(needle)
}

/// Heavier per-operation CPU so a single node saturates under load.
fn heavy_costs() -> CostParams {
    let mut costs = CostParams::default();
    costs.index_node_visit = costs.index_node_visit * 40;
    costs.record_read = costs.record_read * 40;
    costs.record_write = costs.record_write * 40;
    costs.log_append = costs.log_append * 40;
    costs.buffer_hit = costs.buffer_hit * 40;
    costs
}

#[test]
fn burst_scale_out_span_nests_its_power_up_child() {
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.02)
        .segment_pages(16)
        .costs(heavy_costs())
        .seed(1)
        .initial_data_nodes(&[NodeId(0)])
        .policy(PolicyConfig {
            patience: 2,
            ..Default::default()
        })
        .monitoring(SimDuration::from_secs(WINDOW_SECS))
        .autopilot(true)
        .build();
    db.start_oltp(48, SimDuration::from_millis(30));
    for _ in 0..60 {
        db.run_for(SimDuration::from_secs(WINDOW_SECS));
        if db.last_rebalance().is_some() && !db.rebalancing() {
            break;
        }
    }
    let parsed = parse_jsonl(&db.export_timeline_string()).expect("schema-valid");

    // The scale-out's rebalance span powered a standby on: the power-up
    // child sits inside its parent's bounds.
    let child = parsed
        .spans
        .iter()
        .find(|s| s.name == "power-up")
        .expect("scale-out from one data node powers a target on");
    let parent = parsed
        .span(child.parent.expect("power-up is a child").0)
        .expect("parent exported");
    assert_eq!(parent.name, "rebalance");
    assert!(
        child.start >= parent.start,
        "child starts inside the parent"
    );
    let (child_end, parent_end) = (child.end.unwrap(), parent.end.unwrap());
    assert!(child_end <= parent_end, "child ends inside the parent");

    // A live OLTP run fills the throughput and energy samples.
    let last = parsed.samples.last().expect("windows sampled");
    assert!(last.value("txn.throughput").is_some());
    assert!(
        last.value("energy.wh_per_txn").unwrap_or(0.0) > 0.0,
        "Wh-per-committed-txn sampled once transactions complete"
    );

    // And the scale-out decision explains itself with the CPU clause.
    let line = parsed
        .explain()
        .into_iter()
        .find(|l| l.contains("ScaleOut") && l.contains("applied"))
        .expect("scale-out decision rendered");
    assert!(line.contains("cpu"), "CPU clause rendered: {line:?}");
}
