//! Schema validation and regression smoke threshold for the
//! `engine_throughput` bench artifact.
//!
//! CI runs this after `cargo bench --bench engine_throughput` has
//! written `BENCH_throughput.json` at the repo root: the artifact must
//! carry every cell of the {1×, 10×, 100×} × {per-client, pooled}
//! matrix with well-typed fields, and the pooled 100× cell's
//! wall-clock-per-sim-second must not regress to ≥2× the committed
//! baseline (`crates/bench/baseline/engine_throughput.json`). When the
//! artifact is absent (plain `cargo test` before any bench run) the
//! schema contract is still exercised against an inline exemplar.

use std::path::{Path, PathBuf};

use wattdb_telemetry::json::{parse, JsonValue};

fn artifact_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_throughput.json")
}

fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../crates/bench/baseline/engine_throughput.json")
}

/// Every numeric field a cell must carry.
const CELL_NUMS: &[&str] = &[
    "modeled_clients",
    "carriers",
    "weight",
    "sim_secs",
    "wall_secs",
    "events",
    "committed_txns",
    "events_per_wall_sec",
    "committed_txns_per_wall_sec",
    "wall_per_sim_sec",
];

/// The full matrix: (scale, mode) pairs that must all be present.
const MATRIX: &[(&str, &str)] = &[
    ("1x", "per-client"),
    ("1x", "pooled"),
    ("10x", "per-client"),
    ("10x", "pooled"),
    ("100x", "per-client"),
    ("100x", "pooled"),
];

/// Validate the document shape and return the pooled 100× cell's
/// wall-clock-per-sim-second.
fn validate(doc: &JsonValue) -> f64 {
    assert_eq!(
        doc.get("bench").and_then(|v| v.as_str()),
        Some("engine_throughput"),
        "artifact must identify itself"
    );
    let cells = doc
        .get("cells")
        .and_then(|v| v.as_arr())
        .expect("cells array");
    assert_eq!(cells.len(), MATRIX.len(), "all matrix cells present");
    for (scale, mode) in MATRIX {
        let cell = cells
            .iter()
            .find(|c| {
                c.get("scale").and_then(|v| v.as_str()) == Some(scale)
                    && c.get("mode").and_then(|v| v.as_str()) == Some(mode)
            })
            .unwrap_or_else(|| panic!("missing cell {scale}/{mode}"));
        for field in CELL_NUMS {
            let v = cell
                .get(field)
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| panic!("cell {scale}/{mode} missing numeric {field}"));
            assert!(
                v.is_finite() && v >= 0.0,
                "cell {scale}/{mode} field {field} must be finite and non-negative"
            );
        }
        assert!(
            cell.get("full_run").and_then(|v| v.as_bool()).is_some(),
            "cell {scale}/{mode} missing full_run flag"
        );
        let committed = cell.get("committed_txns").and_then(|v| v.as_u64()).unwrap();
        assert!(committed > 0, "cell {scale}/{mode} committed no work");
    }
    let pooled100 = cells
        .iter()
        .find(|c| {
            c.get("scale").and_then(|v| v.as_str()) == Some("100x")
                && c.get("mode").and_then(|v| v.as_str()) == Some("pooled")
        })
        .unwrap();
    assert_eq!(
        pooled100.get("full_run").and_then(|v| v.as_bool()),
        Some(true),
        "pooled 100x must complete its full horizon"
    );
    let speedup = doc
        .get("speedup_pooled100x_vs_perclient10x_txns_per_wall_sec")
        .and_then(|v| v.as_f64())
        .expect("speedup summary field");
    assert!(
        speedup >= 10.0,
        "pooled@100x must hold >=10x committed txns/wall-sec over per-client@10x, got {speedup}"
    );
    pooled100
        .get("wall_per_sim_sec")
        .and_then(|v| v.as_f64())
        .unwrap()
}

#[test]
fn bench_throughput_artifact_is_schema_valid_when_present() {
    let path = artifact_path();
    let Ok(text) = std::fs::read_to_string(&path) else {
        eprintln!(
            "note: {} not present, skipping artifact pass",
            path.display()
        );
        return;
    };
    let doc = parse(&text)
        .unwrap_or_else(|e| panic!("{} failed schema validation: {e:?}", path.display()));
    validate(&doc);
}

/// The regression smoke threshold: a fresh pooled 100× run must not
/// cost ≥2× the committed baseline's wall-clock-per-sim-second. The 2×
/// margin absorbs machine-to-machine variance while still catching a
/// hot-path regression that undoes the batching work.
#[test]
fn pooled_100x_wall_clock_within_2x_of_committed_baseline() {
    let path = artifact_path();
    let Ok(text) = std::fs::read_to_string(&path) else {
        eprintln!(
            "note: {} not present, skipping smoke threshold",
            path.display()
        );
        return;
    };
    let doc = parse(&text).expect("artifact parses");
    let measured = validate(&doc);
    let baseline_text =
        std::fs::read_to_string(baseline_path()).expect("committed baseline must exist");
    let baseline = parse(&baseline_text).expect("baseline parses");
    let allowed = baseline
        .get("pooled_100x_wall_per_sim_sec")
        .and_then(|v| v.as_f64())
        .expect("baseline pooled_100x_wall_per_sim_sec");
    assert!(
        measured < 2.0 * allowed,
        "pooled 100x wall-clock-per-sim-second regressed: measured {measured:.5}, \
         committed baseline {allowed:.5} (threshold {:.5})",
        2.0 * allowed
    );
}

/// The schema contract itself, exercised even when no artifact exists.
#[test]
fn inline_exemplar_round_trips_the_schema() {
    let exemplar = r#"{
  "bench": "engine_throughput",
  "cells": [
    {"scale": "1x", "mode": "per-client", "modeled_clients": 1000, "carriers": 1000, "weight": 1, "sim_secs": 30.0, "wall_secs": 0.3, "events": 60000, "committed_txns": 3000, "events_per_wall_sec": 200000.0, "committed_txns_per_wall_sec": 10000.0, "wall_per_sim_sec": 0.01, "full_run": true},
    {"scale": "1x", "mode": "pooled", "modeled_clients": 1000, "carriers": 1000, "weight": 1, "sim_secs": 30.0, "wall_secs": 0.25, "events": 60000, "committed_txns": 3000, "events_per_wall_sec": 240000.0, "committed_txns_per_wall_sec": 12000.0, "wall_per_sim_sec": 0.008, "full_run": true},
    {"scale": "10x", "mode": "per-client", "modeled_clients": 10000, "carriers": 10000, "weight": 1, "sim_secs": 30.0, "wall_secs": 230.0, "events": 370000, "committed_txns": 14000, "events_per_wall_sec": 1600.0, "committed_txns_per_wall_sec": 60.0, "wall_per_sim_sec": 7.7, "full_run": true},
    {"scale": "10x", "mode": "pooled", "modeled_clients": 10000, "carriers": 2000, "weight": 5, "sim_secs": 30.0, "wall_secs": 1.2, "events": 192000, "committed_txns": 29000, "events_per_wall_sec": 160000.0, "committed_txns_per_wall_sec": 24000.0, "wall_per_sim_sec": 0.04, "full_run": true},
    {"scale": "100x", "mode": "per-client", "modeled_clients": 100000, "carriers": 100000, "weight": 1, "sim_secs": 1.0, "wall_secs": 20.0, "events": 30000, "committed_txns": 500, "events_per_wall_sec": 1500.0, "committed_txns_per_wall_sec": 25.0, "wall_per_sim_sec": 20.0, "full_run": false},
    {"scale": "100x", "mode": "pooled", "modeled_clients": 100000, "carriers": 2048, "weight": 49, "sim_secs": 30.0, "wall_secs": 9.0, "events": 180000, "committed_txns": 90000, "events_per_wall_sec": 20000.0, "committed_txns_per_wall_sec": 10000.0, "wall_per_sim_sec": 0.3, "full_run": true}
  ],
  "speedup_pooled100x_vs_perclient10x_txns_per_wall_sec": 166.67
}
"#;
    let doc = parse(exemplar).expect("exemplar parses");
    let wall_per_sim = validate(&doc);
    assert!(wall_per_sim > 0.0);
}
