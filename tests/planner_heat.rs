//! Integration: the heat-aware planner under a skewed (hot-range) TPC-C
//! workload — the acceptance scenario for the heat/planner subsystem.
//!
//! Most clients hammer warehouse 0, which sits at the *bottom* of node
//! 0's key space. The legacy fraction heuristic shaves the *top* half of
//! the key-ordered segments, so it ships cold data and leaves the hotspot
//! in place; the heat-aware planner must (a) predict a strictly lower
//! post-rebalance max-node heat, (b) ship no more bytes, and (c) actually
//! deliver that balance when the plan executes.

use wattdb_common::{CostParams, NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;
use wattdb_core::heat::segment_stats;
use wattdb_core::Planner;

/// Heavier per-operation CPU so a single node saturates under load.
fn heavy_costs() -> CostParams {
    let mut costs = CostParams::default();
    costs.index_node_visit = costs.index_node_visit * 40;
    costs.record_read = costs.record_read * 40;
    costs.record_write = costs.record_write * 40;
    costs.log_append = costs.log_append * 40;
    costs.buffer_hit = costs.buffer_hit * 40;
    costs
}

fn skewed_db() -> WattDb {
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.02)
        .segment_pages(16)
        .costs(heavy_costs())
        .seed(3)
        .initial_data_nodes(&[NodeId(0)])
        .build();
    // 85 % of the clients live on warehouse 0: a hot range at the bottom
    // of node 0's key space.
    db.start_oltp_skewed(32, SimDuration::from_millis(30), 0.85, 1);
    db.run_for(SimDuration::from_secs(60));
    db.stop_clients();
    // Drain in-flight work so footprints and heat are stable.
    for _ in 0..100 {
        db.run_for(SimDuration::from_millis(500));
        if db.with_cluster(|c| c.jobs.is_empty()) {
            break;
        }
    }
    db
}

#[test]
fn heat_aware_beats_fraction_on_skewed_load_and_executes() {
    let mut db = skewed_db();

    // The workload left a visible hotspot on node 0, readable through the
    // public surface.
    let status = db.status();
    assert!(status.nodes[0].heat > 0.0, "hotspot visible in status()");
    let snap = db.heat();
    assert!(!snap.is_empty(), "per-segment stats exposed");
    assert!(
        snap.windows(2).all(|w| w[0].heat >= w[1].heat),
        "heat() sorts hottest first"
    );
    assert!(
        snap[0].reads + snap[0].writes > 0,
        "access counters recorded: {:?}",
        snap[0]
    );

    // Plan both ways over the identical cluster state.
    let stats = db.with_runtime(|cl, sim| segment_stats(&cl.borrow(), sim.now()));
    let heat_plan = db.plan_scale_out(&[NodeId(0)], &[NodeId(2)]);
    let frac_plan = wattdb_planner::plan_fraction(&stats, 0.5, &[NodeId(0)], &[NodeId(2)]);

    assert!(!heat_plan.is_empty(), "the hotspot produces a plan");
    assert!(
        heat_plan.predicted_max_heat() < frac_plan.predicted_max_heat(),
        "heat-aware strictly lower predicted max heat: {} vs {}",
        heat_plan.predicted_max_heat(),
        frac_plan.predicted_max_heat()
    );
    assert!(
        heat_plan.bytes_planned <= frac_plan.bytes_planned,
        "no more bytes shipped: {} vs {}",
        heat_plan.bytes_planned,
        frac_plan.bytes_planned
    );

    // Execute the heat plan and let it run out.
    let pre_max_share = {
        let total: f64 = (0..4).map(|n| db.node_heat(NodeId(n))).sum();
        db.node_heat(NodeId(0)) / total
    };
    assert!(pre_max_share > 0.99, "all heat starts on node 0");
    let planned_moves = heat_plan.moves.len() as u64;
    db.rebalance_planned(&heat_plan, &[NodeId(2)]);
    for _ in 0..120 {
        db.run_for(SimDuration::from_secs(5));
        if !db.rebalancing() {
            break;
        }
    }
    assert!(!db.rebalancing(), "planned rebalance terminates");

    let report = db.last_rebalance().expect("report recorded");
    assert_eq!(report.planner, Planner::HeatAware);
    assert_eq!(report.segments_moved, planned_moves);
    assert!(
        report.heat_planned > 0.0,
        "planned heat recorded: {report:?}"
    );
    assert!(report.heat_moved > 0.0, "moved heat recorded: {report:?}");
    assert_eq!(db.rebalance_history().len(), 1, "history records the run");

    // The hot segments genuinely arrived: heat shares (decay-invariant,
    // since every segment decays by the same factor) are now spread.
    let total: f64 = (0..4).map(|n| db.node_heat(NodeId(n))).sum();
    assert!(total > 0.0);
    let n0 = db.node_heat(NodeId(0)) / total;
    let n2 = db.node_heat(NodeId(2)) / total;
    assert!(n2 > 0.0, "heat arrived on the target");
    let max_share = n0.max(n2);
    assert!(
        max_share < pre_max_share,
        "post-rebalance hotspot reduced: {max_share} vs {pre_max_share}"
    );
}

#[test]
fn fraction_planner_ships_cold_segments_on_the_same_skew() {
    // Control experiment: on the identical skewed state, the legacy
    // heuristic relocates less heat per byte than the heat-aware plan —
    // the imbalance the tentpole exists to fix.
    let mut db = skewed_db();
    let stats = db.with_runtime(|cl, sim| segment_stats(&cl.borrow(), sim.now()));
    let heat_plan = db.plan_scale_out(&[NodeId(0)], &[NodeId(2)]);
    let frac_plan = wattdb_planner::plan_fraction(&stats, 0.5, &[NodeId(0)], &[NodeId(2)]);
    let heat_eff = heat_plan.heat_planned / heat_plan.bytes_planned.max(1) as f64;
    let frac_eff = frac_plan.heat_planned / frac_plan.bytes_planned.max(1) as f64;
    assert!(
        heat_eff > frac_eff,
        "heat moved per byte shipped: heat-aware {heat_eff} vs fraction {frac_eff}"
    );
}

#[test]
fn empty_planned_rebalance_is_a_noop() {
    // No workload ran, so no heat exists and the plan is empty; executing
    // it must not install a mover (which would pin `rebalancing()` true
    // forever) nor power the target on.
    let mut db = WattDb::builder()
        .nodes(4)
        .warehouses(2)
        .density(0.01)
        .segment_pages(8)
        .seed(5)
        .initial_data_nodes(&[NodeId(0)])
        .build();
    let plan = db.plan_scale_out(&[NodeId(0)], &[NodeId(2)]);
    assert!(plan.is_empty(), "no heat, nothing to move");
    db.rebalance_planned(&plan, &[NodeId(2)]);
    assert!(!db.rebalancing(), "empty plan installs no mover");
    db.run_for(SimDuration::from_secs(10));
    assert!(!db.rebalancing());
    let status = db.status();
    assert_eq!(
        status.nodes[2].state,
        wattdb_energy::NodeState::Standby,
        "target not powered for a no-op plan"
    );
}

#[test]
fn windowed_probes_report_per_window_disk_utilization() {
    // Satellite regression: disk/net monitoring probes are persisted per
    // node, so a busy first window followed by an idle one reports ~zero
    // utilization in the idle window (the old per-sample probes reported
    // the cumulative-since-t=0 average instead).
    let mut db = WattDb::builder()
        .nodes(2)
        .warehouses(2)
        .density(0.01)
        .segment_pages(8)
        .seed(5)
        .initial_data_nodes(&[NodeId(0)])
        .build();
    // Saturate node 0's data disk for ~2 s.
    db.with_runtime(|cl, sim| {
        let mut c = cl.borrow_mut();
        c.nodes[0].disks[1].bulk_transfer(sim, wattdb_common::ByteSize::mib(120), Box::new(|_| {}));
    });
    db.run_for(SimDuration::from_secs(2));
    let busy = db.with_runtime(|cl, sim| {
        let mut c = cl.borrow_mut();
        wattdb_core::monitor::sample_node(&mut c, NodeId(0), sim.now())
    });
    assert!(busy.disk > 0.2, "busy window shows disk load: {busy:?}");
    // An idle window afterwards must read (near) zero, not the cumulative
    // average.
    db.run_for(SimDuration::from_secs(10));
    let idle = db.with_runtime(|cl, sim| {
        let mut c = cl.borrow_mut();
        wattdb_core::monitor::sample_node(&mut c, NodeId(0), sim.now())
    });
    assert!(
        idle.disk < 0.05,
        "idle window reads ~0 disk, got {}",
        idle.disk
    );
    assert!(idle.net_tx < 0.05, "idle window reads ~0 net");
}
