//! Integration: cost-based heat end-to-end — the acceptance scenario for
//! the unified query-cost/heat signal.
//!
//! A point-read-hot warehouse (many cheap accesses) coexists with a
//! scan/aggregation-heavy range (few, expensive accesses). Under
//! cost-based heat the planner must ship the scan segments — the *work* —
//! and leave the point-read segments alone; under the count-based
//! fallback the very same workload inverts: the point-read segments are
//! the count-hottest and move, while the scanned segments (a handful of
//! accesses) stay.
//!
//! Also locks in the back-compat guarantee: with cost tracing disabled
//! the heat table reduces exactly to the legacy weighted-count behaviour,
//! asserted as identical heat trajectories across same-seed runs *and*
//! as exact weighted-counter arithmetic with decay off.

use wattdb_common::{HeatConfig, NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;
use wattdb_query::AggFunc;
use wattdb_tpcc::TpccTable;

const SEED: u64 = 31;

fn builder(cost_based: bool) -> wattdb_core::WattDbBuilder {
    let b = WattDb::builder()
        .nodes(3)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.02)
        .segment_pages(16)
        .seed(SEED)
        .initial_data_nodes(&[NodeId(0)]);
    if cost_based {
        b // cost model is the default
    } else {
        b.cost_model(None)
    }
}

/// Drive the mixed workload: every client hammers warehouse 0 with point
/// operations while Stock in warehouses 2..4 takes frequent
/// scan+aggregation queries — few accesses, heavy operators.
fn drive_mixed(db: &mut WattDb) {
    db.start_oltp_skewed(8, SimDuration::from_millis(50), 1.0, 1);
    let stock = TpccTable::Stock.table_id();
    let scan_range = wattdb_tpcc::warehouse_range(2, 4);
    for _ in 0..16 {
        db.run_for(SimDuration::from_secs(2));
        let report = db.scan(stock, scan_range, Some(AggFunc::Sum));
        assert!(report.segments > 0, "scan range covered: {report:?}");
    }
    db.stop_clients();
    for _ in 0..100 {
        db.run_for(SimDuration::from_millis(500));
        if db.with_cluster(|c| c.jobs.is_empty()) {
            break;
        }
    }
}

/// The count-hottest pure point segment (most accesses, never scanned).
fn hottest_point_segment(db: &WattDb) -> wattdb_common::SegmentId {
    db.heat()
        .iter()
        .filter(|s| s.scans == 0)
        .max_by_key(|s| s.reads + s.writes)
        .map(|s| s.seg)
        .expect("point-read segments exist")
}

#[test]
fn cost_heat_ships_the_scan_segments_and_spares_the_point_hotspot() {
    let mut db = builder(true).build();
    drive_mixed(&mut db);

    let snap = db.heat();
    let scanned: Vec<_> = snap.iter().filter(|s| s.scans > 0).collect();
    assert!(!scanned.is_empty(), "scans recorded");
    // The signal itself: a scanned segment with a handful of accesses
    // out-weighs the point-read segment with orders of magnitude more.
    let hot_point = hottest_point_segment(&db);
    let point_row = snap.iter().find(|s| s.seg == hot_point).unwrap();
    let top_scan = scanned
        .iter()
        .max_by(|a, b| a.heat.partial_cmp(&b.heat).unwrap())
        .unwrap();
    assert!(
        top_scan.reads + top_scan.writes + top_scan.scans
            < (point_row.reads + point_row.writes) / 4,
        "scan segment has far fewer accesses: {} vs {}",
        top_scan.reads + top_scan.writes + top_scan.scans,
        point_row.reads + point_row.writes
    );
    assert!(
        top_scan.heat > point_row.heat,
        "but more cost-heat: scan {} vs point {}",
        top_scan.heat,
        point_row.heat
    );
    assert!(
        top_scan.cost.cpu.as_micros() > 0 && top_scan.cost.pages > 0,
        "cost components exposed: {:?}",
        top_scan.cost
    );

    // The planner ships the work.
    let plan = db.plan_scale_out(&[NodeId(0)], &[NodeId(1)]);
    assert!(!plan.is_empty(), "the scan load produces a plan");
    let moved: Vec<_> = plan.moves.iter().map(|m| m.seg).collect();
    assert!(
        moved.iter().any(|s| scanned.iter().any(|r| r.seg == *s)),
        "cost-based plan ships scan segments: {moved:?}"
    );
    assert!(
        !moved.contains(&hot_point),
        "the point-read hotspot stays home under cost heat: {moved:?}"
    );
    // Majority of relocated heat comes from the scanned segments.
    let scanned_heat: f64 = plan
        .moves
        .iter()
        .filter(|m| scanned.iter().any(|r| r.seg == m.seg))
        .map(|m| snap.iter().find(|s| s.seg == m.seg).unwrap().heat)
        .sum();
    assert!(
        scanned_heat > plan.heat_planned * 0.5,
        "scan segments carry the plan: {scanned_heat} of {}",
        plan.heat_planned
    );
}

#[test]
fn count_heat_inverts_the_plan_on_the_same_workload() {
    let mut db = builder(false).build();
    drive_mixed(&mut db);

    let snap = db.heat();
    let scanned: Vec<_> = snap.iter().filter(|s| s.scans > 0).map(|s| s.seg).collect();
    assert!(!scanned.is_empty());
    let hot_point = hottest_point_segment(&db);

    let plan = db.plan_scale_out(&[NodeId(0)], &[NodeId(1)]);
    assert!(!plan.is_empty(), "the point hotspot produces a plan");
    let moved: Vec<_> = plan.moves.iter().map(|m| m.seg).collect();
    assert!(
        moved.contains(&hot_point),
        "count-based plan ships the point-read hotspot: {moved:?}"
    );
    assert!(
        moved.iter().all(|s| !scanned.contains(s)),
        "the scan segments (a handful of accesses) stay home: {moved:?}"
    );
}

// ------------------------------------------------------------ back-compat

/// One segment's `(id, heat, reads, writes, remote_fetches)` at a
/// checkpoint.
type HeatRow = (u64, f64, u64, u64, u64);

/// Snapshot the per-segment heat trajectory at every checkpoint of a
/// count-based run.
fn count_based_trajectory() -> Vec<Vec<HeatRow>> {
    let mut db = builder(false)
        // Decay off: heat must reduce to a plain weighted counter.
        .heat_tracking(HeatConfig {
            half_life: SimDuration::ZERO,
            ..Default::default()
        })
        .build();
    db.start_oltp_skewed(16, SimDuration::from_millis(30), 0.85, 1);
    let stock = TpccTable::Stock.table_id();
    let mut checkpoints = Vec::new();
    for i in 0..6 {
        db.run_for(SimDuration::from_secs(5));
        if i % 2 == 1 {
            db.scan(stock, wattdb_tpcc::warehouse_range(2, 4), None);
        }
        checkpoints.push(
            db.heat()
                .into_iter()
                .map(|s| (s.seg.raw(), s.heat, s.reads, s.writes, s.remote_fetches))
                .collect(),
        );
    }
    db.stop_clients();
    checkpoints
}

#[test]
fn count_fallback_reduces_exactly_to_weighted_counts() {
    // Identical trajectories on a fixed seed: the fallback path is
    // deterministic and unchanged run-to-run.
    let a = count_based_trajectory();
    let b = count_based_trajectory();
    assert_eq!(a.len(), b.len());
    for (wa, wb) in a.iter().zip(b.iter()) {
        assert_eq!(wa.len(), wb.len(), "same segment population");
        for (ra, rb) in wa.iter().zip(wb.iter()) {
            assert_eq!(ra.0, rb.0, "same segment order");
            assert!(
                (ra.1 - rb.1).abs() < 1e-12,
                "identical heat trajectory for segment {}: {} vs {}",
                ra.0,
                ra.1,
                rb.1
            );
            assert_eq!((ra.2, ra.3, ra.4), (rb.2, rb.3, rb.4), "identical counters");
        }
    }
    // And the values are exactly the legacy weighted counts: with decay
    // off, heat ≡ reads·rw + writes·ww + remote·mw + scans·rw.
    let mut db = builder(false)
        .heat_tracking(HeatConfig {
            half_life: SimDuration::ZERO,
            ..Default::default()
        })
        .build();
    db.start_oltp_skewed(16, SimDuration::from_millis(30), 0.85, 1);
    db.run_for(SimDuration::from_secs(20));
    db.scan(
        TpccTable::Stock.table_id(),
        wattdb_tpcc::warehouse_range(2, 4),
        Some(AggFunc::Count),
    );
    db.stop_clients();
    for _ in 0..100 {
        db.run_for(SimDuration::from_millis(500));
        if db.with_cluster(|c| c.jobs.is_empty()) {
            break;
        }
    }
    let cfg = db.with_cluster(|c| c.cfg.heat);
    let mut touched = 0;
    for s in db.heat() {
        let expected = s.reads as f64 * cfg.read_weight
            + s.writes as f64 * cfg.write_weight
            + s.remote_fetches as f64 * cfg.remote_weight
            + s.scans as f64 * cfg.read_weight;
        assert!(
            (s.heat - expected).abs() < 1e-6,
            "segment {:?}: heat {} != weighted counts {expected}",
            s.seg,
            s.heat
        );
        assert!(s.cost.is_zero(), "no cost accumulates when tracing is off");
        if expected > 0.0 {
            touched += 1;
        }
    }
    assert!(touched > 5, "a real workload touched many segments");
    // The facade reports which signal is in force.
    assert_eq!(db.status().heat_signal, "count");
    assert!(db.cost_model().is_none());
    assert_eq!(builder(true).build().status().heat_signal, "cost");
}
