//! Determinism pin across engine-speed refactors.
//!
//! The timer-wheel kernel and the lazy heat decay are pure performance
//! work: a fixed-seed per-client run must export the exact same
//! telemetry timeline bytes as before. These tests pin that surface —
//! two in-process runs must agree byte-for-byte, and the FNV-1a hash of
//! the export is printed so a refactor can be checked against the
//! previous build's output (`cargo test -q --test determinism_pin --
//! --nocapture`).

use wattdb_common::{NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;
use wattdb_core::policy::PolicyConfig;
use wattdb_core::ClientBatching;
use wattdb_tpcc::{DiurnalConfig, LoadTrace, TenantSpec};

const WINDOW_SECS: u64 = 5;

fn skew_only() -> PolicyConfig {
    PolicyConfig {
        cpu_high: 1.1,
        cpu_low: 0.0,
        patience: 2,
        skew_threshold: 1.5,
        skew_min_heat: 1.0,
        skew_cooldown: 4,
        ..Default::default()
    }
}

/// Policy-matrix-style stationary scenario driven by real OLTP clients
/// (per-client mode): skewed load hammers warehouse 0 on node 0.
fn oltp_run() -> WattDb {
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.05)
        .segment_pages(8)
        .seed(17)
        .initial_data_nodes(&[NodeId(0), NodeId(1)])
        .policy(skew_only())
        .monitoring(SimDuration::from_secs(WINDOW_SECS))
        .autopilot(true)
        .build();
    db.start_oltp_skewed(24, SimDuration::from_millis(40), 0.85, 1);
    db.run_for(SimDuration::from_secs(WINDOW_SECS * 24));
    db.stop_clients();
    db.run_for(SimDuration::from_secs(WINDOW_SECS));
    db
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Trace-driven pooled scenario under the autopilot: a small diurnal
/// day over a 4-node deployment. The trace machinery (carrier groups,
/// breakpoint resizes, the `workload.target_clients` gauge) must be as
/// deterministic as the per-client path.
fn traced_run() -> WattDb {
    let trace = LoadTrace::diurnal(DiurnalConfig {
        min_clients: 50,
        max_clients: 500,
        period: SimDuration::from_secs(60),
        phase: 0.0,
        step: SimDuration::from_secs(5),
        horizon: SimDuration::from_secs(120),
        tenant: TenantSpec::default(),
    });
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.05)
        .segment_pages(8)
        .seed(17)
        .initial_data_nodes(&[NodeId(0), NodeId(1)])
        .client_batching(ClientBatching::Pooled)
        .monitoring(SimDuration::from_secs(WINDOW_SECS))
        .autopilot(true)
        .build();
    db.start_traced_oltp(trace, SimDuration::from_millis(400));
    db.run_for(SimDuration::from_secs(125));
    db.stop_clients();
    db.run_for(SimDuration::from_secs(WINDOW_SECS));
    db
}

#[test]
fn per_client_export_is_byte_stable_across_runs() {
    let a = oltp_run().export_timeline_string();
    let b = oltp_run().export_timeline_string();
    assert!(!a.is_empty());
    assert_eq!(a, b, "fixed-seed per-client exports must be byte-identical");
    println!(
        "determinism pin: fnv1a={:016x} len={}",
        fnv1a(a.as_bytes()),
        a.len()
    );
}

#[test]
fn traced_export_is_byte_stable_across_runs() {
    let a = traced_run().export_timeline_string();
    let b = traced_run().export_timeline_string();
    assert!(!a.is_empty());
    assert_eq!(a, b, "fixed-seed traced exports must be byte-identical");
    // The traced run actually exercises the trace machinery: the offered
    // load gauge is present and moves along the schedule.
    assert!(
        a.contains("\"workload.target_clients\""),
        "traced export carries the offered-load gauge"
    );
    println!(
        "determinism pin (traced): fnv1a={:016x} len={}",
        fnv1a(a.as_bytes()),
        a.len()
    );
}
