//! Property tests over whole-cluster runs: random rebalance plans never
//! lose records, and no sequence of scale/rebalance/failover decisions
//! ever corrupts the replica map.

use proptest::prelude::*;
use wattdb_common::{NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;
use wattdb_energy::NodeState;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_rebalance_preserves_the_key_population(
        seed in 0u64..1000,
        scheme_pick in 0u8..3,
        fraction in 0.2f64..0.8,
        targets_n in 1usize..3,
    ) {
        let scheme = match scheme_pick {
            0 => Scheme::Physical,
            1 => Scheme::Logical,
            _ => Scheme::Physiological,
        };
        let mut db = WattDb::builder()
            .nodes(6)
            .scheme(scheme)
            .warehouses(2)
            .density(0.005)
            .segment_pages(8)
            .seed(seed)
            .initial_data_nodes(&[NodeId(0), NodeId(1)])
            .build();
        let before = db.live_records();
        let targets: Vec<NodeId> = (2..2 + targets_n as u16).map(NodeId).collect();
        db.rebalance(fraction, &[NodeId(0), NodeId(1)], &targets);
        for _ in 0..120 {
            db.run_for(SimDuration::from_secs(5));
            if !db.rebalancing() {
                break;
            }
        }
        prop_assert!(!db.rebalancing(), "move must terminate");
        // Logical moves tombstone their sources; vacuum reclaims them
        // before comparing populations.
        db.vacuum();
        prop_assert_eq!(db.live_records(), before, "population preserved");
        // Routing still resolves a sample of keys for every table.
        db.with_cluster(|c| {
            for t in wattdb_tpcc::TpccTable::ALL {
                for w in 0..2u32 {
                    let key = wattdb_tpcc::keys::district(w, 3);
                    let r = c.router.route(t.table_id(), key);
                    assert!(r.is_ok(), "{t:?} w{w} unroutable after move");
                }
            }
        });
    }

    /// A replicated autopilot cluster driven through a random sequence of
    /// manual rebalances, node failures, and idle stretches (during which
    /// the controller scales in, drains, repairs, and suspends on its
    /// own). After every step — and after everything settles — the
    /// replica map must hold its invariants: no leader in its own
    /// follower set, no reference to a suspended node, no follower on a
    /// draining node. With enough surviving hosts, the replication factor
    /// must also end fully restored.
    #[test]
    fn replica_map_survives_any_decision_sequence(
        seed in 0u64..1000,
        ops in proptest::collection::vec(0u8..3, 4..8),
    ) {
        let policy = wattdb_core::PolicyConfig {
            cpu_high: 1.1, // scale-out out of reach: drains and failover dominate
            cpu_low: 0.5,  // the idle cluster scales in at every opportunity
            patience: 2,
            skew_threshold: 0.0,
            ..Default::default()
        };
        let mut db = WattDb::builder()
            .nodes(6)
            .scheme(Scheme::Physiological)
            .warehouses(6)
            .density(0.05)
            .segment_pages(8)
            .seed(seed)
            .initial_data_nodes(&[NodeId(0), NodeId(1), NodeId(2)])
            .replication(1)
            .policy(policy)
            .monitoring(SimDuration::from_secs(5))
            .autopilot(true)
            .build();
        let mut kills = 0usize;
        for &op in &ops {
            match op {
                // Manual rebalance onto a standby node, if none in flight.
                1 if !db.rebalancing() => {
                    let (src, dst) = db.with_cluster(|c| {
                        let src = c.seg_dir.iter().map(|m| m.node).max();
                        let dst = c
                            .nodes
                            .iter()
                            .find(|n| n.state == NodeState::Standby && !c.failed.contains(&n.id))
                            .map(|n| n.id);
                        (src, dst)
                    });
                    if let (Some(src), Some(dst)) = (src, dst) {
                        db.rebalance(0.4, &[src], &[dst]);
                    }
                }
                // Kill the highest-id active data node (never the master,
                // at most once per run so the cluster survives).
                2 if kills == 0 => {
                    let victim = db.with_cluster(|c| {
                        c.nodes
                            .iter()
                            .filter(|n| {
                                n.id != NodeId(0)
                                    && n.state == NodeState::Active
                                    && !c.failed.contains(&n.id)
                                    && c.seg_dir.on_node(n.id).next().is_some()
                            })
                            .map(|n| n.id)
                            .max()
                    });
                    if let Some(v) = victim {
                        db.fail_node(v);
                        kills += 1;
                    }
                }
                // Idle: the autopilot decides on its own.
                _ => {}
            }
            db.run_for(SimDuration::from_secs(15));
            let violation = db.with_cluster(|c| c.check_replica_invariants());
            prop_assert!(violation.is_none(), "after op {}: {:?}", op, violation);
        }
        // Let everything in flight land: migrations, failover promotion,
        // re-replication backfills, post-drain suspensions.
        for _ in 0..80 {
            db.run_for(SimDuration::from_secs(5));
            let busy =
                db.rebalancing() || db.with_cluster(|c| c.rereplication_inflight > 0);
            if !busy {
                break;
            }
        }
        let violation = db.with_cluster(|c| c.check_replica_invariants());
        prop_assert!(violation.is_none(), "after settling: {:?}", violation);
        let (active_hosts, under) = db.with_cluster(|c| {
            let active_hosts = c
                .nodes
                .iter()
                .filter(|n| n.state == NodeState::Active && !c.failed.contains(&n.id))
                .count();
            (
                active_hosts,
                c.replicas.under_replicated(c.cfg.replication.factor),
            )
        });
        if active_hosts >= 2 {
            prop_assert!(under.is_empty(), "factor not restored: {:?}", under);
        }
    }
}
