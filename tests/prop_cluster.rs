//! Property test: random rebalance plans never lose records, for every
//! scheme, fraction, and topology drawn.

use proptest::prelude::*;
use wattdb_common::{NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_rebalance_preserves_the_key_population(
        seed in 0u64..1000,
        scheme_pick in 0u8..3,
        fraction in 0.2f64..0.8,
        targets_n in 1usize..3,
    ) {
        let scheme = match scheme_pick {
            0 => Scheme::Physical,
            1 => Scheme::Logical,
            _ => Scheme::Physiological,
        };
        let mut db = WattDb::builder()
            .nodes(6)
            .scheme(scheme)
            .warehouses(2)
            .density(0.005)
            .segment_pages(8)
            .seed(seed)
            .initial_data_nodes(&[NodeId(0), NodeId(1)])
            .build();
        let before = db.live_records();
        let targets: Vec<NodeId> = (2..2 + targets_n as u16).map(NodeId).collect();
        db.rebalance(fraction, &[NodeId(0), NodeId(1)], &targets);
        for _ in 0..120 {
            db.run_for(SimDuration::from_secs(5));
            if !db.rebalancing() {
                break;
            }
        }
        prop_assert!(!db.rebalancing(), "move must terminate");
        // Logical moves tombstone their sources; vacuum reclaims them
        // before comparing populations.
        db.vacuum();
        prop_assert_eq!(db.live_records(), before, "population preserved");
        // Routing still resolves a sample of keys for every table.
        db.with_cluster(|c| {
            for t in wattdb_tpcc::TpccTable::ALL {
                for w in 0..2u32 {
                    let key = wattdb_tpcc::keys::district(w, 3);
                    let r = c.router.route(t.table_id(), key);
                    assert!(r.is_ok(), "{t:?} w{w} unroutable after move");
                }
            }
        });
    }
}
