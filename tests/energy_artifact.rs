//! Schema validation and acceptance-gate re-check for the
//! `energy_scorecard` bench artifact.
//!
//! CI runs this after `cargo bench --bench energy_scorecard` has written
//! `BENCH_energy.json` at the repo root: the artifact must carry every
//! cell of the {diurnal, flash-crowd, tenant-mix} × {autopilot, static}
//! matrix with well-typed fields, both proportionality indices inside
//! [0,1], and the headline gates must hold — the autopilot strictly
//! beats static provisioning on the diurnal trace at a p95 penalty
//! within the artifact's own documented bound. When the artifact is
//! absent (plain `cargo test` before any bench run) the schema contract
//! is still exercised against an inline exemplar.

use std::path::{Path, PathBuf};

use wattdb_telemetry::json::{parse, JsonValue};

fn artifact_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_energy.json")
}

/// Every numeric field a cell must carry.
const CELL_NUMS: &[&str] = &[
    "windows",
    "proportionality_rated",
    "proportionality_observed",
    "mean_watts",
    "peak_watts",
    "rated_watts",
    "committed_txns",
    "wh_per_txn",
    "p95_ceiling_ms",
];

/// The full matrix: (trace, policy) pairs that must all be present.
const MATRIX: &[(&str, &str)] = &[
    ("diurnal", "autopilot"),
    ("diurnal", "static"),
    ("flash-crowd", "autopilot"),
    ("flash-crowd", "static"),
    ("tenant-mix", "autopilot"),
    ("tenant-mix", "static"),
];

fn cell<'a>(cells: &'a [JsonValue], trace: &str, policy: &str) -> &'a JsonValue {
    cells
        .iter()
        .find(|c| {
            c.get("trace").and_then(|v| v.as_str()) == Some(trace)
                && c.get("policy").and_then(|v| v.as_str()) == Some(policy)
        })
        .unwrap_or_else(|| panic!("missing cell {trace}/{policy}"))
}

/// Validate the document shape and re-check the acceptance gates.
fn validate(doc: &JsonValue) {
    assert_eq!(
        doc.get("bench").and_then(|v| v.as_str()),
        Some("energy_scorecard"),
        "artifact must identify itself"
    );
    assert!(
        doc.get("seed").and_then(|v| v.as_u64()).is_some(),
        "artifact records the shared seed"
    );
    let p95_bound = doc
        .get("p95_bound")
        .and_then(|v| v.as_f64())
        .expect("artifact documents its p95 bound");
    assert!(p95_bound >= 1.0, "p95 bound must allow at least parity");
    let cells = doc
        .get("cells")
        .and_then(|v| v.as_arr())
        .expect("cells array");
    assert_eq!(cells.len(), MATRIX.len(), "all matrix cells present");
    for (trace, policy) in MATRIX {
        let c = cell(cells, trace, policy);
        for field in CELL_NUMS {
            let v = c
                .get(field)
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| panic!("cell {trace}/{policy} missing numeric {field}"));
            assert!(
                v.is_finite() && v >= 0.0,
                "cell {trace}/{policy} field {field} must be finite and non-negative"
            );
        }
        for idx in ["proportionality_rated", "proportionality_observed"] {
            let v = c.get(idx).and_then(|v| v.as_f64()).unwrap();
            assert!(
                (0.0..=1.0).contains(&v),
                "cell {trace}/{policy} {idx} {v} out of [0,1]"
            );
        }
        assert!(
            c.get("committed_txns").and_then(|v| v.as_u64()).unwrap() > 0,
            "cell {trace}/{policy} committed no work"
        );
        // nodes_powered: non-empty histogram of [active_nodes, windows].
        let hist = c
            .get("nodes_powered")
            .and_then(|v| v.as_arr())
            .unwrap_or_else(|| panic!("cell {trace}/{policy} missing nodes_powered"));
        assert!(!hist.is_empty(), "cell {trace}/{policy} empty histogram");
        for entry in hist {
            let pair = entry.as_arr().expect("histogram entry is a pair");
            assert_eq!(pair.len(), 2, "histogram entry is [nodes, windows]");
            assert!(pair.iter().all(|v| v.as_u64().is_some()));
        }
        // phases: every slice typed, labels non-empty.
        let phases = c
            .get("phases")
            .and_then(|v| v.as_arr())
            .unwrap_or_else(|| panic!("cell {trace}/{policy} missing phases"));
        assert!(!phases.is_empty(), "cell {trace}/{policy} has no phases");
        for p in phases {
            assert!(
                !p.get("label")
                    .and_then(|v| v.as_str())
                    .expect("phase label")
                    .is_empty(),
                "phase label empty"
            );
            for field in ["windows", "mean_watts", "committed_txns", "wh_per_txn"] {
                let v = p
                    .get(field)
                    .and_then(|v| v.as_f64())
                    .unwrap_or_else(|| panic!("phase missing numeric {field}"));
                assert!(v.is_finite() && v >= 0.0);
            }
        }
    }
    // The headline gates, re-checked from the shipped numbers.
    let auto = cell(cells, "diurnal", "autopilot");
    let stat = cell(cells, "diurnal", "static");
    let num = |c: &JsonValue, k: &str| c.get(k).and_then(|v| v.as_f64()).unwrap();
    assert!(
        num(auto, "proportionality_rated") > num(stat, "proportionality_rated"),
        "autopilot must strictly beat static proportionality on the diurnal trace"
    );
    assert!(
        num(auto, "p95_ceiling_ms") <= p95_bound * num(stat, "p95_ceiling_ms").max(1.0),
        "autopilot p95 ceiling exceeds the documented bound"
    );
    // And elasticity must actually save energy on the swinging trace.
    assert!(
        num(auto, "mean_watts") < num(stat, "mean_watts"),
        "autopilot must draw less mean power than static provisioning"
    );
}

#[test]
fn bench_energy_artifact_is_schema_valid_when_present() {
    let path = artifact_path();
    let Ok(text) = std::fs::read_to_string(&path) else {
        eprintln!(
            "note: {} not present, skipping artifact pass",
            path.display()
        );
        return;
    };
    let doc = parse(&text)
        .unwrap_or_else(|e| panic!("{} failed schema validation: {e:?}", path.display()));
    validate(&doc);
}

/// The schema contract itself, exercised even when no artifact exists.
#[test]
fn inline_exemplar_round_trips_the_schema() {
    let exemplar = r#"{
  "bench": "energy_scorecard",
  "seed": 42,
  "p95_bound": 4.0,
  "cells": [
    {"trace": "diurnal", "policy": "autopilot", "windows": 49, "proportionality_rated": 0.91, "proportionality_observed": 0.76, "mean_watts": 61.0, "peak_watts": 110.0, "rated_watts": 150.0, "committed_txns": 29000, "wh_per_txn": 0.00013, "p95_ceiling_ms": 260.0, "nodes_powered": [[1, 20], [2, 19], [3, 10]], "phases": [{"label": "trough", "windows": 16, "mean_watts": 36.0, "committed_txns": 3000, "wh_per_txn": 0.0002}, {"label": "shoulder", "windows": 17, "mean_watts": 60.0, "committed_txns": 10000, "wh_per_txn": 0.00014}, {"label": "peak", "windows": 16, "mean_watts": 95.0, "committed_txns": 16000, "wh_per_txn": 0.0001}]},
    {"trace": "diurnal", "policy": "static", "windows": 49, "proportionality_rated": 0.62, "proportionality_observed": 0.55, "mean_watts": 144.0, "peak_watts": 145.0, "rated_watts": 150.0, "committed_txns": 31000, "wh_per_txn": 0.00027, "p95_ceiling_ms": 130.0, "nodes_powered": [[4, 49]], "phases": [{"label": "trough", "windows": 16, "mean_watts": 143.0, "committed_txns": 3200, "wh_per_txn": 0.0008}, {"label": "shoulder", "windows": 17, "mean_watts": 144.0, "committed_txns": 11000, "wh_per_txn": 0.00026}, {"label": "peak", "windows": 16, "mean_watts": 145.0, "committed_txns": 16800, "wh_per_txn": 0.00017}]},
    {"trace": "flash-crowd", "policy": "autopilot", "windows": 49, "proportionality_rated": 0.88, "proportionality_observed": 0.71, "mean_watts": 58.0, "peak_watts": 112.0, "rated_watts": 150.0, "committed_txns": 21000, "wh_per_txn": 0.00016, "p95_ceiling_ms": 520.0, "nodes_powered": [[1, 28], [3, 21]], "phases": [{"label": "baseline", "windows": 25, "mean_watts": 38.0, "committed_txns": 5000, "wh_per_txn": 0.00021}, {"label": "ramp", "windows": 4, "mean_watts": 70.0, "committed_txns": 2000, "wh_per_txn": 0.00018}, {"label": "burst", "windows": 12, "mean_watts": 108.0, "committed_txns": 11000, "wh_per_txn": 0.00013}, {"label": "decay", "windows": 8, "mean_watts": 66.0, "committed_txns": 3000, "wh_per_txn": 0.00019}]},
    {"trace": "flash-crowd", "policy": "static", "windows": 49, "proportionality_rated": 0.55, "proportionality_observed": 0.48, "mean_watts": 144.0, "peak_watts": 145.0, "rated_watts": 150.0, "committed_txns": 22000, "wh_per_txn": 0.00037, "p95_ceiling_ms": 130.0, "nodes_powered": [[4, 49]], "phases": [{"label": "baseline", "windows": 25, "mean_watts": 144.0, "committed_txns": 5200, "wh_per_txn": 0.00096}, {"label": "ramp", "windows": 4, "mean_watts": 144.0, "committed_txns": 2100, "wh_per_txn": 0.00038}, {"label": "burst", "windows": 12, "mean_watts": 145.0, "committed_txns": 11400, "wh_per_txn": 0.00021}, {"label": "decay", "windows": 8, "mean_watts": 144.0, "committed_txns": 3300, "wh_per_txn": 0.00048}]},
    {"trace": "tenant-mix", "policy": "autopilot", "windows": 49, "proportionality_rated": 0.83, "proportionality_observed": 0.79, "mean_watts": 66.0, "peak_watts": 90.0, "rated_watts": 150.0, "committed_txns": 33000, "wh_per_txn": 0.00011, "p95_ceiling_ms": 260.0, "nodes_powered": [[2, 40], [3, 9]], "phases": [{"label": "shoulder", "windows": 49, "mean_watts": 66.0, "committed_txns": 33000, "wh_per_txn": 0.00011}]},
    {"trace": "tenant-mix", "policy": "static", "windows": 49, "proportionality_rated": 0.58, "proportionality_observed": 0.52, "mean_watts": 144.0, "peak_watts": 145.0, "rated_watts": 150.0, "committed_txns": 35000, "wh_per_txn": 0.00023, "p95_ceiling_ms": 130.0, "nodes_powered": [[4, 49]], "phases": [{"label": "shoulder", "windows": 49, "mean_watts": 144.0, "committed_txns": 35000, "wh_per_txn": 0.00023}]}
  ]
}
"#;
    let doc = parse(exemplar).expect("exemplar parses");
    validate(&doc);
}
