//! Integration: the thread-blocking lock facade carrying a real
//! multi-threaded workload over the engine stack (embedded-library usage,
//! outside the deterministic event loop).

use std::sync::Arc;

use parking_lot::Mutex;
use wattdb_common::{Key, KeyRange, SegmentId, TableId, TxnId};
use wattdb_index::SegmentIndex;
use wattdb_storage::{PageStore, Record};
use wattdb_txn::{BlockingAcquire, BlockingLockManager, LockMode, LockTarget};

#[test]
fn concurrent_increments_are_serialized_by_x_locks() {
    let locks = BlockingLockManager::new();
    let seg = SegmentId(1);
    let engine = Arc::new(Mutex::new({
        let mut store = PageStore::new();
        store.add_segment(seg);
        let mut idx = SegmentIndex::new(seg, KeyRange::all());
        let rec = Record::new(Key(1), 1, 64, vec![0]);
        let (rid, _) = store.insert_record(seg, &rec, u32::MAX).unwrap();
        idx.insert(Key(1), rid);
        (idx, store)
    }));

    const THREADS: u64 = 8;
    const INCREMENTS: u64 = 25;
    crossbeam::scope(|scope| {
        for t in 0..THREADS {
            let locks = locks.clone();
            let engine = engine.clone();
            scope.spawn(move |_| {
                for i in 0..INCREMENTS {
                    let txn = TxnId(1 + t * INCREMENTS + i);
                    let target = LockTarget::Record(TableId(1), Key(1));
                    assert_eq!(
                        locks.acquire(txn, target, LockMode::X),
                        BlockingAcquire::Granted
                    );
                    // Critical section: read-modify-write the record.
                    {
                        let mut guard = engine.lock();
                        let (idx, store) = &mut *guard;
                        let (rid, _) = idx.get(Key(1));
                        let rid = rid.unwrap();
                        let mut rec = store.read_record(rid).unwrap();
                        rec.payload[0] = rec.payload[0].wrapping_add(1);
                        store.write_record(rid, &rec).unwrap();
                    }
                    locks.release_all(txn);
                }
            });
        }
    })
    .unwrap();

    let guard = engine.lock();
    let (idx, store) = &*guard;
    let (rid, _) = idx.get(Key(1));
    let rec = store.read_record(rid.unwrap()).unwrap();
    assert_eq!(
        rec.payload[0],
        (THREADS * INCREMENTS) as u8,
        "every increment applied exactly once"
    );
}

#[test]
fn readers_share_while_writer_waits() {
    let locks = BlockingLockManager::new();
    let target = LockTarget::Record(TableId(1), Key(9));
    let barrier = Arc::new(std::sync::Barrier::new(4));
    crossbeam::scope(|scope| {
        // Three readers hold S concurrently.
        for t in 0..3u64 {
            let locks = locks.clone();
            let barrier = barrier.clone();
            scope.spawn(move |_| {
                let txn = TxnId(t + 1);
                assert_eq!(
                    locks.acquire(txn, target, LockMode::S),
                    BlockingAcquire::Granted
                );
                barrier.wait(); // all three held at once
                std::thread::sleep(std::time::Duration::from_millis(20));
                locks.release_all(txn);
            });
        }
        barrier.wait();
        // A writer queued behind them gets through after release.
        let txn = TxnId(99);
        assert_eq!(
            locks.acquire(txn, target, LockMode::X),
            BlockingAcquire::Granted
        );
        locks.release_all(txn);
    })
    .unwrap();
}
