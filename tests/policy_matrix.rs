//! Deterministic scenario matrix for the heat-triggered elasticity
//! policy: the full autopilot driven over a grid of workload shapes
//! (uniform, stationary hot range, advancing hot range, bimodal,
//! idle-then-burst) × policy configurations (CPU-only, skew-only, both),
//! all from fixed seeds, asserting per-scenario invariants:
//!
//! * the skew trigger fires only on genuinely skewed loads;
//! * rebalances are bounded per run (no thrash);
//! * scale-in always drains the coldest node — and refuses a node that is
//!   entangled in an in-flight migration;
//! * every decision event logs the threshold that triggered it;
//! * on the advancing-hotspot scenario, projected-heat planning realizes
//!   a strictly lower post-rebalance max node heat than historical-heat
//!   planning for no more bytes shipped.
//!
//! Synthetic scenarios inject access heat directly into the heat table on
//! the monitoring cadence — the skew trigger, drift tracker, and planner
//! then run exactly as they would under a live workload, but every run is
//! bit-identical and fast. The idle-then-burst scenario drives real TPC-C
//! clients to exercise the CPU path end to end.

use std::cell::RefCell;
use std::rc::Rc;

use wattdb_common::{CostParams, NodeId, SegmentId, SimDuration, TableId};
use wattdb_core::api::WattDb;
use wattdb_core::autopilot::Outcome;
use wattdb_core::cluster::{Cluster, Scheme};
use wattdb_core::policy::{Decision, PolicyConfig};
use wattdb_core::ControlEvent;

const WINDOW_SECS: u64 = 5;

// ---------------------------------------------------------------- configs

/// CPU thresholds only: the pre-skew policy surface.
fn cpu_only() -> PolicyConfig {
    PolicyConfig {
        patience: 2,
        skew_threshold: 0.0, // skew trigger disabled
        ..Default::default()
    }
}

/// Skew trigger only: CPU bounds pushed out of reach (utilization cannot
/// exceed 1.0, nor fall below 0.0).
fn skew_only() -> PolicyConfig {
    PolicyConfig {
        cpu_high: 1.1,
        cpu_low: 0.0,
        patience: 2,
        skew_threshold: 1.5,
        skew_min_heat: 1.0,
        skew_cooldown: 4,
        ..Default::default()
    }
}

/// Both triggers armed (the default shape, shorter patience for test
/// runtimes).
fn both() -> PolicyConfig {
    PolicyConfig {
        patience: 2,
        ..Default::default()
    }
}

// ---------------------------------------------------------------- harness

fn build(policy: PolicyConfig, seed: u64, data_nodes: &[NodeId], horizon_secs: u64) -> WattDb {
    WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.05)
        .segment_pages(8)
        .seed(seed)
        .initial_data_nodes(data_nodes)
        .policy(policy)
        .monitoring(SimDuration::from_secs(WINDOW_SECS))
        .drift_horizon(SimDuration::from_secs(horizon_secs))
        .autopilot(true)
        .build()
}

/// Node-0 segments of the table holding the most of them, in key order —
/// the track an advancing hotspot walks along.
fn node0_track(db: &WattDb) -> Vec<SegmentId> {
    db.with_cluster(|c| {
        let mut by_table: std::collections::HashMap<TableId, Vec<_>> =
            std::collections::HashMap::new();
        for m in c.seg_dir.iter().filter(|m| m.node == NodeId(0)) {
            by_table
                .entry(m.table)
                .or_default()
                .push((m.key_range.map(|r| r.start), m.id));
        }
        let mut best = by_table
            .into_values()
            .max_by_key(|v| v.len())
            .expect("node 0 holds segments");
        best.sort();
        best.into_iter().map(|(_, id)| id).collect()
    })
}

/// All segments on `node`, any table.
fn segments_on(db: &WattDb, node: NodeId) -> Vec<SegmentId> {
    db.with_cluster(|c| {
        c.seg_dir
            .iter()
            .filter(|m| m.node == node)
            .map(|m| m.id)
            .collect()
    })
}

/// Charge `n` unit reads to a segment.
fn bump(c: &mut Cluster, seg: SegmentId, now: wattdb_common::SimTime, n: u32) {
    for _ in 0..n {
        c.heat.record_read(seg, now);
    }
}

/// Run `windows` monitoring windows, invoking `inject(window, cluster,
/// now)` once per window on the monitoring cadence.
fn drive(
    db: &mut WattDb,
    windows: u64,
    mut inject: impl FnMut(u64, &mut Cluster, wattdb_common::SimTime) + 'static,
) {
    let counter = Rc::new(RefCell::new(0u64));
    db.with_runtime(|cl, sim| {
        let handle = cl.clone();
        let counter = counter.clone();
        wattdb_sim::Repeater::every(sim, SimDuration::from_secs(WINDOW_SECS), move |sim| {
            let w = {
                let mut c = counter.borrow_mut();
                let w = *c;
                *c += 1;
                w
            };
            if w >= windows {
                return false;
            }
            inject(w, &mut handle.borrow_mut(), sim.now());
            true
        });
    });
    db.run_for(SimDuration::from_secs(WINDOW_SECS * (windows + 2)));
}

/// Every decision event must name its trigger; suspension bookkeeping
/// entries carry none.
fn assert_triggers_logged(events: &[ControlEvent]) {
    for e in events {
        match (&e.outcome, &e.decision) {
            (Outcome::Suspended { .. }, _) => assert_eq!(e.trigger, "", "suspension entry: {e:?}"),
            (_, Decision::ScaleOut { .. }) => assert_eq!(e.trigger, "cpu-high", "{e:?}"),
            (_, Decision::ScaleIn { .. }) => assert_eq!(e.trigger, "cpu-low", "{e:?}"),
            (_, Decision::Rebalance { .. }) => assert_eq!(e.trigger, "heat-skew", "{e:?}"),
            (_, Decision::AttachHelpers { .. }) | (_, Decision::DetachHelpers { .. }) => {
                assert_eq!(e.trigger, "helper", "{e:?}")
            }
            (_, Decision::Promote { .. }) => assert_eq!(e.trigger, "failover", "{e:?}"),
            (_, Decision::Hold) => panic!("hold decisions are never logged: {e:?}"),
        }
    }
}

fn rebalance_events(events: &[ControlEvent]) -> Vec<&ControlEvent> {
    events
        .iter()
        .filter(|e| matches!(e.decision, Decision::Rebalance { .. }))
        .collect()
}

// -------------------------------------------------------------- scenarios

#[test]
fn uniform_load_never_trips_the_skew_trigger() {
    for (label, policy) in [("skew-only", skew_only()), ("both", both())] {
        let db = build(policy, 11, &[NodeId(0), NodeId(1)], 10);
        let segs: Vec<SegmentId> = db.with_cluster(|c| c.seg_dir.iter().map(|m| m.id).collect());
        let mut db2 = db; // move into drive
        drive(&mut db2, 24, move |_, c, now| {
            for &s in &segs {
                bump(c, s, now, 4);
            }
        });
        let events = db2.events();
        assert_triggers_logged(&events);
        assert!(
            rebalance_events(&events).is_empty(),
            "[{label}] uniform heat must not trip the skew trigger: {events:?}"
        );
        if policy.cpu_low == 0.0 {
            // Skew-only: no trigger can fire at all on a balanced load.
            assert!(
                events.is_empty(),
                "[{label}] no decisions expected: {events:?}"
            );
        }
        println!(
            "[uniform/{label}] events={} (no skew rebalance)",
            events.len()
        );
    }
}

#[test]
fn bimodal_load_balanced_across_nodes_stays_quiet() {
    // Two hot ranges of equal intensity, one per data node: heavily
    // skewed *within* each node's key space, balanced *across* nodes —
    // the skew trigger must see through it.
    let mut db = build(skew_only(), 13, &[NodeId(0), NodeId(1)], 10);
    let hot0: Vec<SegmentId> = segments_on(&db, NodeId(0)).into_iter().take(3).collect();
    let hot1: Vec<SegmentId> = segments_on(&db, NodeId(1)).into_iter().take(3).collect();
    drive(&mut db, 24, move |_, c, now| {
        for &s in hot0.iter().chain(hot1.iter()) {
            bump(c, s, now, 40);
        }
    });
    let events = db.events();
    assert_triggers_logged(&events);
    assert!(
        events.is_empty(),
        "bimodal-but-balanced load fired the policy: {events:?}"
    );
    println!(
        "[bimodal/skew-only] node heats: {:.1} vs {:.1}, no events",
        db.node_heat(NodeId(0)),
        db.node_heat(NodeId(1))
    );
}

#[test]
fn stationary_hot_range_rebalances_with_zero_node_count_change() {
    let mut db = build(skew_only(), 17, &[NodeId(0), NodeId(1)], 10);
    let active_before = db.active_nodes();
    let track = node0_track(&db);
    assert!(track.len() >= 4, "need a few segments: {}", track.len());
    let hot: Vec<SegmentId> = track.iter().copied().take(4).collect();
    drive(&mut db, 30, move |_, c, now| {
        for &s in &hot {
            bump(c, s, now, 40);
        }
    });
    let events = db.events();
    assert_triggers_logged(&events);
    let rebalances = rebalance_events(&events);
    let applied: Vec<_> = rebalances
        .iter()
        .filter(|e| e.outcome == Outcome::Applied)
        .collect();
    assert!(
        !applied.is_empty(),
        "skew trigger must rebalance a stationary hot range: {events:?}"
    );
    // Zero node count change: no scale decision of any kind, and the
    // active set is exactly what we started with.
    assert!(
        events
            .iter()
            .all(|e| matches!(e.decision, Decision::Rebalance { .. })),
        "only rebalance-in-place decisions expected: {events:?}"
    );
    assert_eq!(db.active_nodes(), active_before, "no node powered on/off");
    // The rebalance executed via the heat planner and moved real heat.
    let history = db.rebalance_history();
    assert!(!history.is_empty(), "rebalance completed");
    assert!(history
        .iter()
        .all(|r| r.planner == wattdb_core::Planner::HeatAware));
    assert!(history[0].heat_moved > 0.0);
    // No thrash: the cooldown bounds how many rebalances a 30-window run
    // can start (patience 2 + cooldown 4 → at most one per 6 windows).
    let bound = 30 / 6 + 1;
    assert!(
        history.len() <= bound,
        "{} rebalances in 30 windows (bound {bound})",
        history.len()
    );
    // And the skew genuinely dropped: heat now lives on both nodes.
    let (h0, h1) = (db.node_heat(NodeId(0)), db.node_heat(NodeId(1)));
    assert!(h1 > 0.0, "heat arrived on the cold node");
    let skew_after = h0.max(h1) / ((h0 + h1) / 2.0);
    // Stationary skew is what rebalancing *fixes*: under the default
    // helper escalation the trigger never escalates — no helper is ever
    // attached, and every skew decision stays a segment rebalance.
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.decision, Decision::AttachHelpers { .. })),
        "stationary skew must never attach helpers: {events:?}"
    );
    assert!(
        db.helpers_active().is_empty(),
        "no helper left attached after a stationary run"
    );
    println!(
        "[stationary/skew-only] rebalances={} skew after={skew_after:.2} heats=({h0:.0},{h1:.0})",
        history.len()
    );
}

#[test]
fn cpu_only_config_ignores_skew() {
    // The same stationary hot range under the CPU-only config: heats are
    // wildly skewed but CPUs idle, so no scale-out — and the only
    // permissible decisions are idle scale-ins.
    let mut db = build(cpu_only(), 17, &[NodeId(0), NodeId(1)], 10);
    let track = node0_track(&db);
    let hot: Vec<SegmentId> = track.iter().copied().take(4).collect();
    drive(&mut db, 20, move |_, c, now| {
        for &s in &hot {
            bump(c, s, now, 40);
        }
    });
    let events = db.events();
    assert_triggers_logged(&events);
    assert!(
        rebalance_events(&events).is_empty(),
        "skew trigger disabled: {events:?}"
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.decision, Decision::ScaleOut { .. })),
        "idle CPUs cannot scale out: {events:?}"
    );
}

// ------------------------------------------------- transient skew: helpers

/// A transient-bimodal deployment: three data nodes, the hot range
/// flapping between nodes 0 and 1 while node 2 stays cold — the skew
/// ratio holds above the threshold throughout, but *which* node is hot
/// alternates, so any segments a rebalance ships are wrong by the time
/// they land. The helper policy runs helpers-first
/// (`escalation_fires: 1`): every skew fire attaches Fig. 8 helpers
/// instead of shipping.
fn transient_bimodal_db() -> WattDb {
    let policy = PolicyConfig {
        cpu_high: 1.1,
        cpu_low: 0.0,
        patience: 2,
        skew_threshold: 1.5,
        skew_min_heat: 1.0,
        skew_cooldown: 4,
        helper: wattdb_common::HelperPolicyConfig {
            escalation_fires: 1,
            max_helpers: 2,
            min_net_heat: 0.0,
        },
        ..Default::default()
    };
    WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(6)
        .density(0.05)
        .segment_pages(8)
        .seed(31)
        .initial_data_nodes(&[NodeId(0), NodeId(1), NodeId(2)])
        .policy(policy)
        .monitoring(SimDuration::from_secs(WINDOW_SECS))
        .autopilot(true)
        .build()
}

/// Drive the flap: heavy heat on node 0's segments for `flip` windows,
/// then on node 1's, alternating; node 2 stays cold throughout.
fn drive_bimodal_flap(db: &mut WattDb, windows: u64, flip: u64) {
    let hot0: Vec<SegmentId> = segments_on(db, NodeId(0)).into_iter().take(3).collect();
    let hot1: Vec<SegmentId> = segments_on(db, NodeId(1)).into_iter().take(3).collect();
    drive(db, windows, move |w, c, now| {
        let hot = if (w / flip).is_multiple_of(2) {
            &hot0
        } else {
            &hot1
        };
        for &s in hot {
            bump(c, s, now, 60);
        }
    });
}

#[test]
fn transient_bimodal_skew_attaches_helpers_and_never_ships() {
    let mut db = transient_bimodal_db();
    assert!(!segments_on(&db, NodeId(2)).is_empty(), "node 2 holds data");
    drive_bimodal_flap(&mut db, 24, 3);
    let events = db.events();
    assert_triggers_logged(&events);
    // The escalated response fired and was applied.
    let attaches: Vec<&ControlEvent> = events
        .iter()
        .filter(|e| matches!(e.decision, Decision::AttachHelpers { .. }))
        .collect();
    let applied: Vec<&&ControlEvent> = attaches
        .iter()
        .filter(|e| e.outcome == Outcome::Applied)
        .collect();
    assert!(
        !applied.is_empty(),
        "transient skew must attach helpers: {events:?}"
    );
    let attach = applied[0];
    assert_eq!(attach.trigger, "helper");
    assert!(
        attach.relief > 0.0,
        "applied attachment logs its predicted relief: {attach:?}"
    );
    // Not a single segment shipped: no rebalance decision, no history,
    // zero bytes.
    assert!(
        rebalance_events(&events).is_empty(),
        "transient skew must never ship segments: {events:?}"
    );
    assert!(db.rebalance_history().is_empty(), "zero rebalances");
    assert!(db.last_rebalance().is_none());
    // Planner-chosen helpers: attached, and drawn from nodes that are
    // neither the hot sources nor the master.
    let helpers = db.helpers_active();
    assert!(!helpers.is_empty(), "helpers still attached under the flap");
    for h in &helpers {
        assert!(
            *h != NodeId(0) && *h != NodeId(1),
            "helper {h} must not be a flapping hot source: {helpers:?}"
        );
    }
    // The helped source ships its log to the helper.
    db.with_cluster(|c| {
        let helped: Vec<NodeId> = c
            .nodes
            .iter()
            .filter(|n| n.helper.is_some())
            .map(|n| n.id)
            .collect();
        assert!(!helped.is_empty(), "a hot source is wired to its helper");
        for n in &c.nodes {
            if let Some(h) = n.helper {
                assert!(c.helpers_active.contains(&h));
                assert_eq!(n.shipper.followers(), vec![h]);
            }
        }
    });
    println!(
        "[transient/helpers-first] attaches={} helpers={helpers:?} relief={:.1}",
        applied.len(),
        attach.relief
    );
}

#[test]
fn helpers_detach_once_the_skew_subsides() {
    let mut db = transient_bimodal_db();
    drive_bimodal_flap(&mut db, 18, 3);
    assert!(
        !db.helpers_active().is_empty(),
        "precondition: helpers attached under the flap: {:?}",
        db.events()
    );
    let powered_helpers = db.helpers_active();
    // The flap ends and the load spreads evenly: the skew falls through
    // the rearm band and the helpers must be released.
    let all: Vec<SegmentId> = db.with_cluster(|c| c.seg_dir.iter().map(|m| m.id).collect());
    drive(&mut db, 12, move |_, c, now| {
        for &s in &all {
            bump(c, s, now, 8);
        }
    });
    let events = db.events();
    assert_triggers_logged(&events);
    let detach = events
        .iter()
        .find(|e| matches!(e.decision, Decision::DetachHelpers { .. }))
        .unwrap_or_else(|| panic!("no detach on subsidence: {events:?}"));
    assert_eq!(detach.trigger, "helper");
    assert_eq!(detach.outcome, Outcome::Applied);
    assert!(db.helpers_active().is_empty(), "helpers released");
    // Helpers powered on for the duty returned to standby; every log-
    // shipping cursor is gone.
    db.with_cluster(|c| {
        for h in &powered_helpers {
            if c.seg_dir.on_node(*h).next().is_none() {
                assert_eq!(
                    c.nodes[h.raw() as usize].state,
                    wattdb_energy::NodeState::Standby,
                    "duty-powered helper {h} suspended again"
                );
            }
        }
        for n in &c.nodes {
            assert_eq!(n.helper, None);
            assert!(n.shipper.followers().is_empty(), "cursor left on {}", n.id);
        }
    });
    // Still: not a byte shipped across the whole run.
    assert!(db.rebalance_history().is_empty());
    println!("[transient/detach] helpers released: {powered_helpers:?}");
}

#[test]
fn empty_helper_plan_falls_back_to_rebalancing() {
    // Escalation wants helpers but the net-heat floor is unreachable, so
    // every helper plan comes back empty. The controller must not wedge
    // (escalated fire → refused attach → cooldown → re-escalate, forever):
    // it falls back to the rebalance the fire would otherwise have been,
    // and the stationary skew still gets fixed by shipping segments.
    let policy = PolicyConfig {
        cpu_high: 1.1,
        cpu_low: 0.0,
        patience: 2,
        skew_threshold: 1.5,
        skew_min_heat: 1.0,
        skew_cooldown: 4,
        helper: wattdb_common::HelperPolicyConfig {
            escalation_fires: 1, // every fire escalates...
            max_helpers: 2,
            min_net_heat: 1e12, // ...but no source ever clears the floor
        },
        ..Default::default()
    };
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.05)
        .segment_pages(8)
        .seed(17)
        .initial_data_nodes(&[NodeId(0), NodeId(1)])
        .policy(policy)
        .monitoring(SimDuration::from_secs(WINDOW_SECS))
        .autopilot(true)
        .build();
    let track = node0_track(&db);
    let hot: Vec<SegmentId> = track.iter().copied().take(4).collect();
    drive(&mut db, 30, move |_, c, now| {
        for &s in &hot {
            bump(c, s, now, 40);
        }
    });
    let events = db.events();
    assert_triggers_logged(&events);
    // The escalated decision was applied — as a rebalance.
    assert!(
        events
            .iter()
            .any(|e| matches!(e.decision, Decision::AttachHelpers { .. })
                && e.outcome == Outcome::Applied),
        "escalated fire must still act: {events:?}"
    );
    assert!(
        db.helpers_active().is_empty(),
        "no helper cleared the floor"
    );
    let history = db.rebalance_history();
    assert!(
        !history.is_empty(),
        "fallback must ship segments: {events:?}"
    );
    assert!(history[0].heat_moved > 0.0);
    assert!(
        db.node_heat(NodeId(1)) > 0.0,
        "the stationary skew actually got fixed"
    );
}

// -------------------------------------------------- scale-in: coldest node

#[test]
fn scale_in_always_drains_the_coldest_node() {
    // Three data nodes with clearly ordered heat (node 1 hottest, node 2
    // coldest), everyone idle on CPU: successive scale-ins must drain the
    // coldest non-master node each time — node 2 first, then node 1.
    // Six warehouses split evenly across the three nodes.
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(6)
        .density(0.05)
        .segment_pages(8)
        .seed(19)
        .initial_data_nodes(&[NodeId(0), NodeId(1), NodeId(2)])
        .policy(cpu_only())
        .monitoring(SimDuration::from_secs(WINDOW_SECS))
        .autopilot(true)
        .build();
    assert!(
        !segments_on(&db, NodeId(2)).is_empty(),
        "warehouse split covers node 2"
    );
    let s0 = segments_on(&db, NodeId(0));
    let s1 = segments_on(&db, NodeId(1));
    let s2 = segments_on(&db, NodeId(2));
    drive(&mut db, 40, move |w, c, now| {
        if w >= 2 {
            return; // heat injected early, then the cluster idles
        }
        for &s in &s0 {
            bump(c, s, now, 20);
        }
        for &s in &s1 {
            bump(c, s, now, 60);
        }
        for &s in &s2 {
            bump(c, s, now, 2);
        }
    });
    let events = db.events();
    assert_triggers_logged(&events);
    let drains: Vec<Vec<NodeId>> = events
        .iter()
        .filter(|e| e.outcome == Outcome::Applied)
        .filter_map(|e| match &e.decision {
            Decision::ScaleIn { drain } => Some(drain.clone()),
            _ => None,
        })
        .collect();
    assert!(!drains.is_empty(), "idle cluster must scale in: {events:?}");
    assert_eq!(
        drains[0],
        vec![NodeId(2)],
        "first drain takes the coldest node: {events:?}"
    );
    if drains.len() > 1 {
        assert_eq!(
            drains[1],
            vec![NodeId(1)],
            "second drain takes the remaining non-master: {events:?}"
        );
    }
    // The drained node was powered down once empty.
    let suspended: Vec<NodeId> = events
        .iter()
        .filter_map(|e| match &e.outcome {
            Outcome::Suspended { nodes } => Some(nodes.clone()),
            _ => None,
        })
        .flatten()
        .collect();
    assert!(
        suspended.contains(&NodeId(2)),
        "coldest node suspended after its drain: {events:?}"
    );
    println!("[scale-in/cpu-only] drains={drains:?} suspended={suspended:?}");
}

#[test]
fn scale_in_refuses_a_node_inside_an_active_migration() {
    // A long-running manual rebalance is filling node 2 while the cluster
    // idles below the scale-in bound. The policy will pick node 2 (the
    // coldest data node) — and the controller must refuse the drain with
    // a dedicated reason while the migration is still touching it.
    let policy = PolicyConfig {
        cpu_high: 1.1, // scale-out out of reach
        cpu_low: 0.5,  // idle cluster breaches immediately
        patience: 2,
        skew_threshold: 0.0,
        ..Default::default()
    };
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.05)
        .segment_pages(8)
        .io_scale(4000) // segment copies take minutes: the drain decision lands mid-flight
        .seed(23)
        .initial_data_nodes(&[NodeId(0)])
        .policy(policy)
        .monitoring(SimDuration::from_secs(WINDOW_SECS))
        .autopilot(true)
        .build();
    db.rebalance(0.5, &[NodeId(0)], &[NodeId(2)]);
    let mut refused = None;
    for _ in 0..200 {
        db.run_for(SimDuration::from_secs(WINDOW_SECS));
        refused = db.events().into_iter().find(|e| {
            matches!(e.decision, Decision::ScaleIn { ref drain } if drain.contains(&NodeId(2)))
                && matches!(
                    e.outcome,
                    Outcome::Deferred { reason } if reason.contains("active migration")
                )
        });
        if refused.is_some() {
            break;
        }
    }
    let refused = refused.unwrap_or_else(|| {
        panic!(
            "drain of the migration target was never refused: {:?}",
            db.events()
        )
    });
    assert_eq!(refused.trigger, "cpu-low");
    // The refusal is a deferral, not a cancellation: no second rebalance
    // ever started while the first was in flight.
    assert!(db.rebalance_history().len() <= 1, "one rebalance at a time");
}

// ------------------------------------ scale-in under replication

#[test]
fn scale_in_with_replication_rehomes_followers_before_suspension() {
    // Three replicated data nodes idle below the low bound. The drained
    // node hosts follower copies for the survivors' segments: the drain
    // must re-home those copies in the same decision, the node must still
    // suspend, and once the backfill copies land not a single segment may
    // sit under the replication factor or reference the suspended node.
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(6)
        .density(0.05)
        .segment_pages(8)
        .seed(43)
        .initial_data_nodes(&[NodeId(0), NodeId(1), NodeId(2)])
        .replication(1)
        .policy(cpu_only())
        .monitoring(SimDuration::from_secs(WINDOW_SECS))
        .autopilot(true)
        .build();
    let s0 = segments_on(&db, NodeId(0));
    let s1 = segments_on(&db, NodeId(1));
    let s2 = segments_on(&db, NodeId(2));
    drive(&mut db, 60, move |w, c, now| {
        if w >= 2 {
            return; // heat injected early, then the cluster idles
        }
        for &s in &s0 {
            bump(c, s, now, 20);
        }
        for &s in &s1 {
            bump(c, s, now, 60);
        }
        for &s in &s2 {
            bump(c, s, now, 2);
        }
    });
    let events = db.events();
    assert_triggers_logged(&events);
    let applied_drains: Vec<Vec<NodeId>> = events
        .iter()
        .filter(|e| e.outcome == Outcome::Applied)
        .filter_map(|e| match &e.decision {
            Decision::ScaleIn { drain } => Some(drain.clone()),
            _ => None,
        })
        .collect();
    assert!(
        !applied_drains.is_empty(),
        "idle replicated cluster must still scale in: {events:?}"
    );
    let suspended: Vec<NodeId> = events
        .iter()
        .filter_map(|e| match &e.outcome {
            Outcome::Suspended { nodes } => Some(nodes.clone()),
            _ => None,
        })
        .flatten()
        .collect();
    assert!(
        suspended.contains(&NodeId(2)),
        "replica copies must not pin the coldest node on: {events:?}"
    );
    db.with_cluster(|c| {
        assert_eq!(
            c.check_replica_invariants(),
            None,
            "replica map consistent after the drain"
        );
        assert!(
            c.replicas
                .under_replicated(c.cfg.replication.factor)
                .is_empty(),
            "drain orphaned follower copies: {:?}",
            c.replicas.under_replicated(c.cfg.replication.factor)
        );
        for &n in &suspended {
            assert!(
                !c.replicas.references(n),
                "suspended node {n} still referenced by the replica map"
            );
        }
    });
    println!("[scale-in/replicated] drains={applied_drains:?} suspended={suspended:?}");
}

#[test]
fn scale_in_refuses_a_drain_that_would_strand_follower_copies() {
    // Two data nodes at factor 1: every segment's single follower lives
    // on the *other* node, so draining either one leaves no surviving
    // host for its copies. The controller must refuse the drain with the
    // dedicated reason — and keep refusing it — rather than power off a
    // node and silently drop the factor to zero.
    let policy = PolicyConfig {
        cpu_high: 1.1, // scale-out out of reach
        cpu_low: 0.5,  // idle cluster breaches immediately
        patience: 2,
        skew_threshold: 0.0,
        ..Default::default()
    };
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.05)
        .segment_pages(8)
        .seed(53)
        .initial_data_nodes(&[NodeId(0), NodeId(1)])
        .replication(1)
        .policy(policy)
        .monitoring(SimDuration::from_secs(WINDOW_SECS))
        .autopilot(true)
        .build();
    let active_before = db.active_nodes();
    db.run_for(SimDuration::from_secs(WINDOW_SECS * 30));
    let events = db.events();
    assert_triggers_logged(&events);
    let refused = events
        .iter()
        .find(|e| {
            matches!(e.decision, Decision::ScaleIn { .. })
                && matches!(
                    e.outcome,
                    Outcome::Deferred { reason } if reason.contains("follower replicas")
                )
        })
        .unwrap_or_else(|| panic!("stranding drain was never refused: {events:?}"));
    assert_eq!(refused.trigger, "cpu-low");
    // The refusal held: nothing was applied, nothing suspended, and the
    // replica map never lost a copy.
    assert!(
        !events.iter().any(
            |e| matches!(e.decision, Decision::ScaleIn { .. }) && e.outcome == Outcome::Applied
        ),
        "a stranding drain was applied: {events:?}"
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.outcome, Outcome::Suspended { .. })),
        "a data node was suspended: {events:?}"
    );
    assert_eq!(db.active_nodes(), active_before, "node count unchanged");
    db.with_cluster(|c| {
        assert_eq!(c.check_replica_invariants(), None);
        assert!(
            c.replicas
                .under_replicated(c.cfg.replication.factor)
                .is_empty(),
            "refused drain still lost copies: {:?}",
            c.replicas.under_replicated(c.cfg.replication.factor)
        );
    });
}

// ------------------------------------------------- failure: promotion path

/// A policy with every elasticity trigger out of reach: only failover
/// decisions can appear in the log.
fn failover_only() -> PolicyConfig {
    PolicyConfig {
        cpu_high: 1.1,
        cpu_low: 0.0,
        patience: 2,
        skew_threshold: 0.0,
        ..Default::default()
    }
}

#[test]
fn kill_active_mid_migration_promotes_and_recovers() {
    // Two data nodes under replication factor 1: each node's segments keep
    // a log-shipped follower copy on the other. A slow migration is
    // draining the victim when it dies mid-copy. The autopilot must
    // detect the loss within a monitoring window, promote the follower
    // for every orphaned segment, re-cover the key space, and restore
    // the replication factor — with every committed write still readable.
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.05)
        .segment_pages(8)
        .io_scale(400) // segment copies take ~15s of wire time: the kill
        // lands mid-flight, yet re-replicating the whole key space (the
        // victim was one of only two data nodes) still fits the horizon
        .seed(37)
        .initial_data_nodes(&[NodeId(0), NodeId(1)])
        .replication(1)
        .policy(failover_only())
        .monitoring(SimDuration::from_secs(WINDOW_SECS))
        .autopilot(true)
        .build();
    // Committed writes land on both nodes before anything goes wrong.
    db.start_oltp(8, SimDuration::from_millis(50));
    db.run_for(SimDuration::from_secs(20));
    let committed_before = db.completed();
    let records_before = db.live_records();
    assert!(committed_before > 0, "writes committed before the failure");
    let victim = NodeId(1);
    let map_before = db.replica_map();
    let led_before = map_before.led_by(victim);
    assert!(!led_before.is_empty(), "victim leads segments");
    // The migration is mid-flight off the victim when it dies.
    db.rebalance(0.5, &[victim], &[NodeId(2)]);
    db.run_for(SimDuration::from_secs(2));
    assert!(db.rebalancing(), "migration in flight at the kill");
    db.fail_node(victim);
    db.run_for(SimDuration::from_secs(WINDOW_SECS * 40));
    let events = db.events();
    assert_triggers_logged(&events);
    // The failover decision was detected, logged, and applied.
    let promote = events
        .iter()
        .find(|e| matches!(e.decision, Decision::Promote { .. }))
        .unwrap_or_else(|| panic!("no failover decision logged: {events:?}"));
    assert_eq!(promote.trigger, "failover");
    assert_eq!(promote.outcome, Outcome::Applied);
    let Decision::Promote {
        failed,
        ref orphaned,
    } = promote.decision
    else {
        unreachable!()
    };
    assert_eq!(failed, victim);
    assert!(!orphaned.is_empty(), "orphaned segments named: {promote:?}");
    // Promotion correctness: every segment the victim led is now led by a
    // node that was its follower before the failure (factor 1: the single
    // follower IS the most-caught-up one), unless a completed migration
    // already moved it off the victim.
    let map_after = db.replica_map();
    db.with_cluster(|c| {
        for &seg in &led_before {
            match map_after.leader_of(seg) {
                Some(leader) => {
                    assert_ne!(leader, victim, "{seg} still led by the corpse");
                    assert!(
                        map_before.followers_of(seg).contains(&leader)
                            || c.seg_dir.get(seg).is_ok_and(|m| m.node == leader),
                        "{seg}: new leader {leader} was neither a follower nor the owner"
                    );
                }
                None => panic!("{seg} vanished from the replica map"),
            }
        }
        // The key space is re-covered: nothing is stored on the dead node.
        assert!(
            c.seg_dir.iter().all(|m| m.node != victim),
            "segments still placed on the dead node"
        );
        // Replication factor restored by re-replication.
        assert!(
            c.replicas
                .under_replicated(c.cfg.replication.factor)
                .is_empty(),
            "factor not restored: {:?}",
            c.replicas.under_replicated(c.cfg.replication.factor)
        );
    });
    assert!(
        !map_after.references(victim),
        "dead node erased from the map"
    );
    assert!(db.rereplication_bytes() > 0, "re-replication shipped bytes");
    // No committed write was lost: the workload keeps inserting, so the
    // population may grow — but never shrink past what was committed
    // before the failure — and the surviving cluster keeps serving the
    // whole key space.
    assert!(
        db.live_records() >= records_before,
        "committed records lost"
    );
    assert!(
        db.completed() > committed_before,
        "transactions keep completing after failover"
    );
    println!(
        "[failover/mid-migration] orphaned={} rereplicated={}B completed {}→{}",
        orphaned.len(),
        db.rereplication_bytes(),
        committed_before,
        db.completed()
    );
}

#[test]
fn kill_follower_rereplicates_to_restore_the_factor() {
    // Three data nodes, factor 1. The victim is a *follower* for other
    // nodes' segments (besides leading its own): after the kill, every
    // segment that lost its follower must get a fresh one on a surviving
    // node — never co-located with its leader.
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(6)
        .density(0.05)
        .segment_pages(8)
        .seed(41)
        .initial_data_nodes(&[NodeId(0), NodeId(1), NodeId(2)])
        .replication(1)
        .policy(failover_only())
        .monitoring(SimDuration::from_secs(WINDOW_SECS))
        .autopilot(true)
        .build();
    db.start_oltp(6, SimDuration::from_millis(50));
    db.run_for(SimDuration::from_secs(15));
    let victim = NodeId(2);
    let followed = db.replica_map().followed_by(victim);
    assert!(!followed.is_empty(), "victim follows other nodes' segments");
    db.fail_node(victim);
    db.run_for(SimDuration::from_secs(WINDOW_SECS * 30));
    let events = db.events();
    assert_triggers_logged(&events);
    assert!(
        events
            .iter()
            .any(|e| matches!(e.decision, Decision::Promote { failed, .. } if failed == victim)),
        "failover logged: {events:?}"
    );
    let map = db.replica_map();
    assert!(!map.references(victim), "dead follower erased everywhere");
    db.with_cluster(|c| {
        assert!(
            c.replicas
                .under_replicated(c.cfg.replication.factor)
                .is_empty(),
            "factor not restored: {:?}",
            c.replicas.under_replicated(c.cfg.replication.factor)
        );
    });
    // The restored copies were shipped over the wire, and none of the
    // segments the victim followed ended up with a co-located follower.
    assert!(db.rereplication_bytes() > 0, "re-replication shipped bytes");
    for seg in followed {
        if let Some(set) = map.get(seg) {
            assert!(
                !set.followers.contains(&set.leader),
                "{seg}: follower co-located with leader"
            );
        }
    }
    println!(
        "[failover/follower-kill] rereplicated={}B map epoch={}",
        db.rereplication_bytes(),
        map.epoch()
    );
}

// ------------------------------------------------------- idle-then-burst

/// Heavier per-operation CPU so a single node saturates under load (the
/// full SQL-layer work on wimpy Atom cores).
fn heavy_costs() -> CostParams {
    let mut costs = CostParams::default();
    costs.index_node_visit = costs.index_node_visit * 40;
    costs.record_read = costs.record_read * 40;
    costs.record_write = costs.record_write * 40;
    costs.log_append = costs.log_append * 40;
    costs.buffer_hit = costs.buffer_hit * 40;
    costs
}

#[test]
fn idle_then_burst_scales_out_on_cpu() {
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.02)
        .segment_pages(16)
        .costs(heavy_costs())
        .seed(1)
        .initial_data_nodes(&[NodeId(0)])
        .policy(both())
        .monitoring(SimDuration::from_secs(WINDOW_SECS))
        .autopilot(true)
        .build();
    // Idle phase: one data node, no load — the controller must hold.
    db.run_for(SimDuration::from_secs(60));
    assert!(
        db.events().is_empty(),
        "idle phase decided: {:?}",
        db.events()
    );
    // Burst: saturate node 0.
    db.start_oltp(48, SimDuration::from_millis(30));
    let mut scaled_out = false;
    for _ in 0..60 {
        db.run_for(SimDuration::from_secs(WINDOW_SECS));
        let spread = db
            .active_nodes()
            .iter()
            .filter(|&&n| db.segments_on(n) > 0)
            .count();
        if spread > 1 && !db.rebalancing() {
            scaled_out = true;
            break;
        }
    }
    assert!(scaled_out, "burst never scaled out: {:?}", db.events());
    let events = db.events();
    assert_triggers_logged(&events);
    let scale_out = events
        .iter()
        .find(|e| matches!(e.decision, Decision::ScaleOut { .. }))
        .expect("scale-out logged");
    assert_eq!(scale_out.trigger, "cpu-high");
    assert_eq!(scale_out.outcome, Outcome::Applied);
    assert!(scale_out.view.max_cpu > 0.8, "driven by a CPU breach");
}

// ------------------------------------- advancing hotspot: drift pays off

struct AdvancingOutcome {
    rebalances: usize,
    bytes: u64,
    max_heat: f64,
    heats: Vec<f64>,
}

/// Drive an advancing hot window along node 0's key-ordered segments and
/// let the skew trigger rebalance onto node 1, planning at the given
/// drift horizon (0 = historical heat). Returns the realized state at a
/// fixed end time.
///
/// The shape is the TPC-C insert-front regime: a *narrow* hot window
/// advancing slowly, leaving a trail of recently-hot, now-cooling
/// segments whose accumulated heat still rivals the active window's.
/// Historical planning cannot tell the trail from the front; projected
/// planning discounts the cooling trail and boosts the warming entrants.
fn run_advancing(horizon_secs: u64) -> AdvancingOutcome {
    let policy = PolicyConfig {
        cpu_high: 1.1,
        cpu_low: 0.0,
        // A long patience doubles as warm-up: by the time the trigger
        // fires, the hotspot has advanced for several windows, the trail
        // exists, and the velocity estimates have matured.
        patience: 11,
        skew_threshold: 1.5,
        skew_min_heat: 1.0,
        skew_cooldown: 100, // exactly one skew rebalance per run
        ..Default::default()
    };
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.05)
        .segment_pages(8)
        .seed(29)
        .initial_data_nodes(&[NodeId(0), NodeId(1)])
        .policy(policy)
        .monitoring(SimDuration::from_secs(WINDOW_SECS))
        .drift(wattdb_common::DriftConfig {
            // Adapt fast: a segment the front just reached earns a strong
            // velocity estimate within a window or two.
            velocity_half_life: SimDuration::from_secs(3),
            horizon: SimDuration::from_secs(horizon_secs),
        })
        .autopilot(true)
        .build();
    let track = node0_track(&db);
    assert!(
        track.len() >= 10,
        "advancing scenario needs a long track, got {}",
        track.len()
    );
    let width = 3usize;
    // Three windows per one-segment advance. The trigger fires around
    // window 11; the hotspot keeps advancing a few windows past the
    // rebalance so the *realized* balance — measured while the front
    // overlaps the segments each plan chose — separates the planners.
    let dwell = 3u64;
    let windows = 14u64;
    let track_len = track.len();
    drive(&mut db, windows, move |w, c, now| {
        let f = (w / dwell) as usize;
        for &seg in track.iter().take((f + width).min(track.len())).skip(f) {
            bump(c, seg, now, 40);
        }
    });
    let heats: Vec<f64> = (0..4).map(|n| db.node_heat(NodeId(n))).collect();
    let history = db.rebalance_history();
    println!(
        "[advancing] horizon={horizon_secs}s track={track_len} fired_at={:?} segments_moved={:?} heat planned/moved={:.1}/{:.1}",
        history.first().map(|r| r.started),
        history.first().map(|r| r.segments_moved),
        history.first().map(|r| r.heat_planned).unwrap_or(0.0),
        history.first().map(|r| r.heat_moved).unwrap_or(0.0),
    );
    AdvancingOutcome {
        rebalances: db.rebalance_history().len(),
        bytes: db.rebalance_history().iter().map(|r| r.bytes_moved).sum(),
        max_heat: heats.iter().copied().fold(0.0, f64::max),
        heats,
    }
}

#[test]
fn advancing_hotspot_projected_planning_beats_historical() {
    let historical = run_advancing(0);
    let projected = run_advancing(10);
    println!(
        "[advancing] historical: rebalances={} bytes={} max_heat={:.1} heats={:?}",
        historical.rebalances, historical.bytes, historical.max_heat, historical.heats
    );
    println!(
        "[advancing] projected:  rebalances={} bytes={} max_heat={:.1} heats={:?}",
        projected.rebalances, projected.bytes, projected.max_heat, projected.heats
    );
    assert_eq!(historical.rebalances, 1, "one skew rebalance per run");
    assert_eq!(projected.rebalances, 1, "one skew rebalance per run");
    // The acceptance criterion: planning against where heat is *going*
    // realizes a strictly lower post-rebalance max node heat, for no more
    // bytes shipped.
    assert!(
        projected.max_heat < historical.max_heat,
        "projected {:.1} must beat historical {:.1}",
        projected.max_heat,
        historical.max_heat
    );
    assert!(
        projected.bytes <= historical.bytes,
        "projected bytes {} must not exceed historical {}",
        projected.bytes,
        historical.bytes
    );
}
