//! Replication subsystem invariants: follower placement, heat-aware read
//! fan-out, and failover promotion — the three contracts the replica map
//! was built to property-test.
//!
//! * **Promotion** always picks the most-caught-up follower (highest
//!   acknowledged LSN on the dead leader's shipping cursors), ties broken
//!   by lowest node id.
//! * **Placement** never co-locates a follower with its segment's leader,
//!   and a segment's followers are pairwise distinct.
//! * **Routing** never reads past-acknowledged state: a follower is
//!   eligible to serve a segment's reads only when its acknowledged
//!   shipping LSN has reached the segment's last write, so every
//!   committed write is visible from any node a read lands on.
//!
//! The proptests exercise the pure layers (`wattdb_replica`,
//! `wattdb_planner`, `wattdb_wal::LogShipper`); the deterministic tests
//! drive the full facade end to end.

use proptest::prelude::*;
use wattdb_common::{Lsn, NodeId, SegmentId, SimDuration, TxnId};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;
use wattdb_planner::{plan_replicas, NodeLoadStat, ReplicaNeed};
use wattdb_replica::pick_promotion;
use wattdb_wal::{LogManager, LogPayload, LogShipper};

// ------------------------------------------------------------ end to end

fn replicated_db(factor: usize, initial: &[NodeId]) -> WattDb {
    WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.05)
        .segment_pages(8)
        .seed(47)
        .initial_data_nodes(initial)
        .replication(factor)
        .build()
}

#[test]
fn bootstrap_places_followers_off_leader() {
    let db = replicated_db(1, &[NodeId(0), NodeId(1), NodeId(2)]);
    let map = db.replica_map();
    assert!(!map.is_empty(), "every segment tracked");
    db.with_cluster(|c| {
        assert_eq!(map.len(), c.seg_dir.len(), "full coverage");
        for (seg, set) in map.iter() {
            assert_eq!(set.followers.len(), 1, "{seg} at factor");
            assert!(
                !set.followers.contains(&set.leader),
                "{seg}: follower co-located with leader {}",
                set.leader
            );
            assert_eq!(
                c.seg_dir.get(seg).unwrap().node,
                set.leader,
                "{seg}: map leader is the storing node"
            );
        }
        // Every leader ships to exactly its segments' union of followers.
        for n in &c.nodes {
            let wanted: std::collections::BTreeSet<NodeId> = map
                .iter()
                .filter(|(_, s)| s.leader == n.id)
                .flat_map(|(_, s)| s.followers.iter().copied())
                .collect();
            let have: std::collections::BTreeSet<NodeId> =
                n.replica_shipper.followers().into_iter().collect();
            assert_eq!(have, wanted, "node {} shipping cursors", n.id);
        }
    });
}

#[test]
fn hot_reads_fan_out_to_followers() {
    let mut db = replicated_db(1, &[NodeId(0), NodeId(1)]);
    db.start_oltp(8, SimDuration::from_millis(40));
    db.run_for(SimDuration::from_secs(30));
    assert!(db.completed() > 0);
    assert!(
        db.replica_reads() > 0,
        "caught-up followers must serve part of the read load"
    );
    assert!(
        db.replica_shipped_bytes() > 0,
        "the write load must have shipped WAL to the followers"
    );
    // Staleness accounting never regresses: every cursor has
    // acked ≤ shipped ≤ the leader's log end.
    db.with_cluster(|c| {
        for n in &c.nodes {
            for (f, shipped, acked) in n.replica_shipper.cursors() {
                assert!(acked <= shipped, "{f}: acked past shipped");
                assert!(shipped <= n.log.last_lsn(), "{f}: shipped past the log");
            }
        }
    });
}

#[test]
fn read_routing_weights_favor_cold_hosts() {
    // Heat-weighted rotation: every fan-out decision records an integer
    // weight in 1..=4 per pool member (colder host → bigger share), and
    // the router counts every decision so the telemetry read-share gauge
    // has a denominator.
    let mut db = replicated_db(1, &[NodeId(0), NodeId(1)]);
    db.start_oltp(8, SimDuration::from_millis(40));
    db.run_for(SimDuration::from_secs(30));
    assert!(db.replica_reads() > 0);
    db.with_cluster(|c| {
        assert!(c.replica_read_total > 0, "router decisions counted");
        assert!(
            c.replica_read_total >= c.replica_reads,
            "every follower-served read went through the router"
        );
        assert!(!c.replica_route_weights.is_empty(), "weights recorded");
        for (&n, &w) in &c.replica_route_weights {
            assert!((1..=4).contains(&w), "{n}: weight {w} out of range");
        }
    });
}

#[test]
fn planned_rebalance_onto_a_follower_evicts_and_backfills() {
    // Aim a planned migration straight at one of the segment's own
    // follower hosts. Landing leadership there must evict that host from
    // the follower set (a leader never follows itself) *and* schedule a
    // replacement copy, so the replication factor ends where it started
    // instead of silently dropping to zero.
    let mut db = replicated_db(1, &[NodeId(0), NodeId(1), NodeId(2)]);
    let (seg, leader, follower) = db.with_cluster(|c| {
        let (seg, set) = c.replicas.iter().next().expect("replicated segment");
        (seg, set.leader, set.followers[0])
    });
    assert_eq!(
        db.replica_map().get(seg).unwrap().followers.len(),
        1,
        "{seg} at factor before the move"
    );
    let plan = db.with_cluster(|c| {
        let meta = c.seg_dir.get(seg).unwrap();
        wattdb_planner::Plan {
            planner: wattdb_planner::Planner::HeatAware,
            moves: vec![wattdb_planner::PlannedMove {
                seg,
                table: meta.table,
                range: meta.key_range.expect("physiological segments are ranged"),
                from: leader,
                to: follower,
            }],
            bytes_planned: 0,
            heat_planned: 0.0,
            predicted: Default::default(),
            initial_max_heat: 0.0,
        }
    });
    db.rebalance_planned(&plan, &[follower]);
    for _ in 0..120 {
        db.run_for(SimDuration::from_secs(5));
        if !db.rebalancing() {
            break;
        }
    }
    assert!(!db.rebalancing(), "planned move ran out");
    // Let the backfill copy land.
    db.run_for(SimDuration::from_secs(60));
    let map = db.replica_map();
    let set = map.get(seg).expect("segment still tracked");
    assert_eq!(set.leader, follower, "{seg}: leadership moved as planned");
    assert!(
        !set.followers.contains(&follower),
        "{seg}: new leader still listed as its own follower"
    );
    assert_eq!(
        set.followers.len(),
        1,
        "{seg}: factor restored by the backfill copy"
    );
    assert!(
        map.under_replicated(1).is_empty(),
        "no segment left under the factor: {:?}",
        map.under_replicated(1)
    );
    db.with_cluster(|c| {
        assert_eq!(
            c.check_replica_invariants(),
            None,
            "replica map consistent after evict + backfill"
        );
    });
}

#[test]
fn leader_kill_promotes_and_keeps_serving() {
    let mut db = replicated_db(1, &[NodeId(0), NodeId(1), NodeId(2)]);
    db.engage_autopilot(wattdb_core::AutoPilotConfig {
        policy: wattdb_core::PolicyConfig {
            cpu_high: 1.1,
            cpu_low: 0.0,
            skew_threshold: 0.0,
            net_high: 2.0, // NIC trigger off: only failover decisions fire
            ..Default::default()
        },
        period: SimDuration::from_secs(5),
    });
    db.start_oltp(6, SimDuration::from_millis(40));
    db.run_for(SimDuration::from_secs(20));
    let records = db.live_records();
    let committed = db.completed();
    // Four warehouses spread over the first two data nodes: node 1 is
    // the populated victim (node 2 hosts only follower copies).
    let victim = NodeId(1);
    let led = db.replica_map().led_by(victim);
    assert!(!led.is_empty());
    db.fail_node(victim);
    db.run_for(SimDuration::from_secs(120));
    let map = db.replica_map();
    assert!(!map.references(victim), "corpse erased from the map");
    for seg in led {
        let leader = map.leader_of(seg).expect("still tracked");
        assert_ne!(leader, victim);
    }
    // The workload keeps inserting, so the population may grow — but
    // nothing committed before the failure may be lost.
    assert!(db.live_records() >= records, "committed records lost");
    assert!(db.completed() > committed, "cluster wedged after failover");
    assert_eq!(db.failed_nodes(), vec![victim]);
}

// -------------------------------------------------------------- proptests

proptest! {
    /// Promotion picks the follower with the highest acknowledged LSN;
    /// ties break toward the lowest node id.
    #[test]
    fn promotion_picks_the_most_caught_up_follower(
        candidates in proptest::collection::vec((0u16..32, 0u64..1000), 0..16)
    ) {
        // One cursor per follower: a node appears at most once.
        let mut seen = std::collections::BTreeSet::new();
        let candidates: Vec<(NodeId, Lsn)> = candidates
            .into_iter()
            .filter(|&(n, _)| seen.insert(n))
            .map(|(n, l)| (NodeId(n), Lsn(l)))
            .collect();
        match pick_promotion(&candidates) {
            None => prop_assert!(candidates.is_empty()),
            Some(winner) => {
                let max = candidates.iter().map(|&(_, l)| l).max().unwrap();
                let won = candidates
                    .iter()
                    .find(|&&(n, _)| n == winner)
                    .expect("winner is a candidate");
                prop_assert_eq!(won.1, max, "winner is maximally caught up");
                prop_assert!(
                    candidates
                        .iter()
                        .filter(|&&(_, l)| l == max)
                        .all(|&(n, _)| winner <= n),
                    "ties break toward the lowest id"
                );
            }
        }
    }

    /// Planned follower placement never co-locates a follower with its
    /// segment's leader, never duplicates a follower, and never
    /// re-assigns a surviving existing follower.
    #[test]
    fn placement_never_co_locates_with_the_leader(
        needs in proptest::collection::vec((0u64..64, 0u16..8, proptest::collection::vec(0u16..8, 0..3)), 1..12),
        hosts in proptest::collection::vec((0u16..8, 0.0f64..100.0, 0.0f64..1.0), 1..8),
        factor in 1usize..4,
    ) {
        // One need per segment, and a follower listed at most once —
        // the shape the replica map hands the planner.
        let mut seen = std::collections::BTreeSet::new();
        let needs: Vec<ReplicaNeed> = needs
            .into_iter()
            .filter(|&(s, _, _)| seen.insert(s))
            .map(|(s, leader, existing)| {
                let mut existing: Vec<NodeId> =
                    existing.into_iter().map(NodeId).collect();
                existing.sort_unstable();
                existing.dedup();
                ReplicaNeed {
                    seg: SegmentId(s),
                    leader: NodeId(leader),
                    existing,
                }
            })
            .collect();
        let hosts: Vec<NodeLoadStat> = hosts
            .into_iter()
            .map(|(n, heat, net)| NodeLoadStat {
                node: NodeId(n),
                heat,
                net_heat: net,
            })
            .collect();
        let plan = plan_replicas(&needs, &hosts, factor);
        for p in &plan.placements {
            let need = needs.iter().find(|n| n.seg == p.seg).expect("planned need");
            prop_assert!(
                !p.followers.contains(&p.leader),
                "{}: follower on the leader", p.seg
            );
            let mut uniq = p.followers.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), p.followers.len(), "duplicate follower");
            for f in &p.followers {
                prop_assert!(
                    !need.existing.contains(f),
                    "{}: {} already a follower", p.seg, f
                );
            }
            prop_assert!(
                need.existing.len() + p.followers.len() <= factor,
                "{}: planned past the factor", p.seg
            );
        }
    }

    /// Read routing never serves past-acknowledged state: under an
    /// arbitrary interleaving of appends, shipping batches, and partial
    /// acknowledgements, a follower passing the eligibility predicate
    /// (acked ≥ the segment's last write) has acknowledged — hence
    /// persisted — every committed write; and the cursor watermarks never
    /// run ahead of each other or the log.
    #[test]
    fn routing_never_reads_past_acknowledged_state(
        steps in proptest::collection::vec((0u8..3, 0u16..3, 0u64..100), 1..64)
    ) {
        let mut log = LogManager::new();
        let mut shipper = LogShipper::new();
        let followers = [NodeId(10), NodeId(11), NodeId(12)];
        for f in followers {
            shipper.attach(f, &log);
        }
        // The segment's last committed write — the routing floor.
        let mut floor = log.last_lsn();
        let mut txn = 0u64;
        for (op, who, arg) in steps {
            let f = followers[who as usize];
            match op {
                0 => {
                    // A committed write appends and raises the floor.
                    txn += 1;
                    floor = log.append(TxnId(txn), LogPayload::Commit);
                }
                1 => {
                    // A flush ships the tail to one follower.
                    shipper.take_batch(f, &log);
                }
                _ => {
                    // A delivery acknowledges some prefix of what was
                    // shipped (never more — the wire cannot invent
                    // records).
                    if let Some(shipped) = shipper.shipped_lsn(f) {
                        let lsn = Lsn(arg.min(shipped.raw()));
                        shipper.acknowledge(f, lsn);
                    }
                }
            }
            for f in followers {
                let shipped = shipper.shipped_lsn(f).expect("attached");
                let acked = shipper.acked_lsn(f).expect("attached");
                prop_assert!(acked <= shipped, "acked ran past shipped");
                prop_assert!(shipped <= log.last_lsn(), "shipped ran past the log");
                // The executor's eligibility predicate.
                let eligible = acked >= floor;
                if eligible {
                    // An eligible follower has persisted every record up
                    // to and including the last write: nothing the leader
                    // committed can be missing from the copy it reads.
                    prop_assert!(acked >= floor && floor <= shipped);
                } else {
                    // An ineligible follower is genuinely behind.
                    prop_assert!(acked < floor, "caught-up follower refused");
                }
            }
        }
    }
}
