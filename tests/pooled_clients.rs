//! Statistical equivalence of the pooled arrival process (satellite of
//! the hot-path batching PR).
//!
//! Pooled mode replaces per-client think timers with one aggregated
//! arrival repeater over carrier clients. It is an *approximation* — the
//! determinism pin does not apply — but the workload it offers must be
//! statistically the same: the TPC-C transaction mix, the warehouse skew
//! shares, the per-modeled-client throughput, and (on a stationary
//! scenario) the autopilot's decision sequence.

use wattdb_common::{NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;
use wattdb_core::policy::PolicyConfig;
use wattdb_core::ClientBatching;

const WINDOW_SECS: u64 = 5;
const CLIENTS: u32 = 96;
const HOT_FRACTION: f64 = 0.85;

fn skew_only() -> PolicyConfig {
    PolicyConfig {
        cpu_high: 1.1,
        cpu_low: 0.0,
        patience: 2,
        skew_threshold: 1.5,
        skew_min_heat: 1.0,
        skew_cooldown: 4,
        ..Default::default()
    }
}

/// The determinism pin's stationary skewed scenario, with the client
/// batching mode forced either way.
fn oltp_run(batching: ClientBatching) -> WattDb {
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.05)
        .segment_pages(8)
        .seed(17)
        .initial_data_nodes(&[NodeId(0), NodeId(1)])
        .policy(skew_only())
        .monitoring(SimDuration::from_secs(WINDOW_SECS))
        .autopilot(true)
        .client_batching(batching)
        .build();
    db.start_oltp_skewed(CLIENTS, SimDuration::from_millis(160), HOT_FRACTION, 1);
    db.run_for(SimDuration::from_secs(WINDOW_SECS * 24));
    db.stop_clients();
    db.run_for(SimDuration::from_secs(WINDOW_SECS));
    db
}

fn mix_shares(db: &WattDb) -> Vec<(String, f64)> {
    let mix = db.mix();
    let total: u64 = mix.iter().map(|(_, n)| n).sum();
    mix.into_iter()
        .map(|(p, n)| (format!("{p:?}"), n as f64 / total.max(1) as f64))
        .collect()
}

fn hot_share(db: &WattDb) -> f64 {
    let by = db.completions_by_warehouse();
    let total: u64 = by.iter().map(|(_, n)| n).sum();
    let hot: u64 = by.iter().filter(|(w, _)| *w == 0).map(|(_, n)| n).sum();
    hot as f64 / total.max(1) as f64
}

#[test]
fn pooled_matches_per_client_statistics() {
    let per_client = oltp_run(ClientBatching::PerClient);
    let pooled = oltp_run(ClientBatching::Pooled);
    assert!(!per_client.pooled_clients());
    assert!(pooled.pooled_clients());

    // Throughput: the closed loop's offered load is set by clients and
    // think time, so modeled completions must agree within a few percent.
    let (a, b) = (per_client.completed() as f64, pooled.completed() as f64);
    assert!(a > 0.0 && b > 0.0);
    let ratio = b / a;
    assert!(
        (0.92..=1.08).contains(&ratio),
        "pooled/per-client completed ratio {ratio:.3} ({b} vs {a})"
    );

    // Transaction mix: per-profile shares within ±2 percentage points.
    // Carriers draw from the same per-client RNG streams, so the drawn
    // mix distribution is identical by construction; this checks the
    // *completed* mix end to end.
    let ma = mix_shares(&per_client);
    let mb = mix_shares(&pooled);
    for (name, share_a) in &ma {
        let share_b = mb
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .unwrap_or(0.0);
        assert!(
            (share_a - share_b).abs() <= 0.02,
            "{name}: per-client {share_a:.4} vs pooled {share_b:.4}"
        );
    }

    // Warehouse skew: the hot warehouse's completion share survives the
    // pooling (same hot-fraction homing rule over the carriers).
    let (ha, hb) = (hot_share(&per_client), hot_share(&pooled));
    assert!(
        (ha - hb).abs() <= 0.05,
        "hot-warehouse share: per-client {ha:.3} vs pooled {hb:.3}"
    );

    // Autopilot: the stationary skew scenario must elicit the same
    // decision sequence from the elasticity policy in both modes.
    let decisions = |db: &WattDb| -> Vec<String> {
        db.events()
            .iter()
            .map(|e| format!("{:?}", e.decision))
            .collect()
    };
    assert_eq!(
        decisions(&per_client),
        decisions(&pooled),
        "autopilot decision sequences diverge between client modes"
    );
}

#[test]
fn auto_mode_pools_large_populations_only() {
    // Auto stays per-client at small n; forcing Pooled overrides it even
    // at tiny populations (this is what the bench matrix relies on).
    let mut small = WattDb::builder()
        .nodes(2)
        .warehouses(2)
        .density(0.02)
        .segment_pages(8)
        .seed(3)
        .initial_data_nodes(&[NodeId(0)])
        .build();
    small.start_oltp(8, SimDuration::from_millis(100));
    assert!(!small.pooled_clients());

    let mut forced = WattDb::builder()
        .nodes(2)
        .warehouses(2)
        .density(0.02)
        .segment_pages(8)
        .seed(3)
        .initial_data_nodes(&[NodeId(0)])
        .client_batching(ClientBatching::Pooled)
        .build();
    forced.start_oltp(8, SimDuration::from_millis(100));
    assert!(forced.pooled_clients());
    forced.run_for(SimDuration::from_secs(10));
    assert!(forced.completed() > 0, "pooled arrivals drive transactions");
}
