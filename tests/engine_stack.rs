//! Integration: the storage/index/txn/WAL stack working together without
//! the cluster layer — the embedded-engine view of WattDB.

use wattdb_common::{Key, KeyRange, SegmentId, TxnId};
use wattdb_index::SegmentIndex;
use wattdb_storage::{PageStore, Record};
use wattdb_txn::{CcMode, IndexMap, LockAcquire, LockMode, LockTarget, TxnKind, TxnManager};
use wattdb_wal::{insert_payload, recover, LogManager, LogPayload};

fn setup() -> (SegmentId, IndexMap, PageStore) {
    let seg = SegmentId(1);
    let mut store = PageStore::new();
    store.add_segment(seg);
    let mut indexes = IndexMap::new();
    indexes.insert(seg, SegmentIndex::new(seg, KeyRange::all()));
    (seg, indexes, store)
}

#[test]
fn mvcc_lifecycle_with_wal_recovery() {
    let (seg, mut indexes, mut store) = setup();
    let mut tm = TxnManager::new(CcMode::Mvcc);
    let mut log = LogManager::new();

    // Commit 100 inserts, logging each; abort 50 more after logging begin.
    for i in 0..100u64 {
        let t = tm.begin(TxnKind::User);
        log.append(t, LogPayload::Begin);
        let idx = indexes.get_mut(&seg).unwrap();
        tm.insert(t, idx, &mut store, u32::MAX, Key(i), 64, vec![i as u8])
            .unwrap();
        let rec = Record::new(Key(i), 1, 64, vec![i as u8]);
        log.append(t, insert_payload(seg, &rec));
        log.append(t, LogPayload::Commit);
        tm.commit(t, &mut store).unwrap();
    }
    for i in 100..150u64 {
        let t = tm.begin(TxnKind::User);
        log.append(t, LogPayload::Begin);
        let idx = indexes.get_mut(&seg).unwrap();
        tm.insert(t, idx, &mut store, u32::MAX, Key(i), 64, vec![0])
            .unwrap();
        let rec = Record::new(Key(i), 1, 64, vec![0]);
        log.append(t, insert_payload(seg, &rec));
        // Crash before commit: no Commit record.
        tm.abort(t, &mut indexes, &mut store).unwrap();
    }
    log.mark_durable(log.last_lsn());

    // Recover onto a fresh image: only the 100 committed keys return.
    let (_, mut r_indexes, mut r_store) = setup();
    // setup() returns seg id 1 again.
    let report = recover(log.records(), &mut r_indexes, &mut r_store).unwrap();
    assert_eq!(report.winners, 100);
    assert_eq!(report.losers, 50);
    let idx = &r_indexes[&seg];
    assert_eq!(idx.len(), 100);
    for i in 0..100u64 {
        assert!(idx.get(Key(i)).0.is_some());
    }
    for i in 100..150u64 {
        assert!(idx.get(Key(i)).0.is_none());
    }
}

#[test]
fn mgl_blocks_writer_during_segment_read_lock() {
    // The §4.3 move protocol's locking story at engine level: the mover's
    // S lock on the segment lets readers through and parks writers.
    let mut tm = TxnManager::new(CcMode::Mvcc);
    let seg = SegmentId(7);
    let mover = tm.begin(TxnKind::System);
    assert_eq!(
        tm.locks
            .acquire(mover, LockTarget::Segment(seg), LockMode::S),
        LockAcquire::Granted
    );
    // Reader intent: compatible.
    let reader = tm.begin(TxnKind::User);
    assert_eq!(
        tm.locks
            .acquire(reader, LockTarget::Segment(seg), LockMode::IS),
        LockAcquire::Granted
    );
    // Writer intent: must wait.
    let writer = tm.begin(TxnKind::User);
    assert_eq!(
        tm.locks
            .acquire(writer, LockTarget::Segment(seg), LockMode::IX),
        LockAcquire::Waiting
    );
    // Mover done: the writer is granted.
    let grants = tm.locks.release_all(mover);
    assert!(grants.iter().any(|(t, _, _)| *t == writer));
}

#[test]
fn snapshot_readers_survive_concurrent_version_churn() {
    let (seg, mut indexes, mut store) = setup();
    let mut tm = TxnManager::new(CcMode::Mvcc);
    // Base version.
    let t0 = tm.begin(TxnKind::User);
    {
        let idx = indexes.get_mut(&seg).unwrap();
        tm.insert(t0, idx, &mut store, u32::MAX, Key(1), 64, vec![0])
            .unwrap();
    }
    tm.commit(t0, &mut store).unwrap();
    // Long reader pins its snapshot.
    let reader = tm.begin(TxnKind::User);
    // 20 writers churn versions on top.
    for v in 1..=20u8 {
        let t = tm.begin(TxnKind::User);
        let idx = indexes.get_mut(&seg).unwrap();
        tm.update(t, idx, &mut store, u32::MAX, Key(1), 64, vec![v])
            .unwrap();
        tm.commit(t, &mut store).unwrap();
    }
    // The reader still sees version 0.
    let idx = &indexes[&seg];
    let seen = tm.read(reader, idx, &store, Key(1)).unwrap().unwrap();
    assert_eq!(seen.payload, vec![0]);
    // A fresh reader sees version 20.
    let fresh = tm.begin(TxnKind::User);
    let seen = tm.read(fresh, idx, &store, Key(1)).unwrap().unwrap();
    assert_eq!(seen.payload, vec![20]);
    // Vacuum respects the old reader: only versions newer than its
    // snapshot may go.
    let horizon = tm.gc_horizon();
    let idx = indexes.get_mut(&seg).unwrap();
    wattdb_txn::mvcc::vacuum(idx, &mut store, horizon).unwrap();
    let idx = &indexes[&seg];
    let seen = tm.read(reader, idx, &store, Key(1)).unwrap().unwrap();
    assert_eq!(seen.payload, vec![0], "old snapshot intact after vacuum");
}

#[test]
fn locking_mode_reader_writer_interaction() {
    let (seg, mut indexes, mut store) = setup();
    let mut tm = TxnManager::new(CcMode::LockingRx);
    let t0 = tm.begin(TxnKind::User);
    {
        let idx = indexes.get_mut(&seg).unwrap();
        tm.insert(t0, idx, &mut store, u32::MAX, Key(1), 64, vec![1])
            .unwrap();
    }
    tm.commit(t0, &mut store).unwrap();
    // Reader takes S; writer's X must wait (the MGL-RX cost Fig. 3 shows).
    let reader = tm.begin(TxnKind::User);
    let tgt = LockTarget::Record(wattdb_common::TableId(1), Key(1));
    assert_eq!(
        tm.locks.acquire(reader, tgt, LockMode::S),
        LockAcquire::Granted
    );
    let writer = tm.begin(TxnKind::User);
    assert_eq!(
        tm.locks.acquire(writer, tgt, LockMode::X),
        LockAcquire::Waiting
    );
    let grants = tm.locks.release_all(reader);
    assert_eq!(grants.len(), 1);
}

#[test]
fn version_stats_reflect_update_volume() {
    let (seg, mut indexes, mut store) = setup();
    let mut tm = TxnManager::new(CcMode::Mvcc);
    for i in 0..50u64 {
        let t = tm.begin(TxnKind::User);
        let idx = indexes.get_mut(&seg).unwrap();
        tm.insert(t, idx, &mut store, u32::MAX, Key(i), 64, vec![0])
            .unwrap();
        tm.commit(t, &mut store).unwrap();
    }
    let idx = &indexes[&seg];
    let (v1, l1) = wattdb_txn::mvcc::version_stats(idx, &store).unwrap();
    assert_eq!((v1, l1), (50, 50));
    // Update half the keys twice.
    for i in 0..25u64 {
        for v in 1..=2u8 {
            let t = tm.begin(TxnKind::User);
            let idx = indexes.get_mut(&seg).unwrap();
            tm.update(t, idx, &mut store, u32::MAX, Key(i), 64, vec![v])
                .unwrap();
            tm.commit(t, &mut store).unwrap();
        }
    }
    let idx = &indexes[&seg];
    let (v2, l2) = wattdb_txn::mvcc::version_stats(idx, &store).unwrap();
    assert_eq!(l2, 50);
    assert_eq!(v2, 100, "50 base + 50 extra versions");
}

#[test]
fn system_txn_id_spaces_shared_with_users() {
    let mut tm = TxnManager::new(CcMode::Mvcc);
    let a = tm.begin(TxnKind::User);
    let b = tm.begin(TxnKind::System);
    let c = tm.begin(TxnKind::User);
    assert!(a < b && b < c);
    assert_ne!(TxnId::NONE, a);
}
