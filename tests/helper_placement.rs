//! Planner-driven helper placement (Fig. 8 helpers as a planned
//! elasticity response).
//!
//! * The helper planner targets the **net/remote-heavy** sources: under
//!   the cost signal a node whose heat is interconnect traffic outranks a
//!   hotter node burning pure CPU (a helper relieves the wire and the
//!   log, not the ALU), with the count signal falling back to total heat.
//! * A helper is never a node entangled in the in-flight migration, never
//!   one already helping, and never the master while an alternative
//!   exists.
//! * Property tests: helper choice is invariant under node renumbering,
//!   and a plan never exceeds `max_helpers` nor assigns a source or a
//!   duplicate as a helper.
//! * The manual path regression: an explicit helper list still produces
//!   the exact legacy attach/detach trace (`sources[i]` paired with
//!   `helpers[i % len]`, all listed helpers powered, everything released
//!   when the rebalance completes), bit-identical across fixed-seed runs.

use wattdb_common::{CostVector, NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;
use wattdb_core::heat::AccessKind;

fn builder(nodes: u16, data: &[NodeId]) -> wattdb_core::WattDbBuilder {
    WattDb::builder()
        .nodes(nodes)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.02)
        .segment_pages(8)
        .seed(47)
        .initial_data_nodes(data)
}

/// Charge cost-based heat to the first segment of `node`: `net` bytes of
/// interconnect traffic and `cpu_us` of CPU, so the segment's (and the
/// node's) net share is exactly what the test dictates.
fn charge(db: &mut WattDb, node: NodeId, cpu_us: u64, net: u64, times: u32) {
    let now = db.now();
    db.with_cluster_mut(|c| {
        let seg = c
            .seg_dir
            .on_node(node)
            .next()
            .expect("node holds a segment")
            .id;
        for _ in 0..times {
            c.heat.record_access(
                seg,
                now,
                AccessKind::Read,
                CostVector {
                    cpu: SimDuration::from_micros(cpu_us),
                    pages: 1,
                    net_bytes: net,
                },
                net > 0,
            );
        }
    });
}

#[test]
fn planner_targets_the_net_heaviest_source_under_cost_heat() {
    let mut db = builder(4, &[NodeId(0), NodeId(1)]).build();
    // Node 0 (the master here) burns pure CPU; node 1 runs half as much
    // heat but almost all of it is remote traffic. Node 1 ranks first —
    // its pain is exactly what a helper relieves.
    charge(&mut db, NodeId(0), 200, 0, 400);
    charge(&mut db, NodeId(1), 0, 8192, 200);
    let plan = db.plan_helpers(&[NodeId(0), NodeId(1)]);
    assert_eq!(plan.assignments.len(), 2, "{plan:?}");
    assert_eq!(
        plan.assignments[0].source,
        NodeId(1),
        "net-heavy outranks hotter-but-local: {plan:?}"
    );
    assert!(plan.predicted_relief > 0.0);
    // Helpers come from the standby pool, never a source.
    for a in &plan.assignments {
        assert!(a.helper == NodeId(2) || a.helper == NodeId(3), "{plan:?}");
    }
}

#[test]
fn net_heat_floor_drops_cpu_pure_sources() {
    // With a positive net-heat floor, the CPU-pure node gets no helper at
    // all — its pain is not remote traffic.
    let mut db = builder(4, &[NodeId(0), NodeId(1)])
        .helper_policy(wattdb_common::HelperPolicyConfig {
            min_net_heat: 1.0,
            ..Default::default()
        })
        .build();
    charge(&mut db, NodeId(0), 200, 0, 400);
    charge(&mut db, NodeId(1), 0, 8192, 200);
    let plan = db.plan_helpers(&[NodeId(0), NodeId(1)]);
    assert_eq!(plan.assignments.len(), 1, "{plan:?}");
    assert_eq!(plan.assignments[0].source, NodeId(1));
}

#[test]
fn count_signal_falls_back_to_total_heat() {
    let mut db = builder(4, &[NodeId(0), NodeId(1)]).cost_model(None).build();
    // Pure access counts: the hotter node wins, components are invisible.
    let now = db.now();
    db.with_cluster_mut(|c| {
        let s0 = c.seg_dir.on_node(NodeId(0)).next().unwrap().id;
        let s1 = c.seg_dir.on_node(NodeId(1)).next().unwrap().id;
        for _ in 0..50 {
            c.heat.record_read(s0, now);
        }
        for _ in 0..300 {
            c.heat.record_read(s1, now);
        }
    });
    let plan = db.plan_helpers(&[NodeId(0), NodeId(1)]);
    assert!(!plan.is_empty());
    assert_eq!(
        plan.assignments[0].source,
        NodeId(1),
        "count fallback ranks by total heat: {plan:?}"
    );
}

#[test]
fn planner_never_picks_migration_nodes_or_attached_helpers() {
    // A slow rebalance 0 → 2 is in flight; node 1 is the hot source.
    // Eligible helpers exclude node 0 and node 2 (migration source and
    // target) — only standby node 3 remains. Once node 3 is attached,
    // the pool is empty and the plan must come back empty rather than
    // double-book a helper.
    let mut db = builder(4, &[NodeId(0), NodeId(1)]).io_scale(4000).build();
    charge(&mut db, NodeId(1), 10, 8192, 200);
    db.rebalance(0.5, &[NodeId(0)], &[NodeId(2)]);
    db.run_for(SimDuration::from_secs(8));
    assert!(db.rebalancing(), "migration still in flight");
    let plan = db.plan_helpers(&[NodeId(1)]);
    assert_eq!(plan.assignments.len(), 1, "{plan:?}");
    assert_eq!(
        plan.assignments[0].helper,
        NodeId(3),
        "only the uninvolved standby may help: {plan:?}"
    );
    assert!(db.attach_helpers(&plan));
    assert_eq!(db.helpers_active(), vec![NodeId(3)]);
    let second = db.plan_helpers(&[NodeId(1)]);
    assert!(
        second.is_empty(),
        "every candidate is entangled or already helping: {second:?}"
    );
    db.detach_helpers();
    assert!(db.helpers_active().is_empty());
}

#[test]
fn facade_attached_helpers_survive_the_autopilot() {
    // A facade attachment is scripted: it releases when the next
    // rebalance completes or on an explicit `detach_helpers`, never
    // because the autopilot's skew happens to be subsided. Balanced heat
    // keeps the skew below the rearm band the whole run — the policy's
    // subsidence detach must not tear the user's helpers down.
    let mut db = builder(4, &[NodeId(0), NodeId(1)])
        .policy(wattdb_core::PolicyConfig {
            cpu_high: 1.1, // neither CPU bound reachable: skew-only policy
            cpu_low: 0.0,
            ..Default::default()
        })
        .autopilot(true)
        .build();
    charge(&mut db, NodeId(0), 10, 8192, 200);
    charge(&mut db, NodeId(1), 10, 8192, 200);
    let plan = db.plan_helpers(&[NodeId(1)]);
    assert!(db.attach_helpers(&plan));
    let attached = db.helpers_active();
    assert!(!attached.is_empty());
    db.run_for(SimDuration::from_secs(60)); // a dozen monitoring windows
    assert_eq!(
        db.helpers_active(),
        attached,
        "the policy must not detach a scripted attachment: {:?}",
        db.events()
    );
    assert!(
        db.events()
            .iter()
            .all(|e| !matches!(e.decision, wattdb_core::Decision::DetachHelpers { .. })),
        "no policy-side detach decision: {:?}",
        db.events()
    );
    // The explicit facade release still works.
    db.detach_helpers();
    assert!(db.helpers_active().is_empty());
}

#[test]
fn planned_rebalance_never_enlists_its_own_targets_as_helpers() {
    // `rebalance_with_helpers(HelperSet::Planned)` plans the helper set
    // for the rebalance it starts: the rebalance's own targets are
    // migration-entangled and must be off the candidate pool. Data on
    // 0/1, standbys 2/3, shipping 0 → 2: were the exclusion missing, the
    // planner would happily take standby 2 — a node about to receive
    // shipped segments — as node 0's log-shipping/buffer helper.
    let mut db = builder(4, &[NodeId(0), NodeId(1)]).build();
    charge(&mut db, NodeId(0), 10, 8192, 200);
    db.rebalance_with_helpers(
        0.5,
        &[NodeId(0)],
        &[NodeId(2)],
        wattdb_core::HelperSet::Planned,
    );
    assert!(db.rebalancing(), "rebalance started");
    assert_eq!(
        db.helpers_active(),
        vec![NodeId(3)],
        "the rebalance target must not moonlight as a helper"
    );
    db.run_for(SimDuration::from_secs(300));
    assert!(!db.rebalancing(), "rebalance completed");
    assert!(
        db.helpers_active().is_empty(),
        "planned helpers on a scripted rebalance release with its completion"
    );
}

#[test]
fn master_helps_only_when_no_alternative_exists() {
    // Data on nodes 1 and 2, both hot sources; the candidate pool is the
    // master (node 0) and standby node 3. The first plan takes the
    // standby and spares the master; once the standby is attached, the
    // master is the only node left — and only then does it help.
    let mut db = builder(4, &[NodeId(1), NodeId(2)]).build();
    charge(&mut db, NodeId(1), 10, 8192, 200);
    charge(&mut db, NodeId(2), 10, 8192, 100);
    let plan = db.plan_helpers(&[NodeId(1), NodeId(2)]);
    assert_eq!(
        plan.assignments.len(),
        1,
        "one candidate pool spot: {plan:?}"
    );
    assert_eq!(plan.assignments[0].source, NodeId(1), "net-heaviest first");
    assert_eq!(
        plan.assignments[0].helper,
        NodeId(3),
        "master spared while standby 3 exists: {plan:?}"
    );
    // Attach the standby; node 2 still wants help and only the master is
    // left. (Node 1, already helped, is dropped from the plan.)
    assert!(db.attach_helpers(&plan));
    let last_resort = db.plan_helpers(&[NodeId(1), NodeId(2)]);
    assert_eq!(
        last_resort
            .assignments
            .iter()
            .map(|a| (a.source, a.helper))
            .collect::<Vec<_>>(),
        vec![(NodeId(2), NodeId(0))],
        "master is the pool of last resort: {last_resort:?}"
    );
}

// --------------------------------------------------- manual-path regression

/// The attach-time wiring snapshot of the legacy manual path.
#[derive(Debug, PartialEq)]
struct AttachTrace {
    helper_of: Vec<(u16, Option<u16>)>,
    helpers_active: Vec<NodeId>,
    active_states: Vec<bool>,
}

fn manual_run() -> (AttachTrace, AttachTrace, wattdb_core::RebalanceReport) {
    let mut db = WattDb::builder()
        .nodes(6)
        .scheme(Scheme::Physiological)
        .warehouses(4)
        .density(0.02)
        .segment_pages(8)
        .seed(101)
        .initial_data_nodes(&[NodeId(0), NodeId(1)])
        .build();
    db.start_oltp(4, SimDuration::from_millis(50));
    db.run_for(SimDuration::from_secs(5));
    let sources = [NodeId(0), NodeId(1)];
    let targets = [NodeId(2), NodeId(3)];
    db.rebalance_with_helpers(0.5, &sources, &targets, &[NodeId(4), NodeId(5)]);
    let snapshot = |db: &WattDb| {
        db.with_cluster(|c| AttachTrace {
            helper_of: c
                .nodes
                .iter()
                .map(|n| (n.id.raw(), n.helper.map(|h| h.raw())))
                .collect(),
            helpers_active: c.helpers_active.clone(),
            active_states: c
                .nodes
                .iter()
                .map(|n| n.state == wattdb_energy::NodeState::Active)
                .collect(),
        })
    };
    let during = snapshot(&db);
    db.run_for(SimDuration::from_secs(180));
    assert!(!db.rebalancing(), "rebalance completed");
    let after = snapshot(&db);
    let report = db.last_rebalance().expect("report recorded");
    (during, after, report)
}

#[test]
fn manual_helper_list_keeps_the_legacy_attach_detach_trace() {
    let (during, after, report) = manual_run();
    // Legacy pairing: sources[i] → helpers[i % len]; both helpers listed
    // and powered for the duration.
    assert_eq!(during.helper_of[0], (0, Some(4)));
    assert_eq!(during.helper_of[1], (1, Some(5)));
    assert_eq!(during.helpers_active, vec![NodeId(4), NodeId(5)]);
    assert!(during.active_states[4] && during.active_states[5]);
    // Legacy detach: the rebalance's completion releases everything and
    // powers the helpers back down.
    assert!(after.helpers_active.is_empty());
    assert!(after.helper_of.iter().all(|(_, h)| h.is_none()));
    assert!(!after.active_states[4] && !after.active_states[5]);
    assert!(report.segments_moved > 0);
    // And the whole trace is a fixed-seed invariant: a second identical
    // run reproduces it bit for bit.
    let (during2, after2, report2) = manual_run();
    assert_eq!(during, during2);
    assert_eq!(after, after2);
    assert_eq!(report.segments_moved, report2.segments_moved);
    assert_eq!(report.bytes_moved, report2.bytes_moved);
    assert_eq!(report.started, report2.started);
}

// ------------------------------------------------------------- properties

mod props {
    use proptest::prelude::*;
    use wattdb_common::NodeId;
    use wattdb_planner::{plan_helpers, HelperCandidate, HelperConfig, NodeLoadStat};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Renumbering the nodes must renumber — not change — the helper
        /// assignment: the same physical sources pair with the same
        /// physical helpers whatever ids they carry.
        #[test]
        fn helper_choice_is_invariant_under_renumbering(
            src_heats in proptest::collection::vec(1.0f64..100.0, 1..4),
            cand_heats in proptest::collection::vec(0.0f64..50.0, 1..5),
            rot in 1usize..7,
            max_helpers in 1usize..4,
        ) {
            // Distinct signals (perturbed by index) on nodes 1..; node 0
            // is the master and stays fixed under renumbering.
            let n_src = src_heats.len();
            let n = n_src + cand_heats.len();
            let sources: Vec<NodeLoadStat> = src_heats
                .iter()
                .enumerate()
                .map(|(i, &h)| NodeLoadStat {
                    node: NodeId(i as u16 + 1),
                    heat: h + i as f64 * 1e-3,
                    net_heat: h + i as f64 * 1e-3,
                })
                .collect();
            let candidates: Vec<HelperCandidate> = cand_heats
                .iter()
                .enumerate()
                .map(|(i, &h)| HelperCandidate {
                    node: NodeId((n_src + i) as u16 + 1),
                    heat: h + i as f64 * 1e-3,
                    net: h * 0.25,
                    standby: h == 0.0,
                })
                .collect();
            let cfg = HelperConfig { max_helpers, min_net_heat: 0.0 };
            let plan_a = plan_helpers(&sources, &candidates, &[], &cfg);

            let perm = |id: NodeId| {
                if id == NodeId(0) {
                    NodeId(0)
                } else {
                    NodeId(((id.raw() as usize - 1 + rot) % n) as u16 + 1)
                }
            };
            let sources_b: Vec<NodeLoadStat> = sources
                .iter()
                .map(|s| NodeLoadStat { node: perm(s.node), ..*s })
                .collect();
            let candidates_b: Vec<HelperCandidate> = candidates
                .iter()
                .map(|c| HelperCandidate { node: perm(c.node), ..*c })
                .collect();
            let plan_b = plan_helpers(&sources_b, &candidates_b, &[], &cfg);

            let mapped: Vec<(NodeId, NodeId)> = plan_a
                .assignments
                .iter()
                .map(|a| (perm(a.source), perm(a.helper)))
                .collect();
            let got: Vec<(NodeId, NodeId)> = plan_b
                .assignments
                .iter()
                .map(|a| (a.source, a.helper))
                .collect();
            prop_assert_eq!(mapped, got, "renumbering changed the physical pairing");
        }

        /// Structural invariants: the plan never exceeds `max_helpers`,
        /// never assigns a source (or an excluded node) as a helper,
        /// never reuses a helper, and its relief is the sum of the helped
        /// sources' net heat.
        #[test]
        fn helper_plan_respects_its_bounds(
            src_heats in proptest::collection::vec(0.0f64..100.0, 0..5),
            cand_heats in proptest::collection::vec(0.0f64..50.0, 0..6),
            max_helpers in 0usize..4,
            floor in 0.0f64..30.0,
            exclude_first in 0u8..2,
        ) {
            let exclude_first = exclude_first == 1;
            let n_src = src_heats.len();
            let sources: Vec<NodeLoadStat> = src_heats
                .iter()
                .enumerate()
                .map(|(i, &h)| NodeLoadStat {
                    node: NodeId(i as u16 + 1),
                    heat: h,
                    net_heat: h * 0.7,
                })
                .collect();
            let candidates: Vec<HelperCandidate> = cand_heats
                .iter()
                .enumerate()
                .map(|(i, &h)| HelperCandidate {
                    node: NodeId((n_src + i) as u16 + 1),
                    heat: h,
                    net: h * 0.5,
                    standby: i % 2 == 0,
                })
                .collect();
            let excluded: Vec<NodeId> = if exclude_first && !candidates.is_empty() {
                vec![candidates[0].node]
            } else {
                Vec::new()
            };
            let cfg = HelperConfig { max_helpers, min_net_heat: floor };
            let plan = plan_helpers(&sources, &candidates, &excluded, &cfg);
            prop_assert!(plan.assignments.len() <= max_helpers);
            let mut seen = std::collections::BTreeSet::new();
            let mut relief = 0.0;
            for a in &plan.assignments {
                prop_assert!(seen.insert(a.helper), "helper reused: {:?}", plan);
                prop_assert!(
                    !sources.iter().any(|s| s.node == a.helper),
                    "a source helps itself: {:?}", plan
                );
                prop_assert!(!excluded.contains(&a.helper), "excluded helper: {:?}", plan);
                prop_assert!(a.net_heat >= floor, "floor violated: {:?}", plan);
                relief += a.net_heat;
            }
            prop_assert!((plan.predicted_relief - relief).abs() < 1e-9);
        }
    }
}
