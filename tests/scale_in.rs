//! Integration: the §3.4 scale-in protocol — "the master will distribute
//! the data (processing) to fewer nodes and shutdown the nodes currently
//! not needed".

use wattdb_common::{NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;
use wattdb_core::policy::{apply, suspend_empty_nodes, Decision};
use wattdb_energy::NodeState;

fn build() -> WattDb {
    WattDb::builder()
        .nodes(6)
        .scheme(Scheme::Physiological)
        .warehouses(6)
        .density(0.01)
        .segment_pages(8)
        .seed(9)
        .initial_data_nodes(&[NodeId(0), NodeId(1), NodeId(2)])
        .build()
}

#[test]
fn draining_a_node_moves_everything_and_powers_it_down() {
    let mut db = build();
    let before_keys: usize = {
        let c = db.cluster.borrow();
        c.indexes.values().map(|i| i.len()).sum()
    };
    // The policy decided node 2 should drain (e.g. after a quiet period).
    let decision = Decision::ScaleIn {
        drain: vec![NodeId(2)],
    };
    apply(&db.cluster, &mut db.sim, &decision, 1.0);
    for _ in 0..120 {
        db.run_for(SimDuration::from_secs(5));
        if !db.rebalancing() {
            break;
        }
    }
    assert!(!db.rebalancing(), "drain finished");
    {
        let mut c = db.cluster.borrow_mut();
        c.vacuum_all();
        assert_eq!(
            c.seg_dir.on_node(NodeId(2)).count(),
            0,
            "node 2 holds no segments after draining"
        );
        let after: usize = c.indexes.values().map(|i| i.len()).sum();
        assert_eq!(after, before_keys, "population preserved across drain");
    }
    // Now the empty node can be suspended.
    let off = suspend_empty_nodes(&db.cluster);
    assert!(off.contains(&NodeId(2)), "drained node suspended: {off:?}");
    let c = db.cluster.borrow();
    assert_eq!(c.nodes[2].state, NodeState::Standby);
    // The survivors still serve: every warehouse's keys route somewhere.
    for w in 0..6u32 {
        let key = wattdb_tpcc::keys::warehouse(w);
        let r = c
            .router
            .route(wattdb_tpcc::TpccTable::Warehouse.table_id(), key)
            .unwrap();
        assert_ne!(r.primary.node, NodeId(2), "nothing routes to the drained node");
    }
}

#[test]
fn suspend_refuses_nodes_that_still_hold_data() {
    let db = build();
    let off = suspend_empty_nodes(&db.cluster);
    // Nodes 1 and 2 hold data; only never-used actives (none here besides
    // data holders) may suspend. The master (node 0) is never suspended.
    assert!(!off.contains(&NodeId(1)));
    assert!(!off.contains(&NodeId(2)));
    let c = db.cluster.borrow();
    assert_eq!(c.nodes[0].state, NodeState::Active, "master stays up");
    assert_eq!(c.nodes[1].state, NodeState::Active);
}

#[test]
fn scale_in_lowers_cluster_power() {
    let mut db = build();
    let p_before = db.power_now();
    apply(
        &db.cluster,
        &mut db.sim,
        &Decision::ScaleIn {
            drain: vec![NodeId(2)],
        },
        1.0,
    );
    for _ in 0..120 {
        db.run_for(SimDuration::from_secs(5));
        if !db.rebalancing() {
            break;
        }
    }
    suspend_empty_nodes(&db.cluster);
    db.run_for(SimDuration::from_secs(2));
    let p_after = db.power_now();
    // One node from active (~22 W + drives ~9 W) to standby (2.5 W).
    assert!(
        p_before - p_after > 20.0,
        "power drop after scale-in: {p_before} -> {p_after}"
    );
}
