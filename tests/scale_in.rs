//! Integration: the §3.4 scale-in protocol — "the master will distribute
//! the data (processing) to fewer nodes and shutdown the nodes currently
//! not needed".

use wattdb_common::{NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;
use wattdb_core::policy::{Decision, PolicyConfig};
use wattdb_energy::NodeState;

fn build() -> WattDb {
    WattDb::builder()
        .nodes(6)
        .scheme(Scheme::Physiological)
        .warehouses(6)
        .density(0.01)
        .segment_pages(8)
        .seed(9)
        .initial_data_nodes(&[NodeId(0), NodeId(1), NodeId(2)])
        .build()
}

fn apply(db: &mut WattDb, decision: &Decision, fraction: f64) {
    let cfg = PolicyConfig {
        move_fraction: fraction,
        ..Default::default()
    };
    db.with_runtime(|cl, sim| wattdb_core::policy::apply(cl, sim, decision, &cfg));
}

fn suspend_empty(db: &mut WattDb) -> Vec<NodeId> {
    db.with_runtime(|cl, _| wattdb_core::policy::suspend_empty_nodes(cl))
}

fn node_state(db: &WattDb, node: NodeId) -> NodeState {
    db.with_cluster(|c| c.nodes[node.raw() as usize].state)
}

#[test]
fn draining_a_node_moves_everything_and_powers_it_down() {
    let mut db = build();
    let before_keys = db.live_records();
    // The policy decided node 2 should drain (e.g. after a quiet period).
    let decision = Decision::ScaleIn {
        drain: vec![NodeId(2)],
    };
    apply(&mut db, &decision, 1.0);
    for _ in 0..120 {
        db.run_for(SimDuration::from_secs(5));
        if !db.rebalancing() {
            break;
        }
    }
    assert!(!db.rebalancing(), "drain finished");
    db.vacuum();
    assert_eq!(
        db.segments_on(NodeId(2)),
        0,
        "node 2 holds no segments after draining"
    );
    assert_eq!(
        db.live_records(),
        before_keys,
        "population preserved across drain"
    );
    // Now the empty node can be suspended.
    let off = suspend_empty(&mut db);
    assert!(off.contains(&NodeId(2)), "drained node suspended: {off:?}");
    assert_eq!(node_state(&db, NodeId(2)), NodeState::Standby);
    // The survivors still serve: every warehouse's keys route somewhere.
    db.with_cluster(|c| {
        for w in 0..6u32 {
            let key = wattdb_tpcc::keys::warehouse(w);
            let r = c
                .router
                .route(wattdb_tpcc::TpccTable::Warehouse.table_id(), key)
                .unwrap();
            assert_ne!(
                r.primary.node,
                NodeId(2),
                "nothing routes to the drained node"
            );
        }
    });
}

#[test]
fn suspend_refuses_nodes_that_still_hold_data() {
    let mut db = build();
    let off = suspend_empty(&mut db);
    // Nodes 1 and 2 hold data; only never-used actives (none here besides
    // data holders) may suspend. The master (node 0) is never suspended.
    assert!(!off.contains(&NodeId(1)));
    assert!(!off.contains(&NodeId(2)));
    assert_eq!(
        node_state(&db, NodeId(0)),
        NodeState::Active,
        "master stays up"
    );
    assert_eq!(node_state(&db, NodeId(1)), NodeState::Active);
}

#[test]
fn scale_in_lowers_cluster_power() {
    let mut db = build();
    let p_before = db.power_now();
    apply(
        &mut db,
        &Decision::ScaleIn {
            drain: vec![NodeId(2)],
        },
        1.0,
    );
    for _ in 0..120 {
        db.run_for(SimDuration::from_secs(5));
        if !db.rebalancing() {
            break;
        }
    }
    suspend_empty(&mut db);
    db.run_for(SimDuration::from_secs(2));
    let p_after = db.power_now();
    // One node from active (~22 W + drives ~9 W) to standby (2.5 W).
    assert!(
        p_before - p_after > 20.0,
        "power drop after scale-in: {p_before} -> {p_after}"
    );
}
