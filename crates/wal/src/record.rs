//! Write-ahead log records.
//!
//! WattDB logs logically at record granularity ("physiological" logging in
//! the classic sense: logical within a segment): each data change carries
//! the key, segment, and before/after images needed for REDO and UNDO.
//! Segment moves appear as bracketing records — the move itself needs no
//! per-record logging because it read-locks the partition and acts as a
//! checkpoint (§4.3, *Logging*).

use wattdb_common::{Lsn, SegmentId, TxnId};

/// Fixed per-record header overhead counted toward log volume (LSN, txn,
/// kind tag, lengths).
pub const LOG_HEADER_BYTES: usize = 32;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogPayload {
    /// Transaction began.
    Begin,
    /// Transaction committed.
    Commit,
    /// Transaction aborted (undo completed).
    Abort,
    /// A key was inserted: after-image bytes.
    Insert {
        /// Segment holding the key.
        segment: SegmentId,
        /// Encoded after-image ([`wattdb_storage::Record`] bytes).
        after: Vec<u8>,
    },
    /// A key was updated: before and after images.
    Update {
        /// Segment holding the key.
        segment: SegmentId,
        /// Encoded before-image.
        before: Vec<u8>,
        /// Encoded after-image.
        after: Vec<u8>,
    },
    /// A key was deleted: before image.
    Delete {
        /// Segment holding the key.
        segment: SegmentId,
        /// Encoded before-image.
        before: Vec<u8>,
    },
    /// A segment move started (source side). Acts as a checkpoint for the
    /// segment: all prior changes are committed and flushed.
    SegmentMoveStart {
        /// Moving segment.
        segment: SegmentId,
        /// Destination node (raw id; the WAL layer is node-agnostic).
        to_node: u16,
    },
    /// A segment move finished; the old copy may be dropped.
    SegmentMoveEnd {
        /// Moved segment.
        segment: SegmentId,
    },
    /// Fuzzy checkpoint: transactions live at checkpoint time.
    Checkpoint {
        /// Transactions in flight.
        active: Vec<TxnId>,
    },
}

/// One log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Sequence number (unique, dense, per node).
    pub lsn: Lsn,
    /// Owning transaction ([`TxnId::NONE`] for checkpoints/moves).
    pub txn: TxnId,
    /// The change.
    pub payload: LogPayload,
}

impl LogRecord {
    /// Bytes this record contributes to the log (header + images); drives
    /// flush I/O and log-shipping network volume.
    pub fn encoded_len(&self) -> usize {
        LOG_HEADER_BYTES
            + match &self.payload {
                LogPayload::Begin | LogPayload::Commit | LogPayload::Abort => 0,
                LogPayload::Insert { after, .. } => after.len(),
                LogPayload::Update { before, after, .. } => before.len() + after.len(),
                LogPayload::Delete { before, .. } => before.len(),
                LogPayload::SegmentMoveStart { .. } | LogPayload::SegmentMoveEnd { .. } => 16,
                LogPayload::Checkpoint { active } => 8 * active.len(),
            }
    }

    /// True for records that change data (need redo/undo).
    pub fn is_data_change(&self) -> bool {
        matches!(
            self.payload,
            LogPayload::Insert { .. } | LogPayload::Update { .. } | LogPayload::Delete { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_len_scales_with_images() {
        let small = LogRecord {
            lsn: Lsn(1),
            txn: TxnId(1),
            payload: LogPayload::Commit,
        };
        let big = LogRecord {
            lsn: Lsn(2),
            txn: TxnId(1),
            payload: LogPayload::Update {
                segment: SegmentId(1),
                before: vec![0; 100],
                after: vec![0; 120],
            },
        };
        assert_eq!(small.encoded_len(), LOG_HEADER_BYTES);
        assert_eq!(big.encoded_len(), LOG_HEADER_BYTES + 220);
    }

    #[test]
    fn data_change_classification() {
        let mk = |p| LogRecord {
            lsn: Lsn(1),
            txn: TxnId(1),
            payload: p,
        };
        assert!(mk(LogPayload::Insert {
            segment: SegmentId(1),
            after: vec![]
        })
        .is_data_change());
        assert!(!mk(LogPayload::Begin).is_data_change());
        assert!(!mk(LogPayload::Checkpoint { active: vec![] }).is_data_change());
        assert!(!mk(LogPayload::SegmentMoveEnd {
            segment: SegmentId(1)
        })
        .is_data_change());
    }
}
