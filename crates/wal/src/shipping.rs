//! Log shipping to helper nodes.
//!
//! In the paper's improved physiological experiment (Fig. 8), helper nodes
//! are "used for log shipping and provision of additional buffer space":
//! instead of competing with rebalancing I/O for the local disks, the
//! loaded node streams its log tail to a helper, which persists it. The
//! [`LogShipper`] tracks, per follower, how far the log has been shipped
//! and acknowledged; the cluster layer charges the network costs.

use std::collections::HashMap;

use wattdb_common::{Lsn, NodeId};

use crate::log::LogManager;
use crate::record::LogRecord;

/// Per-follower shipping cursor over one node's log.
#[derive(Debug, Default)]
pub struct LogShipper {
    /// follower → (shipped up to, acknowledged up to).
    followers: HashMap<NodeId, (Lsn, Lsn)>,
    shipped_bytes: u64,
}

impl LogShipper {
    /// No followers attached.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a follower starting from the log's current end (it does not
    /// need history — shipping covers new traffic only).
    pub fn attach(&mut self, follower: NodeId, log: &LogManager) {
        self.followers
            .entry(follower)
            .or_insert((log.last_lsn(), log.last_lsn()));
    }

    /// Detach a follower (helper powered down after rebalancing).
    pub fn detach(&mut self, follower: NodeId) {
        self.followers.remove(&follower);
    }

    /// Whether any follower is attached (enables shipping mode).
    pub fn active(&self) -> bool {
        !self.followers.is_empty()
    }

    /// Attached followers.
    pub fn followers(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.followers.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Records not yet shipped to `follower`, with their total byte size.
    /// Marks them shipped (in flight).
    pub fn take_batch<'a>(
        &mut self,
        follower: NodeId,
        log: &'a LogManager,
    ) -> Option<(&'a [LogRecord], usize)> {
        let (shipped, _) = self.followers.get_mut(&follower)?;
        let batch = log.records_after(*shipped);
        if batch.is_empty() {
            return None;
        }
        *shipped = batch.last().expect("non-empty").lsn;
        let bytes: usize = batch.iter().map(|r| r.encoded_len()).sum();
        self.shipped_bytes += bytes as u64;
        Some((batch, bytes))
    }

    /// Follower confirmed persistence up to `lsn`. Returns the new minimum
    /// acknowledged LSN across followers — records up to it are remotely
    /// durable.
    pub fn acknowledge(&mut self, follower: NodeId, lsn: Lsn) -> Option<Lsn> {
        let (_, acked) = self.followers.get_mut(&follower)?;
        if lsn > *acked {
            *acked = lsn;
        }
        self.followers.values().map(|(_, a)| *a).min()
    }

    /// Total bytes shipped.
    pub fn shipped_bytes(&self) -> u64 {
        self.shipped_bytes
    }

    /// Highest LSN shipped to `follower` (in flight or acknowledged).
    pub fn shipped_lsn(&self, follower: NodeId) -> Option<Lsn> {
        self.followers.get(&follower).map(|(s, _)| *s)
    }

    /// Highest LSN `follower` has acknowledged as persisted — the bound on
    /// how stale a read served by that follower can be.
    pub fn acked_lsn(&self, follower: NodeId) -> Option<Lsn> {
        self.followers.get(&follower).map(|(_, a)| *a)
    }

    /// How many log records `follower` is behind the log's end
    /// (unacknowledged tail). Zero means fully caught up.
    pub fn lag(&self, follower: NodeId, log: &LogManager) -> Option<u64> {
        let (_, acked) = self.followers.get(&follower)?;
        Some(log.last_lsn().raw().saturating_sub(acked.raw()))
    }

    /// The **most-caught-up** follower: highest acknowledged LSN, ties
    /// broken by lowest node id for determinism. This is the failover
    /// promotion choice — the candidate that loses the least committed
    /// history. `None` with no followers attached.
    pub fn most_caught_up(&self) -> Option<NodeId> {
        self.followers
            .iter()
            .map(|(&n, &(_, a))| (n, a))
            .max_by(|x, y| x.1.cmp(&y.1).then_with(|| y.0.cmp(&x.0)))
            .map(|(n, _)| n)
    }

    /// All shipping cursors, sorted by follower id:
    /// `(follower, shipped, acked)`.
    pub fn cursors(&self) -> Vec<(NodeId, Lsn, Lsn)> {
        let mut v: Vec<(NodeId, Lsn, Lsn)> = self
            .followers
            .iter()
            .map(|(&n, &(s, a))| (n, s, a))
            .collect();
        v.sort_unstable_by_key(|&(n, _, _)| n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogPayload;
    use wattdb_common::TxnId;

    #[test]
    fn ship_and_acknowledge() {
        let mut log = LogManager::new();
        let mut shipper = LogShipper::new();
        let helper = NodeId(5);
        shipper.attach(helper, &log);
        assert!(shipper.active());
        // New traffic arrives.
        for t in 1..=3u64 {
            log.append(TxnId(t), LogPayload::Commit);
        }
        let (batch, bytes) = shipper.take_batch(helper, &log).unwrap();
        assert_eq!(batch.len(), 3);
        assert!(bytes > 0);
        // Nothing more to ship until new appends.
        assert!(shipper.take_batch(helper, &log).is_none());
        let durable = shipper.acknowledge(helper, Lsn(3)).unwrap();
        assert_eq!(durable, Lsn(3));
    }

    #[test]
    fn attach_skips_history() {
        let mut log = LogManager::new();
        for t in 1..=10u64 {
            log.append(TxnId(t), LogPayload::Commit);
        }
        let mut shipper = LogShipper::new();
        shipper.attach(NodeId(5), &log);
        assert!(shipper.take_batch(NodeId(5), &log).is_none());
        log.append(TxnId(11), LogPayload::Commit);
        let (batch, _) = shipper.take_batch(NodeId(5), &log).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].txn, TxnId(11));
    }

    #[test]
    fn min_ack_across_followers() {
        let mut log = LogManager::new();
        let mut shipper = LogShipper::new();
        shipper.attach(NodeId(5), &log);
        shipper.attach(NodeId(6), &log);
        for t in 1..=4u64 {
            log.append(TxnId(t), LogPayload::Commit);
        }
        shipper.take_batch(NodeId(5), &log);
        shipper.take_batch(NodeId(6), &log);
        assert_eq!(shipper.acknowledge(NodeId(5), Lsn(4)), Some(Lsn::ZERO));
        assert_eq!(shipper.acknowledge(NodeId(6), Lsn(2)), Some(Lsn(2)));
        shipper.detach(NodeId(6));
        assert_eq!(shipper.acknowledge(NodeId(5), Lsn(4)), Some(Lsn(4)));
        assert_eq!(shipper.followers(), vec![NodeId(5)]);
    }

    #[test]
    fn lag_and_catch_up_accounting() {
        let mut log = LogManager::new();
        let mut shipper = LogShipper::new();
        shipper.attach(NodeId(5), &log);
        shipper.attach(NodeId(6), &log);
        for t in 1..=6u64 {
            log.append(TxnId(t), LogPayload::Commit);
        }
        // Nothing shipped yet: both followers lag by the full tail.
        assert_eq!(shipper.lag(NodeId(5), &log), Some(6));
        assert_eq!(shipper.acked_lsn(NodeId(5)), Some(Lsn::ZERO));
        shipper.take_batch(NodeId(5), &log);
        shipper.take_batch(NodeId(6), &log);
        assert_eq!(shipper.shipped_lsn(NodeId(5)), Some(Lsn(6)));
        // Acks diverge: node 6 persisted further.
        shipper.acknowledge(NodeId(5), Lsn(3));
        shipper.acknowledge(NodeId(6), Lsn(5));
        assert_eq!(shipper.lag(NodeId(5), &log), Some(3));
        assert_eq!(shipper.lag(NodeId(6), &log), Some(1));
        assert_eq!(shipper.most_caught_up(), Some(NodeId(6)));
        assert_eq!(
            shipper.cursors(),
            vec![(NodeId(5), Lsn(6), Lsn(3)), (NodeId(6), Lsn(6), Lsn(5)),]
        );
        // Ties break toward the lowest node id.
        shipper.acknowledge(NodeId(5), Lsn(5));
        assert_eq!(shipper.most_caught_up(), Some(NodeId(5)));
        // Unknown follower: no cursor, no lag.
        assert_eq!(shipper.lag(NodeId(9), &log), None);
        assert_eq!(shipper.acked_lsn(NodeId(9)), None);
        assert_eq!(LogShipper::new().most_caught_up(), None);
    }
}
