//! Per-node log manager with group commit.
//!
//! "For durability reasons, write-ahead logs must be maintained at all
//! times. When repartitioning, although record ownership changes, log files
//! remain on the original node" (§4.3). Each node therefore owns one
//! [`LogManager`]; a moved partition starts logging into the *new* node's
//! manager after the move completes.
//!
//! The manager buffers appended records and exposes the pending byte count;
//! the cluster layer charges the disk (or network, under log shipping) cost
//! of a flush and then confirms it with [`LogManager::mark_durable`].

use wattdb_common::{Lsn, TxnId};

use crate::record::{LogPayload, LogRecord};

/// Append-only log for one node.
#[derive(Debug, Default)]
pub struct LogManager {
    records: Vec<LogRecord>,
    next_lsn: u64,
    /// All records with `lsn <= durable` are on stable storage.
    durable: Lsn,
    /// Byte size of records not yet durable.
    pending_bytes: usize,
    /// Total bytes ever flushed (diagnostics / Fig. 7 logging share).
    flushed_bytes: u64,
    flushes: u64,
}

impl LogManager {
    /// Empty log.
    pub fn new() -> Self {
        Self {
            records: Vec::new(),
            next_lsn: 1,
            durable: Lsn::ZERO,
            pending_bytes: 0,
            flushed_bytes: 0,
            flushes: 0,
        }
    }

    /// Append a record; returns its LSN. The record is *not* durable until
    /// a flush covers it.
    pub fn append(&mut self, txn: TxnId, payload: LogPayload) -> Lsn {
        let lsn = Lsn(self.next_lsn);
        self.next_lsn += 1;
        let rec = LogRecord { lsn, txn, payload };
        self.pending_bytes += rec.encoded_len();
        self.records.push(rec);
        lsn
    }

    /// Highest LSN handed out.
    pub fn last_lsn(&self) -> Lsn {
        Lsn(self.next_lsn - 1)
    }

    /// Highest durable LSN.
    pub fn durable_lsn(&self) -> Lsn {
        self.durable
    }

    /// Bytes awaiting flush (the I/O a flush will cost).
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// True if `lsn` is already durable.
    pub fn is_durable(&self, lsn: Lsn) -> bool {
        lsn <= self.durable
    }

    /// Mark everything up to `lsn` durable (after the flush I/O completed).
    /// Group commit: one flush typically covers many commits.
    pub fn mark_durable(&mut self, lsn: Lsn) {
        if lsn <= self.durable {
            return;
        }
        let lo = self.durable;
        self.durable = Lsn(lsn.raw().min(self.next_lsn - 1));
        let newly: usize = self
            .records
            .iter()
            .filter(|r| r.lsn > lo && r.lsn <= self.durable)
            .map(|r| r.encoded_len())
            .sum();
        self.pending_bytes -= newly.min(self.pending_bytes);
        self.flushed_bytes += newly as u64;
        self.flushes += 1;
    }

    /// Total bytes flushed over the log's lifetime.
    pub fn flushed_bytes(&self) -> u64 {
        self.flushed_bytes
    }

    /// Number of flushes performed.
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// All records (recovery input).
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Records after `from` (exclusive), for log shipping.
    pub fn records_after(&self, from: Lsn) -> &[LogRecord] {
        let start = self.records.partition_point(|r| r.lsn <= from);
        &self.records[start..]
    }

    /// Drop records at or below `lsn` (post-checkpoint truncation; §4.3:
    /// "the old copies and the old log file are no longer required").
    pub fn truncate_through(&mut self, lsn: Lsn) {
        assert!(lsn <= self.durable, "cannot truncate undurable log records");
        self.records.retain(|r| r.lsn > lsn);
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the retained log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattdb_common::SegmentId;

    #[test]
    fn append_assigns_dense_lsns() {
        let mut log = LogManager::new();
        let a = log.append(TxnId(1), LogPayload::Begin);
        let b = log.append(TxnId(1), LogPayload::Commit);
        assert_eq!(a, Lsn(1));
        assert_eq!(b, Lsn(2));
        assert_eq!(log.last_lsn(), Lsn(2));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn durability_tracking() {
        let mut log = LogManager::new();
        let l1 = log.append(TxnId(1), LogPayload::Begin);
        let l2 = log.append(
            TxnId(1),
            LogPayload::Insert {
                segment: SegmentId(1),
                after: vec![0; 50],
            },
        );
        assert!(!log.is_durable(l1));
        assert!(log.pending_bytes() > 50);
        log.mark_durable(l2);
        assert!(log.is_durable(l1));
        assert!(log.is_durable(l2));
        assert_eq!(log.pending_bytes(), 0);
        assert_eq!(log.flush_count(), 1);
    }

    #[test]
    fn group_commit_covers_multiple_txns() {
        let mut log = LogManager::new();
        for t in 1..=5u64 {
            log.append(TxnId(t), LogPayload::Commit);
        }
        log.mark_durable(log.last_lsn());
        assert_eq!(log.flush_count(), 1, "one flush, five commits");
        assert_eq!(log.pending_bytes(), 0);
    }

    #[test]
    fn mark_durable_is_monotonic_and_idempotent() {
        let mut log = LogManager::new();
        log.append(TxnId(1), LogPayload::Begin);
        log.append(TxnId(1), LogPayload::Commit);
        log.mark_durable(Lsn(2));
        let flushed = log.flushed_bytes();
        log.mark_durable(Lsn(1)); // regress: no-op
        log.mark_durable(Lsn(2)); // repeat: no-op
        assert_eq!(log.flushed_bytes(), flushed);
        // Beyond the end clamps.
        log.append(TxnId(2), LogPayload::Begin);
        log.mark_durable(Lsn(99));
        assert_eq!(log.durable_lsn(), Lsn(3));
    }

    #[test]
    fn shipping_window() {
        let mut log = LogManager::new();
        for t in 1..=4u64 {
            log.append(TxnId(t), LogPayload::Begin);
        }
        let tail = log.records_after(Lsn(2));
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].lsn, Lsn(3));
        assert!(log.records_after(Lsn(4)).is_empty());
        assert_eq!(log.records_after(Lsn::ZERO).len(), 4);
    }

    #[test]
    fn truncation_after_checkpoint() {
        let mut log = LogManager::new();
        for t in 1..=4u64 {
            log.append(TxnId(t), LogPayload::Commit);
        }
        log.mark_durable(Lsn(4));
        log.truncate_through(Lsn(2));
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[0].lsn, Lsn(3));
        // New appends continue the LSN sequence.
        assert_eq!(log.append(TxnId(9), LogPayload::Begin), Lsn(5));
    }

    #[test]
    #[should_panic(expected = "undurable")]
    fn cannot_truncate_volatile_tail() {
        let mut log = LogManager::new();
        log.append(TxnId(1), LogPayload::Begin);
        log.truncate_through(Lsn(1));
    }
}
