//! Crash recovery: analysis / redo / undo over the logical log.
//!
//! "In case of DB failures, the log file is needed to reconstruct
//! partitions and to perform appropriate UNDO and REDO operations" (§4.3).
//!
//! The recovery model matches the logging model: recovery starts from the
//! last checkpoint image of the data (segments + indexes as of the durable
//! checkpoint) and replays the retained log exactly once —
//!
//! 1. **Analysis**: scan for `Commit` records → the winner set.
//! 2. **Redo**: re-apply every data change of winning transactions in LSN
//!    order.
//! 3. **Undo**: data changes of losers were never applied to the checkpoint
//!    image, so there is nothing to roll back physically; losers simply
//!    vanish. (In-flight changes only ever exist in volatile memory in this
//!    engine: dirty pages are flushed no earlier than their commit record —
//!    a strict WAL discipline enforced by the cluster layer.)

use std::collections::HashSet;

use wattdb_common::{Error, Result, TxnId};
use wattdb_index::SegmentIndex;
use wattdb_storage::{PageStore, Record};
use wattdb_txn::IndexMap;

use crate::record::{LogPayload, LogRecord};

/// Outcome summary of a recovery pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed transactions found.
    pub winners: usize,
    /// Uncommitted transactions discarded.
    pub losers: usize,
    /// Data-change records re-applied.
    pub redone: usize,
}

/// Replay `log` onto the checkpoint image in `indexes`/`store`.
///
/// `indexes` must contain an entry for every segment referenced by winning
/// records (the checkpointed segment set).
pub fn recover(
    log: &[LogRecord],
    indexes: &mut IndexMap,
    store: &mut PageStore,
) -> Result<RecoveryReport> {
    // Analysis.
    let mut begun: HashSet<TxnId> = HashSet::new();
    let mut winners: HashSet<TxnId> = HashSet::new();
    for rec in log {
        match rec.payload {
            LogPayload::Begin => {
                begun.insert(rec.txn);
            }
            LogPayload::Commit => {
                winners.insert(rec.txn);
            }
            _ => {}
        }
    }
    let losers = begun.iter().filter(|t| !winners.contains(t)).count();

    // Redo winners in LSN order.
    let mut redone = 0;
    for rec in log {
        if !rec.is_data_change() || !winners.contains(&rec.txn) {
            continue;
        }
        match &rec.payload {
            LogPayload::Insert { segment, after } => {
                let image = Record::decode(after)?;
                let idx = indexes
                    .get_mut(segment)
                    .ok_or(Error::UnknownSegment(*segment))?;
                let (rid, _) = store.insert_record(*segment, &image, u32::MAX)?;
                idx.insert(image.key, rid);
            }
            LogPayload::Update { segment, after, .. } => {
                let image = Record::decode(after)?;
                let idx = indexes
                    .get_mut(segment)
                    .ok_or(Error::UnknownSegment(*segment))?;
                let (rid, _) = idx.get(image.key);
                match rid {
                    Some(rid) => store.write_record(rid, &image)?,
                    None => {
                        // Key absent in the checkpoint image (created and
                        // checkpoint-truncated edge): insert the image.
                        let (rid, _) = store.insert_record(*segment, &image, u32::MAX)?;
                        idx.insert(image.key, rid);
                    }
                }
            }
            LogPayload::Delete { segment, before } => {
                let image = Record::decode(before)?;
                let idx = indexes
                    .get_mut(segment)
                    .ok_or(Error::UnknownSegment(*segment))?;
                if let (Some(rid), _) = idx.get(image.key) {
                    store.delete_record(rid)?;
                    idx.remove(image.key);
                }
            }
            _ => unreachable!("is_data_change filtered"),
        }
        redone += 1;
    }

    Ok(RecoveryReport {
        winners: winners.len(),
        losers,
        redone,
    })
}

/// Build the log images for a data change (helpers for the cluster layer).
pub fn insert_payload(segment: wattdb_common::SegmentId, after: &Record) -> LogPayload {
    LogPayload::Insert {
        segment,
        after: after.encode(),
    }
}

/// Update payload from before/after images.
pub fn update_payload(
    segment: wattdb_common::SegmentId,
    before: &Record,
    after: &Record,
) -> LogPayload {
    LogPayload::Update {
        segment,
        before: before.encode(),
        after: after.encode(),
    }
}

/// Delete payload from the before image.
pub fn delete_payload(segment: wattdb_common::SegmentId, before: &Record) -> LogPayload {
    LogPayload::Delete {
        segment,
        before: before.encode(),
    }
}

/// Verify a segment's index and pages agree (post-recovery consistency
/// check): every indexed key resolves, every stored head is indexed.
pub fn check_consistency(index: &SegmentIndex, store: &PageStore) -> Result<()> {
    for (key, rid) in index.entries() {
        let rec = store.read_record(rid)?;
        if rec.key != key {
            return Err(Error::Corruption("index points at wrong record"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogManager;
    use wattdb_common::{Key, KeyRange, SegmentId};

    fn fresh(seg: SegmentId) -> (IndexMap, PageStore) {
        let mut store = PageStore::new();
        store.add_segment(seg);
        let mut map = IndexMap::new();
        map.insert(seg, SegmentIndex::new(seg, KeyRange::all()));
        (map, store)
    }

    fn rec(key: u64, val: u8) -> Record {
        Record::new(Key(key), 10, 64, vec![val])
    }

    #[test]
    fn committed_work_survives() {
        let seg = SegmentId(1);
        let mut log = LogManager::new();
        log.append(TxnId(1), LogPayload::Begin);
        log.append(TxnId(1), insert_payload(seg, &rec(1, 7)));
        log.append(TxnId(1), LogPayload::Commit);
        // Crash: recover onto an empty checkpoint image.
        let (mut indexes, mut store) = fresh(seg);
        let report = recover(log.records(), &mut indexes, &mut store).unwrap();
        assert_eq!(report.winners, 1);
        assert_eq!(report.redone, 1);
        let idx = &indexes[&seg];
        let (rid, _) = idx.get(Key(1));
        let r = store.read_record(rid.unwrap()).unwrap();
        assert_eq!(r.payload, vec![7]);
        check_consistency(idx, &store).unwrap();
    }

    #[test]
    fn uncommitted_work_vanishes() {
        let seg = SegmentId(1);
        let mut log = LogManager::new();
        log.append(TxnId(1), LogPayload::Begin);
        log.append(TxnId(1), insert_payload(seg, &rec(1, 7)));
        // no commit — loser
        log.append(TxnId(2), LogPayload::Begin);
        log.append(TxnId(2), insert_payload(seg, &rec(2, 9)));
        log.append(TxnId(2), LogPayload::Commit);
        let (mut indexes, mut store) = fresh(seg);
        let report = recover(log.records(), &mut indexes, &mut store).unwrap();
        assert_eq!(report.winners, 1);
        assert_eq!(report.losers, 1);
        let idx = &indexes[&seg];
        assert_eq!(idx.get(Key(1)).0, None, "loser's insert discarded");
        assert!(idx.get(Key(2)).0.is_some());
    }

    #[test]
    fn update_and_delete_replay_in_order() {
        let seg = SegmentId(1);
        let mut log = LogManager::new();
        let v1 = rec(1, 1);
        let mut v2 = rec(1, 2);
        v2.begin = 20;
        log.append(TxnId(1), LogPayload::Begin);
        log.append(TxnId(1), insert_payload(seg, &v1));
        log.append(TxnId(1), LogPayload::Commit);
        log.append(TxnId(2), LogPayload::Begin);
        log.append(TxnId(2), update_payload(seg, &v1, &v2));
        log.append(TxnId(2), LogPayload::Commit);
        log.append(TxnId(3), LogPayload::Begin);
        log.append(TxnId(3), insert_payload(seg, &rec(5, 5)));
        log.append(TxnId(3), delete_payload(seg, &v2));
        log.append(TxnId(3), LogPayload::Commit);
        let (mut indexes, mut store) = fresh(seg);
        let report = recover(log.records(), &mut indexes, &mut store).unwrap();
        assert_eq!(report.redone, 4);
        let idx = &indexes[&seg];
        assert_eq!(idx.get(Key(1)).0, None, "deleted at the end");
        let (rid, _) = idx.get(Key(5));
        assert_eq!(store.read_record(rid.unwrap()).unwrap().payload, vec![5]);
    }

    #[test]
    fn recovery_is_deterministic() {
        let seg = SegmentId(1);
        let mut log = LogManager::new();
        for t in 1..=20u64 {
            log.append(TxnId(t), LogPayload::Begin);
            log.append(TxnId(t), insert_payload(seg, &rec(t, t as u8)));
            if t % 3 != 0 {
                log.append(TxnId(t), LogPayload::Commit);
            }
        }
        let (mut i1, mut s1) = fresh(seg);
        let (mut i2, mut s2) = fresh(seg);
        let r1 = recover(log.records(), &mut i1, &mut s1).unwrap();
        let r2 = recover(log.records(), &mut i2, &mut s2).unwrap();
        assert_eq!(r1, r2);
        let keys1: Vec<_> = i1[&seg].entries();
        let keys2: Vec<_> = i2[&seg].entries();
        assert_eq!(keys1, keys2);
        // 20 txns, every third (6 of them) lost.
        assert_eq!(r1.winners, 14);
        assert_eq!(r1.losers, 6);
    }

    #[test]
    fn unknown_segment_is_an_error() {
        let seg = SegmentId(1);
        let other = SegmentId(99);
        let mut log = LogManager::new();
        log.append(TxnId(1), LogPayload::Begin);
        log.append(TxnId(1), insert_payload(other, &rec(1, 1)));
        log.append(TxnId(1), LogPayload::Commit);
        let (mut indexes, mut store) = fresh(seg);
        assert!(recover(log.records(), &mut indexes, &mut store).is_err());
    }
}
