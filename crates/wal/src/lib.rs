//! Write-ahead logging, recovery, and log shipping for WattDB-RS.
//!
//! Implements the durability story of §4.3: per-node logical WAL with group
//! commit, ARIES-style analysis/redo recovery from checkpoint images (the
//! read-locked segment move doubles as a checkpoint), log truncation after
//! moves, and log shipping to helper nodes for the improved rebalancing
//! experiment (Fig. 8).

pub mod log;
pub mod record;
pub mod recovery;
pub mod shipping;

pub use log::LogManager;
pub use record::{LogPayload, LogRecord, LOG_HEADER_BYTES};
pub use recovery::{
    check_consistency, delete_payload, insert_payload, recover, update_payload, RecoveryReport,
};
pub use shipping::LogShipper;
