//! Property test: recovery at any crash point restores exactly the
//! transactions whose commit record made it into the durable log prefix.

use proptest::prelude::*;
use wattdb_common::{Key, KeyRange, SegmentId, TxnId};
use wattdb_index::SegmentIndex;
use wattdb_storage::{PageStore, Record};
use wattdb_txn::IndexMap;
use wattdb_wal::{insert_payload, recover, LogManager, LogPayload};

const SEG: SegmentId = SegmentId(1);

fn fresh() -> (IndexMap, PageStore) {
    let mut store = PageStore::new();
    store.add_segment(SEG);
    let mut map = IndexMap::new();
    map.insert(SEG, SegmentIndex::new(SEG, KeyRange::all()));
    (map, store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recovery_prefix_is_exactly_the_committed_prefix(
        txn_sizes in proptest::collection::vec(1usize..4, 1..20),
        crash_fraction in 0.0f64..1.0,
    ) {
        // Build a log of sequential transactions, each inserting a few keys.
        let mut log = LogManager::new();
        let mut next_key = 0u64;
        let mut commit_points: Vec<(TxnId, Vec<u64>, u64)> = Vec::new(); // (txn, keys, commit lsn)
        for (i, &size) in txn_sizes.iter().enumerate() {
            let txn = TxnId(i as u64 + 1);
            log.append(txn, LogPayload::Begin);
            let mut keys = Vec::new();
            for _ in 0..size {
                let k = next_key;
                next_key += 1;
                let rec = Record::new(Key(k), 1, 64, vec![k as u8]);
                log.append(txn, insert_payload(SEG, &rec));
                keys.push(k);
            }
            let lsn = log.append(txn, LogPayload::Commit);
            commit_points.push((txn, keys, lsn.raw()));
        }
        // Crash: only a prefix of the log survived.
        let total = log.records().len();
        let surviving = ((total as f64) * crash_fraction).floor() as usize;
        let prefix = &log.records()[..surviving];

        let (mut indexes, mut store) = fresh();
        let report = recover(prefix, &mut indexes, &mut store).unwrap();

        // Exactly the transactions whose commit record survived are
        // winners, and exactly their keys exist.
        let idx = &indexes[&SEG];
        let mut expected_keys = 0usize;
        let mut expected_winners = 0usize;
        for (_, keys, commit_lsn) in &commit_points {
            let survived = (*commit_lsn as usize) <= surviving;
            if survived {
                expected_winners += 1;
                expected_keys += keys.len();
            }
            for &k in keys {
                prop_assert_eq!(
                    idx.get(Key(k)).0.is_some(),
                    survived,
                    "key {} recovered={} but commit survived={}",
                    k, idx.get(Key(k)).0.is_some(), survived
                );
            }
        }
        prop_assert_eq!(report.winners, expected_winners);
        prop_assert_eq!(idx.len(), expected_keys);
        wattdb_wal::check_consistency(idx, &store).unwrap();

        // Recovery is idempotent in outcome: recovering the same prefix
        // onto a fresh image yields the same population.
        let (mut i2, mut s2) = fresh();
        recover(prefix, &mut i2, &mut s2).unwrap();
        prop_assert_eq!(i2[&SEG].entries(), indexes[&SEG].entries());
        let _ = s2;
    }
}
