//! Partition top indexes.
//!
//! "Partitions only contain an index on top, keeping information about key
//! ranges in the attached segments. This top index is very small compared to
//! an index containing all records from all segments. [...] To reflect the
//! changes in the partitioned DB, only an update to both of the top indexes
//! (of the new and old partition) is required." (§4.3)
//!
//! The top index also powers *segment pruning*: "the query optimizer can
//! perform segment pruning, allowing a query to quickly identify unnecessary
//! segments, having no interesting data."
//!
//! Implemented over `std::collections::BTreeMap` — the top index is pure
//! metadata with at most a few thousand entries; the record-bearing trees
//! are this repo's own B+-tree ([`crate::btree`]).

use std::collections::BTreeMap;

use wattdb_common::{Error, Key, KeyRange, Result, SegmentId};

/// Key-range → segment map for one partition.
#[derive(Debug, Clone, Default)]
pub struct TopIndex {
    /// Keyed by range start; ranges never overlap.
    by_start: BTreeMap<u64, (SegmentId, KeyRange)>,
}

impl TopIndex {
    /// Empty top index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of attached segments.
    pub fn len(&self) -> usize {
        self.by_start.len()
    }

    /// True if no segments are attached.
    pub fn is_empty(&self) -> bool {
        self.by_start.is_empty()
    }

    /// Attach a segment covering `range`. Fails on overlap with an existing
    /// attachment (ranges must tile).
    pub fn attach(&mut self, segment: SegmentId, range: KeyRange) -> Result<()> {
        if range.is_empty() {
            return Err(Error::InvalidState("empty segment range"));
        }
        // Check the neighbor below and the first entry at/after start.
        if let Some((_, (_, r))) = self.by_start.range(..=range.start.raw()).next_back() {
            if r.overlaps(&range) {
                return Err(Error::InvalidState("overlapping segment range"));
            }
        }
        if let Some((_, (_, r))) = self.by_start.range(range.start.raw()..).next() {
            if r.overlaps(&range) {
                return Err(Error::InvalidState("overlapping segment range"));
            }
        }
        self.by_start.insert(range.start.raw(), (segment, range));
        Ok(())
    }

    /// Detach `segment`; returns its range.
    pub fn detach(&mut self, segment: SegmentId) -> Result<KeyRange> {
        let start = self
            .by_start
            .iter()
            .find(|(_, (s, _))| *s == segment)
            .map(|(k, _)| *k)
            .ok_or(Error::UnknownSegment(segment))?;
        let (_, range) = self.by_start.remove(&start).expect("present");
        Ok(range)
    }

    /// The segment responsible for `key`, if any.
    pub fn segment_for(&self, key: Key) -> Option<SegmentId> {
        let (_, (seg, range)) = self.by_start.range(..=key.raw()).next_back()?;
        range.contains(key).then_some(*seg)
    }

    /// Segment pruning: segments whose ranges intersect `query`.
    pub fn prune(&self, query: KeyRange) -> Vec<(SegmentId, KeyRange)> {
        if query.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        // The entry straddling query.start, if any.
        if let Some((_, (seg, range))) = self.by_start.range(..query.start.raw()).next_back() {
            if range.overlaps(&query) {
                out.push((*seg, *range));
            }
        }
        for (_, (seg, range)) in self.by_start.range(query.start.raw()..query.end.raw()) {
            if range.overlaps(&query) {
                out.push((*seg, *range));
            }
        }
        out
    }

    /// All attachments in key order.
    pub fn segments(&self) -> Vec<(SegmentId, KeyRange)> {
        self.by_start.values().copied().collect()
    }

    /// Union of covered ranges, as `(min start, max end)`; `None` if empty.
    /// (Coverage may have holes; this is the outer envelope.)
    pub fn envelope(&self) -> Option<KeyRange> {
        let first = self.by_start.values().next()?;
        let last = self.by_start.values().next_back()?;
        Some(KeyRange::new(first.1.start, last.1.end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kr(a: u64, b: u64) -> KeyRange {
        KeyRange::new(Key(a), Key(b))
    }

    #[test]
    fn attach_and_lookup() {
        let mut t = TopIndex::new();
        t.attach(SegmentId(1), kr(0, 100)).unwrap();
        t.attach(SegmentId(2), kr(100, 200)).unwrap();
        assert_eq!(t.segment_for(Key(0)), Some(SegmentId(1)));
        assert_eq!(t.segment_for(Key(99)), Some(SegmentId(1)));
        assert_eq!(t.segment_for(Key(100)), Some(SegmentId(2)));
        assert_eq!(t.segment_for(Key(200)), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn overlap_rejected() {
        let mut t = TopIndex::new();
        t.attach(SegmentId(1), kr(0, 100)).unwrap();
        assert!(t.attach(SegmentId(2), kr(50, 150)).is_err());
        assert!(t.attach(SegmentId(3), kr(0, 100)).is_err());
        // Range fully inside an existing one is also rejected.
        assert!(t.attach(SegmentId(4), kr(10, 20)).is_err());
        // Adjacent is fine.
        t.attach(SegmentId(5), kr(100, 150)).unwrap();
    }

    #[test]
    fn empty_range_rejected() {
        let mut t = TopIndex::new();
        assert!(t.attach(SegmentId(1), kr(5, 5)).is_err());
    }

    #[test]
    fn detach_then_reattach_elsewhere() {
        let mut t = TopIndex::new();
        t.attach(SegmentId(1), kr(0, 100)).unwrap();
        let r = t.detach(SegmentId(1)).unwrap();
        assert_eq!(r, kr(0, 100));
        assert_eq!(t.segment_for(Key(50)), None);
        assert!(t.detach(SegmentId(1)).is_err());
        // The hole can be filled by another segment — the §4.3 move:
        // detach from old partition's top index, attach to the new one.
        t.attach(SegmentId(9), kr(0, 100)).unwrap();
        assert_eq!(t.segment_for(Key(50)), Some(SegmentId(9)));
    }

    #[test]
    fn pruning_selects_overlapping_only() {
        let mut t = TopIndex::new();
        for i in 0..10u64 {
            t.attach(SegmentId(i), kr(i * 100, (i + 1) * 100)).unwrap();
        }
        let hits = t.prune(kr(250, 451));
        let segs: Vec<u64> = hits.iter().map(|(s, _)| s.raw()).collect();
        assert_eq!(segs, vec![2, 3, 4]);
        // Query fully inside one segment.
        let hits = t.prune(kr(110, 120));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, SegmentId(1));
        // Disjoint query prunes everything.
        assert!(t.prune(kr(5000, 6000)).is_empty());
        assert!(t.prune(kr(7, 7)).is_empty());
    }

    #[test]
    fn envelope() {
        let mut t = TopIndex::new();
        assert!(t.envelope().is_none());
        t.attach(SegmentId(1), kr(100, 200)).unwrap();
        t.attach(SegmentId(2), kr(400, 500)).unwrap();
        assert_eq!(t.envelope(), Some(kr(100, 500)));
    }
}
