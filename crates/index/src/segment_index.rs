//! Per-segment primary-key indexes (the "multi-rooted" trees).
//!
//! Under physiological partitioning "each segment keeps a primary-key index
//! for all records within it. [...] Moving a segment from one partition to
//! another does not invalidate the primary-key index of the segment" (§4.3).
//! A [`SegmentIndex`] is that per-segment tree: it travels with its segment,
//! so a move only updates the top indexes of the two partitions involved.

use wattdb_common::{Key, KeyRange, RecordId, SegmentId};

use crate::btree::BPlusTree;

/// Primary-key index over one segment's records.
#[derive(Debug, Clone)]
pub struct SegmentIndex {
    segment: SegmentId,
    /// Mini-partition bounds: every indexed key must fall inside.
    range: KeyRange,
    tree: BPlusTree<RecordId>,
}

impl SegmentIndex {
    /// Empty index for `segment` covering `range`.
    pub fn new(segment: SegmentId, range: KeyRange) -> Self {
        Self {
            segment,
            range,
            tree: BPlusTree::new(),
        }
    }

    /// The segment this index belongs to.
    pub fn segment(&self) -> SegmentId {
        self.segment
    }

    /// The key range this segment is responsible for.
    pub fn range(&self) -> KeyRange {
        self.range
    }

    /// Rebind to a new segment id (used when a move materializes the
    /// segment under a fresh id on the receiving node; the index content is
    /// unchanged — the paper's core trick).
    pub fn rebind(&mut self, segment: SegmentId) {
        self.segment = segment;
    }

    /// Narrow/replace the covered range (segment split).
    pub fn set_range(&mut self, range: KeyRange) {
        debug_assert!(self.tree.iter().iter().all(|(k, _)| range.contains(*k)));
        self.range = range;
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Tree height (≙ node visits per lookup).
    pub fn height(&self) -> usize {
        self.tree.height()
    }

    /// Insert a key → record mapping. Panics if the key is outside the
    /// segment's range (router/top-index bug).
    pub fn insert(&mut self, key: Key, rid: RecordId) -> Option<RecordId> {
        assert!(
            self.range.contains(key),
            "{key} outside segment range {}",
            self.range
        );
        self.tree.insert(key, rid)
    }

    /// Point lookup; returns the record id and node visits (for costing).
    pub fn get(&self, key: Key) -> (Option<RecordId>, usize) {
        let (v, visits) = self.tree.get(key);
        (v.copied(), visits)
    }

    /// Remove a key.
    pub fn remove(&mut self, key: Key) -> Option<RecordId> {
        self.tree.remove(key)
    }

    /// Entries within `range` (ascending).
    pub fn range_scan(&self, range: KeyRange) -> Vec<(Key, RecordId)> {
        self.tree
            .range(range)
            .into_iter()
            .map(|(k, v)| (k, *v))
            .collect()
    }

    /// All entries (ascending).
    pub fn entries(&self) -> Vec<(Key, RecordId)> {
        self.range_scan(KeyRange::all())
    }

    /// Split helper for segment splits: entries at or above `mid`.
    pub fn entries_from(&self, mid: Key) -> Vec<(Key, RecordId)> {
        self.range_scan(KeyRange::new(mid, self.range.end))
    }

    /// Structural self-check (tests).
    pub fn check_invariants(&self) {
        self.tree.check_invariants();
        for (k, _) in self.tree.iter() {
            assert!(self.range.contains(k), "{k} outside {}", self.range);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattdb_common::PageId;

    fn rid(n: u32) -> RecordId {
        RecordId::new(PageId::new(SegmentId(1), n), 0)
    }

    fn idx() -> SegmentIndex {
        SegmentIndex::new(SegmentId(1), KeyRange::new(Key(100), Key(200)))
    }

    #[test]
    fn insert_get_within_range() {
        let mut i = idx();
        i.insert(Key(150), rid(1));
        assert_eq!(i.get(Key(150)).0, Some(rid(1)));
        assert_eq!(i.get(Key(151)).0, None);
        assert_eq!(i.len(), 1);
    }

    #[test]
    #[should_panic(expected = "outside segment range")]
    fn insert_outside_range_panics() {
        let mut i = idx();
        i.insert(Key(500), rid(1));
    }

    #[test]
    fn range_scan_and_split_helper() {
        let mut i = idx();
        for k in (100..200).step_by(10) {
            i.insert(Key(k), rid(k as u32));
        }
        let hi = i.entries_from(Key(150));
        let keys: Vec<u64> = hi.iter().map(|(k, _)| k.raw()).collect();
        assert_eq!(keys, vec![150, 160, 170, 180, 190]);
        let window = i.range_scan(KeyRange::new(Key(120), Key(140)));
        assert_eq!(window.len(), 2);
    }

    #[test]
    fn rebind_preserves_content() {
        let mut i = idx();
        i.insert(Key(110), rid(9));
        i.rebind(SegmentId(42));
        assert_eq!(i.segment(), SegmentId(42));
        assert_eq!(i.get(Key(110)).0, Some(rid(9)));
        i.check_invariants();
    }

    #[test]
    fn set_range_narrows() {
        let mut i = idx();
        i.insert(Key(150), rid(1));
        i.set_range(KeyRange::new(Key(150), Key(200)));
        assert_eq!(i.range(), KeyRange::new(Key(150), Key(200)));
        i.check_invariants();
    }
}
