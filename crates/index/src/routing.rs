//! The master's global partition table with dual pointers.
//!
//! "To identify all partitions relevant to a query, the master keeps a tree
//! with the primary-key ranges of all partitions. While re-partitioning,
//! both nodes, the sending and receiving, need to be accessed by queries to
//! determine which node currently claims ownership over the data. Therefore,
//! when repartitioning starts, the master is updated first, keeping pointers
//! to both, the old and new node. After repartitioning, the old pointer is
//! deleted." (§4.3, *Housekeeping on the master*)
//!
//! The router tracks ownership at key-range granularity. Moving a sub-range
//! splits the covering entry, flags the moving entry with both locations,
//! and `complete_move` collapses it to the new owner. Adjacent same-owner
//! entries are re-coalesced to keep the table small.

use std::collections::BTreeMap;

use wattdb_common::{Error, Key, KeyRange, NodeId, PartitionId, Result, TableId};

/// Where a key range lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// Owning partition.
    pub partition: PartitionId,
    /// Node evaluating queries for that partition.
    pub node: NodeId,
}

/// One routing entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Covered key range.
    pub range: KeyRange,
    /// Current owner (the *old* location while a move is in flight).
    pub owner: Location,
    /// Destination while a move is in flight — the second pointer.
    pub moving_to: Option<Location>,
}

impl RouteEntry {
    /// True if this range is mid-move.
    pub fn is_moving(&self) -> bool {
        self.moving_to.is_some()
    }
}

/// Routing decision for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteResult {
    /// Authoritative location to try first.
    pub primary: Location,
    /// Second location to consult during a move (§4.3 correctness window).
    pub also: Option<Location>,
}

/// Global key-range → location table for all tables.
#[derive(Debug, Default)]
pub struct GlobalRouter {
    tables: BTreeMap<TableId, BTreeMap<u64, RouteEntry>>,
}

impl GlobalRouter {
    /// Empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table (idempotent).
    pub fn create_table(&mut self, table: TableId) {
        self.tables.entry(table).or_default();
    }

    fn table_mut(&mut self, table: TableId) -> Result<&mut BTreeMap<u64, RouteEntry>> {
        self.tables
            .get_mut(&table)
            .ok_or(Error::InvalidState("unknown table in router"))
    }

    fn table(&self, table: TableId) -> Result<&BTreeMap<u64, RouteEntry>> {
        self.tables
            .get(&table)
            .ok_or(Error::InvalidState("unknown table in router"))
    }

    /// Assign `range` to a location, replacing whatever covered it. Used for
    /// initial partitioning; fails if `range` only partially overlaps an
    /// in-flight move.
    pub fn assign(
        &mut self,
        table: TableId,
        range: KeyRange,
        partition: PartitionId,
        node: NodeId,
    ) -> Result<()> {
        if range.is_empty() {
            return Err(Error::InvalidState("empty range assignment"));
        }
        self.split_at(table, range.start)?;
        self.split_at(table, range.end)?;
        let entries = self.table_mut(table)?;
        let covered: Vec<u64> = entries
            .range(range.start.raw()..range.end.raw())
            .map(|(k, _)| *k)
            .collect();
        for k in covered {
            let e = entries.remove(&k).expect("present");
            if e.is_moving() {
                entries.insert(k, e);
                return Err(Error::InvalidState("assignment over in-flight move"));
            }
        }
        entries.insert(
            range.start.raw(),
            RouteEntry {
                range,
                owner: Location { partition, node },
                moving_to: None,
            },
        );
        Ok(())
    }

    /// Ensure an entry boundary exists at `at` (splitting a straddling
    /// entry). Splitting preserves the move state on both halves.
    fn split_at(&mut self, table: TableId, at: Key) -> Result<()> {
        let entries = self.table_mut(table)?;
        let straddler = entries
            .range(..at.raw())
            .next_back()
            .filter(|(_, e)| e.range.contains(at))
            .map(|(k, _)| *k);
        if let Some(k) = straddler {
            let mut e = entries.remove(&k).expect("present");
            let (lo, hi) = e.range.split_at(at).expect("strictly inside");
            e.range = lo;
            let mut right = e;
            right.range = hi;
            entries.insert(lo.start.raw(), e);
            entries.insert(hi.start.raw(), right);
        }
        Ok(())
    }

    /// Route a key. Returns the owner plus the second pointer when the range
    /// is mid-move.
    pub fn route(&self, table: TableId, key: Key) -> Result<RouteResult> {
        let entries = self.table(table)?;
        let (_, e) = entries
            .range(..=key.raw())
            .next_back()
            .filter(|(_, e)| e.range.contains(key))
            .ok_or(Error::KeyNotFound(key))?;
        Ok(RouteResult {
            primary: e.owner,
            also: e.moving_to,
        })
    }

    /// Start moving `range` to a new location: master updated *first*,
    /// keeping both pointers.
    pub fn begin_move(
        &mut self,
        table: TableId,
        range: KeyRange,
        to_partition: PartitionId,
        to_node: NodeId,
    ) -> Result<()> {
        self.split_at(table, range.start)?;
        self.split_at(table, range.end)?;
        let entries = self.table_mut(table)?;
        let keys: Vec<u64> = entries
            .range(range.start.raw()..range.end.raw())
            .map(|(k, _)| *k)
            .collect();
        if keys.is_empty() {
            return Err(Error::KeyNotFound(range.start));
        }
        for k in &keys {
            let e = entries.get(k).expect("present");
            if e.is_moving() {
                return Err(Error::InvalidState("range already moving"));
            }
        }
        for k in keys {
            let e = entries.get_mut(&k).expect("present");
            e.moving_to = Some(Location {
                partition: to_partition,
                node: to_node,
            });
        }
        Ok(())
    }

    /// Finish a move: the old pointer is deleted, the new location becomes
    /// the owner, and adjacent same-owner entries coalesce.
    pub fn complete_move(&mut self, table: TableId, range: KeyRange) -> Result<()> {
        {
            let entries = self.table_mut(table)?;
            let keys: Vec<u64> = entries
                .range(range.start.raw()..range.end.raw())
                .map(|(k, _)| *k)
                .collect();
            if keys.is_empty() {
                return Err(Error::KeyNotFound(range.start));
            }
            for k in keys {
                let e = entries.get_mut(&k).expect("present");
                let dest = e
                    .moving_to
                    .take()
                    .ok_or(Error::InvalidState("complete_move without begin_move"))?;
                e.owner = dest;
            }
        }
        self.coalesce(table)
    }

    /// Abort a move: drop the second pointer, ownership stays put.
    pub fn abort_move(&mut self, table: TableId, range: KeyRange) -> Result<()> {
        let entries = self.table_mut(table)?;
        let keys: Vec<u64> = entries
            .range(range.start.raw()..range.end.raw())
            .map(|(k, _)| *k)
            .collect();
        for k in keys {
            entries.get_mut(&k).expect("present").moving_to = None;
        }
        self.coalesce(table)
    }

    /// Merge adjacent entries with identical owner and no in-flight move.
    pub fn coalesce(&mut self, table: TableId) -> Result<()> {
        let entries = self.table_mut(table)?;
        let mut merged: BTreeMap<u64, RouteEntry> = BTreeMap::new();
        for (_, e) in std::mem::take(entries) {
            match merged.iter_mut().next_back() {
                Some((_, prev))
                    if prev.range.end == e.range.start
                        && prev.owner == e.owner
                        && prev.moving_to.is_none()
                        && e.moving_to.is_none() =>
                {
                    prev.range.end = e.range.end;
                }
                _ => {
                    merged.insert(e.range.start.raw(), e);
                }
            }
        }
        *entries = merged;
        Ok(())
    }

    /// All entries of a table in key order.
    pub fn entries(&self, table: TableId) -> Result<Vec<RouteEntry>> {
        Ok(self.table(table)?.values().copied().collect())
    }

    /// Entries of a table whose ranges intersect `query` (partition
    /// pruning at the master).
    pub fn prune(&self, table: TableId, query: KeyRange) -> Result<Vec<RouteEntry>> {
        let entries = self.table(table)?;
        let mut out = Vec::new();
        if let Some((_, e)) = entries.range(..query.start.raw()).next_back() {
            if e.range.overlaps(&query) {
                out.push(*e);
            }
        }
        for (_, e) in entries.range(query.start.raw()..query.end.raw()) {
            if e.range.overlaps(&query) {
                out.push(*e);
            }
        }
        Ok(out)
    }

    /// Nodes referenced by any entry of any table (active data holders).
    pub fn nodes_with_data(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .tables
            .values()
            .flat_map(|t| t.values())
            .flat_map(|e| std::iter::once(e.owner.node).chain(e.moving_to.map(|l| l.node)))
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TableId = TableId(1);

    fn kr(a: u64, b: u64) -> KeyRange {
        KeyRange::new(Key(a), Key(b))
    }

    fn loc(p: u64, n: u16) -> Location {
        Location {
            partition: PartitionId(p),
            node: NodeId(n),
        }
    }

    fn router() -> GlobalRouter {
        let mut r = GlobalRouter::new();
        r.create_table(T);
        r.assign(T, kr(0, 1000), PartitionId(1), NodeId(1)).unwrap();
        r
    }

    #[test]
    fn route_simple() {
        let r = router();
        let res = r.route(T, Key(500)).unwrap();
        assert_eq!(res.primary, loc(1, 1));
        assert_eq!(res.also, None);
        assert!(r.route(T, Key(1000)).is_err());
    }

    #[test]
    fn move_keeps_both_pointers_then_collapses() {
        let mut r = router();
        r.begin_move(T, kr(500, 1000), PartitionId(2), NodeId(2))
            .unwrap();
        // During the move: both pointers visible (§4.3).
        let res = r.route(T, Key(700)).unwrap();
        assert_eq!(res.primary, loc(1, 1));
        assert_eq!(res.also, Some(loc(2, 2)));
        // Keys outside the moving range are unaffected.
        let res = r.route(T, Key(100)).unwrap();
        assert_eq!(res.also, None);
        // Complete: old pointer deleted.
        r.complete_move(T, kr(500, 1000)).unwrap();
        let res = r.route(T, Key(700)).unwrap();
        assert_eq!(res.primary, loc(2, 2));
        assert_eq!(res.also, None);
    }

    #[test]
    fn abort_restores_single_owner() {
        let mut r = router();
        r.begin_move(T, kr(0, 500), PartitionId(2), NodeId(2))
            .unwrap();
        r.abort_move(T, kr(0, 500)).unwrap();
        let res = r.route(T, Key(100)).unwrap();
        assert_eq!(res.primary, loc(1, 1));
        assert_eq!(res.also, None);
        // Fully coalesced back to one entry.
        assert_eq!(r.entries(T).unwrap().len(), 1);
    }

    #[test]
    fn double_move_rejected() {
        let mut r = router();
        r.begin_move(T, kr(0, 500), PartitionId(2), NodeId(2))
            .unwrap();
        assert!(r
            .begin_move(T, kr(250, 750), PartitionId(3), NodeId(3))
            .is_err());
    }

    #[test]
    fn splits_are_exact() {
        let mut r = router();
        r.begin_move(T, kr(300, 400), PartitionId(2), NodeId(2))
            .unwrap();
        let entries = r.entries(T).unwrap();
        let ranges: Vec<KeyRange> = entries.iter().map(|e| e.range).collect();
        assert_eq!(ranges, vec![kr(0, 300), kr(300, 400), kr(400, 1000)]);
        assert!(entries[1].is_moving());
        assert!(!entries[0].is_moving());
    }

    #[test]
    fn coalesce_after_completion() {
        let mut r = router();
        // Move the middle out and back; after returning, the table should
        // collapse to a single entry again.
        r.begin_move(T, kr(300, 400), PartitionId(2), NodeId(2))
            .unwrap();
        r.complete_move(T, kr(300, 400)).unwrap();
        assert_eq!(r.entries(T).unwrap().len(), 3);
        r.begin_move(T, kr(300, 400), PartitionId(1), NodeId(1))
            .unwrap();
        r.complete_move(T, kr(300, 400)).unwrap();
        assert_eq!(r.entries(T).unwrap().len(), 1);
    }

    #[test]
    fn pruning_at_master() {
        let mut r = router();
        r.assign(T, kr(500, 1000), PartitionId(2), NodeId(2))
            .unwrap();
        let hit = r.prune(T, kr(400, 600)).unwrap();
        assert_eq!(hit.len(), 2);
        let hit = r.prune(T, kr(0, 100)).unwrap();
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].owner, loc(1, 1));
    }

    #[test]
    fn nodes_with_data_includes_move_target() {
        let mut r = router();
        assert_eq!(r.nodes_with_data(), vec![NodeId(1)]);
        r.begin_move(T, kr(0, 500), PartitionId(2), NodeId(7))
            .unwrap();
        assert_eq!(r.nodes_with_data(), vec![NodeId(1), NodeId(7)]);
    }

    #[test]
    fn assignment_over_move_rejected() {
        let mut r = router();
        r.begin_move(T, kr(0, 500), PartitionId(2), NodeId(2))
            .unwrap();
        assert!(r.assign(T, kr(0, 250), PartitionId(3), NodeId(3)).is_err());
    }
}
