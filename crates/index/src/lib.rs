//! Index structures for WattDB-RS.
//!
//! Three layers of indexing from §4.3 of the paper:
//!
//! 1. [`BPlusTree`] — the record-level tree ("B*-trees" in WattDB), used as
//!    each segment's primary-key index.
//! 2. [`SegmentIndex`] / [`TopIndex`] — the physiological structure: each
//!    segment carries its own PK index (a mini-partition), and a partition
//!    is just a small *top index* over its segments' key ranges. Moving a
//!    segment updates two top indexes, never the record trees.
//! 3. [`GlobalRouter`] — the master's key-range → (partition, node) table
//!    with dual pointers during moves.

pub mod btree;
pub mod routing;
pub mod segment_index;
pub mod top_index;

pub use btree::BPlusTree;
pub use routing::{GlobalRouter, Location, RouteEntry, RouteResult};
pub use segment_index::SegmentIndex;
pub use top_index::TopIndex;
