//! A B+-tree: the index structure underlying WattDB partitions.
//!
//! "In WattDB, indexes are realized using B*-trees and span only one
//! partition at a time" (§4). This is a textbook main-memory B+-tree —
//! separator keys in internal nodes, all entries in leaves — with insert,
//! delete (borrow/merge rebalancing), point and range lookups. Lookup
//! methods report the number of node visits so the simulation can charge
//! index-traversal CPU and page accesses.

use wattdb_common::{Key, KeyRange};

/// Minimum number of entries in a non-root leaf, and minimum number of
/// children in a non-root internal node. Fanout is `2 * MIN_DEGREE`.
const MIN_DEGREE: usize = 16;
const MAX_LEAF: usize = 2 * MIN_DEGREE; // max entries per leaf
const MAX_CHILDREN: usize = 2 * MIN_DEGREE; // max children per internal

#[derive(Debug, Clone)]
struct Leaf<V> {
    keys: Vec<Key>,
    vals: Vec<V>,
}

#[derive(Debug, Clone)]
struct Internal<V> {
    /// `seps[i]` is the smallest key reachable through `children[i + 1]`.
    seps: Vec<Key>,
    children: Vec<Node<V>>,
}

#[derive(Debug, Clone)]
enum Node<V> {
    L(Leaf<V>),
    I(Internal<V>),
}

enum InsertOutcome<V> {
    /// Key existed; previous value returned.
    Replaced(V),
    /// Inserted without split.
    Done,
    /// Node split: push `(separator, right sibling)` up.
    Split(Key, Node<V>),
}

impl<V> Node<V> {
    fn new_leaf() -> Self {
        Node::L(Leaf {
            keys: Vec::new(),
            vals: Vec::new(),
        })
    }

    fn is_underflowed(&self) -> bool {
        match self {
            Node::L(l) => l.keys.len() < MIN_DEGREE,
            Node::I(i) => i.children.len() < MIN_DEGREE,
        }
    }
}

/// A main-memory B+-tree from [`Key`] to `V`.
#[derive(Debug, Clone)]
pub struct BPlusTree<V> {
    root: Node<V>,
    len: usize,
}

impl<V> Default for BPlusTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> BPlusTree<V> {
    /// An empty tree.
    pub fn new() -> Self {
        Self {
            root: Node::new_leaf(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree: 1 for a lone leaf. Lookups visit `height()`
    /// nodes; the engine charges that many index-node accesses.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut n = &self.root;
        while let Node::I(i) = n {
            h += 1;
            n = &i.children[0];
        }
        h
    }

    /// Point lookup. Returns the value and the number of nodes visited.
    pub fn get(&self, key: Key) -> (Option<&V>, usize) {
        let mut visits = 1;
        let mut n = &self.root;
        loop {
            match n {
                Node::L(l) => {
                    return match l.keys.binary_search(&key) {
                        Ok(i) => (Some(&l.vals[i]), visits),
                        Err(_) => (None, visits),
                    };
                }
                Node::I(i) => {
                    let idx = i.seps.partition_point(|s| *s <= key);
                    n = &i.children[idx];
                    visits += 1;
                }
            }
        }
    }

    /// Mutable point lookup.
    pub fn get_mut(&mut self, key: Key) -> Option<&mut V> {
        let mut n = &mut self.root;
        loop {
            match n {
                Node::L(l) => {
                    return match l.keys.binary_search(&key) {
                        Ok(i) => Some(&mut l.vals[i]),
                        Err(_) => None,
                    };
                }
                Node::I(i) => {
                    let idx = i.seps.partition_point(|s| *s <= key);
                    n = &mut i.children[idx];
                }
            }
        }
    }

    /// Insert, returning the previous value if the key existed.
    pub fn insert(&mut self, key: Key, value: V) -> Option<V> {
        match Self::insert_rec(&mut self.root, key, value) {
            InsertOutcome::Replaced(old) => Some(old),
            InsertOutcome::Done => {
                self.len += 1;
                None
            }
            InsertOutcome::Split(sep, right) => {
                self.len += 1;
                let old_root = std::mem::replace(&mut self.root, Node::new_leaf());
                self.root = Node::I(Internal {
                    seps: vec![sep],
                    children: vec![old_root, right],
                });
                None
            }
        }
    }

    fn insert_rec(node: &mut Node<V>, key: Key, value: V) -> InsertOutcome<V> {
        match node {
            Node::L(l) => match l.keys.binary_search(&key) {
                Ok(i) => InsertOutcome::Replaced(std::mem::replace(&mut l.vals[i], value)),
                Err(i) => {
                    l.keys.insert(i, key);
                    l.vals.insert(i, value);
                    if l.keys.len() > MAX_LEAF {
                        let mid = l.keys.len() / 2;
                        let right = Leaf {
                            keys: l.keys.split_off(mid),
                            vals: l.vals.split_off(mid),
                        };
                        let sep = right.keys[0];
                        InsertOutcome::Split(sep, Node::L(right))
                    } else {
                        InsertOutcome::Done
                    }
                }
            },
            Node::I(internal) => {
                let idx = internal.seps.partition_point(|s| *s <= key);
                match Self::insert_rec(&mut internal.children[idx], key, value) {
                    InsertOutcome::Split(sep, right) => {
                        internal.seps.insert(idx, sep);
                        internal.children.insert(idx + 1, right);
                        if internal.children.len() > MAX_CHILDREN {
                            // Split internal node: middle separator moves up.
                            let mid = internal.seps.len() / 2;
                            let up = internal.seps[mid];
                            let right_seps = internal.seps.split_off(mid + 1);
                            internal.seps.pop(); // `up` leaves this node
                            let right_children = internal.children.split_off(mid + 1);
                            let right = Internal {
                                seps: right_seps,
                                children: right_children,
                            };
                            InsertOutcome::Split(up, Node::I(right))
                        } else {
                            InsertOutcome::Done
                        }
                    }
                    other => other,
                }
            }
        }
    }

    /// Remove a key, returning its value if present.
    pub fn remove(&mut self, key: Key) -> Option<V> {
        let removed = Self::remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        // Shrink the root if it degenerated to a single child.
        if let Node::I(i) = &mut self.root {
            if i.children.len() == 1 {
                let child = i.children.pop().expect("one child");
                self.root = child;
            }
        }
        removed
    }

    fn remove_rec(node: &mut Node<V>, key: Key) -> Option<V> {
        match node {
            Node::L(l) => match l.keys.binary_search(&key) {
                Ok(i) => {
                    l.keys.remove(i);
                    Some(l.vals.remove(i))
                }
                Err(_) => None,
            },
            Node::I(internal) => {
                let idx = internal.seps.partition_point(|s| *s <= key);
                let removed = Self::remove_rec(&mut internal.children[idx], key)?;
                if internal.children[idx].is_underflowed() {
                    Self::fix_underflow(internal, idx);
                }
                Some(removed)
            }
        }
    }

    /// Restore the invariant at `children[idx]` by borrowing from a sibling
    /// or merging with one.
    fn fix_underflow(parent: &mut Internal<V>, idx: usize) {
        // Try borrowing from the left sibling.
        if idx > 0 && Self::can_lend(&parent.children[idx - 1]) {
            let (left, rest) = parent.children.split_at_mut(idx);
            let left = &mut left[idx - 1];
            let cur = &mut rest[0];
            match (left, cur) {
                (Node::L(l), Node::L(c)) => {
                    let k = l.keys.pop().expect("lender non-empty");
                    let v = l.vals.pop().expect("lender non-empty");
                    c.keys.insert(0, k);
                    c.vals.insert(0, v);
                    parent.seps[idx - 1] = c.keys[0];
                }
                (Node::I(l), Node::I(c)) => {
                    let child = l.children.pop().expect("lender non-empty");
                    let sep = l.seps.pop().expect("lender non-empty");
                    // Rotate through the parent separator.
                    let down = std::mem::replace(&mut parent.seps[idx - 1], sep);
                    c.seps.insert(0, down);
                    c.children.insert(0, child);
                }
                _ => unreachable!("siblings at same level share node kind"),
            }
            return;
        }
        // Try borrowing from the right sibling.
        if idx + 1 < parent.children.len() && Self::can_lend(&parent.children[idx + 1]) {
            let (cur_part, right_part) = parent.children.split_at_mut(idx + 1);
            let cur = &mut cur_part[idx];
            let right = &mut right_part[0];
            match (cur, right) {
                (Node::L(c), Node::L(r)) => {
                    let k = r.keys.remove(0);
                    let v = r.vals.remove(0);
                    c.keys.push(k);
                    c.vals.push(v);
                    parent.seps[idx] = r.keys[0];
                }
                (Node::I(c), Node::I(r)) => {
                    let child = r.children.remove(0);
                    let sep = r.seps.remove(0);
                    let down = std::mem::replace(&mut parent.seps[idx], sep);
                    c.seps.push(down);
                    c.children.push(child);
                }
                _ => unreachable!("siblings at same level share node kind"),
            }
            return;
        }
        // Merge with a sibling (prefer left).
        let merge_left_idx = if idx > 0 { idx - 1 } else { idx };
        let sep = parent.seps.remove(merge_left_idx);
        let right = parent.children.remove(merge_left_idx + 1);
        let left = &mut parent.children[merge_left_idx];
        match (left, right) {
            (Node::L(l), Node::L(mut r)) => {
                l.keys.append(&mut r.keys);
                l.vals.append(&mut r.vals);
            }
            (Node::I(l), Node::I(mut r)) => {
                l.seps.push(sep);
                l.seps.append(&mut r.seps);
                l.children.append(&mut r.children);
            }
            _ => unreachable!("siblings at same level share node kind"),
        }
    }

    fn can_lend(n: &Node<V>) -> bool {
        match n {
            Node::L(l) => l.keys.len() > MIN_DEGREE,
            Node::I(i) => i.children.len() > MIN_DEGREE,
        }
    }

    /// Smallest entry.
    pub fn first(&self) -> Option<(Key, &V)> {
        let mut n = &self.root;
        loop {
            match n {
                Node::L(l) => return l.keys.first().map(|k| (*k, &l.vals[0])),
                Node::I(i) => n = &i.children[0],
            }
        }
    }

    /// Largest entry.
    pub fn last(&self) -> Option<(Key, &V)> {
        let mut n = &self.root;
        loop {
            match n {
                Node::L(l) => {
                    return l
                        .keys
                        .last()
                        .map(|k| (*k, l.vals.last().expect("parallel vecs")));
                }
                Node::I(i) => n = i.children.last().expect("non-empty internal"),
            }
        }
    }

    /// Entries with keys in `range`, in ascending order.
    pub fn range(&self, range: KeyRange) -> Vec<(Key, &V)> {
        let mut out = Vec::new();
        if !range.is_empty() {
            Self::range_rec(&self.root, &range, &mut out);
        }
        out
    }

    fn range_rec<'a>(node: &'a Node<V>, range: &KeyRange, out: &mut Vec<(Key, &'a V)>) {
        match node {
            Node::L(l) => {
                let start = l.keys.partition_point(|k| *k < range.start);
                for i in start..l.keys.len() {
                    if l.keys[i] >= range.end {
                        break;
                    }
                    out.push((l.keys[i], &l.vals[i]));
                }
            }
            Node::I(internal) => {
                // Children overlapping [start, end): from the child that
                // could contain `start` through the child containing the
                // last key < end.
                let lo = internal.seps.partition_point(|s| *s <= range.start);
                let hi = internal.seps.partition_point(|s| *s < range.end);
                for c in &internal.children[lo..=hi] {
                    Self::range_rec(c, range, out);
                }
            }
        }
    }

    /// All entries in ascending key order.
    pub fn iter(&self) -> Vec<(Key, &V)> {
        self.range(KeyRange::all())
    }

    /// Verify structural invariants (tests and debug assertions):
    /// key ordering, separator correctness, node fill, uniform depth.
    pub fn check_invariants(&self) {
        let depth = Self::check_rec(&self.root, None, None, true);
        let _ = depth;
    }

    fn check_rec(node: &Node<V>, lo: Option<Key>, hi: Option<Key>, is_root: bool) -> usize {
        match node {
            Node::L(l) => {
                assert_eq!(l.keys.len(), l.vals.len(), "parallel vec lengths");
                assert!(l.keys.windows(2).all(|w| w[0] < w[1]), "leaf keys sorted");
                if !is_root {
                    assert!(l.keys.len() >= MIN_DEGREE, "leaf underfull");
                }
                assert!(l.keys.len() <= MAX_LEAF, "leaf overfull");
                for k in &l.keys {
                    if let Some(lo) = lo {
                        assert!(*k >= lo, "key below subtree bound");
                    }
                    if let Some(hi) = hi {
                        assert!(*k < hi, "key above subtree bound");
                    }
                }
                1
            }
            Node::I(i) => {
                assert_eq!(i.children.len(), i.seps.len() + 1, "child/sep count");
                assert!(i.seps.windows(2).all(|w| w[0] < w[1]), "seps sorted");
                if !is_root {
                    assert!(i.children.len() >= MIN_DEGREE, "internal underfull");
                } else {
                    assert!(i.children.len() >= 2, "root internal needs 2 children");
                }
                assert!(i.children.len() <= MAX_CHILDREN, "internal overfull");
                let mut depth = None;
                for (ci, c) in i.children.iter().enumerate() {
                    let clo = if ci == 0 { lo } else { Some(i.seps[ci - 1]) };
                    let chi = if ci == i.seps.len() {
                        hi
                    } else {
                        Some(i.seps[ci])
                    };
                    let d = Self::check_rec(c, clo, chi, false);
                    match depth {
                        None => depth = Some(d),
                        Some(prev) => assert_eq!(prev, d, "uniform depth"),
                    }
                }
                depth.expect("internal has children") + 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(Key(5), "five"), None);
        assert_eq!(t.insert(Key(3), "three"), None);
        assert_eq!(t.insert(Key(9), "nine"), None);
        assert_eq!(t.get(Key(3)).0, Some(&"three"));
        assert_eq!(t.get(Key(4)).0, None);
        assert_eq!(t.len(), 3);
        assert_eq!(t.insert(Key(5), "FIVE"), Some("five"));
        assert_eq!(t.len(), 3);
        t.check_invariants();
    }

    #[test]
    fn grows_and_splits() {
        let mut t = BPlusTree::new();
        let n = 10_000u64;
        for i in 0..n {
            // Scatter the keys to exercise non-append insertion.
            let k = (i * 2_654_435_761) % 1_000_003;
            t.insert(Key(k), k);
        }
        t.check_invariants();
        assert!(t.height() >= 3, "10k entries should be a real tree");
        for i in 0..n {
            let k = (i * 2_654_435_761) % 1_000_003;
            assert_eq!(t.get(Key(k)).0, Some(&k));
        }
    }

    #[test]
    fn sequential_insert_then_full_scan_sorted() {
        let mut t = BPlusTree::new();
        for i in 0..2000u64 {
            t.insert(Key(i), i);
        }
        let all = t.iter();
        assert_eq!(all.len(), 2000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        t.check_invariants();
    }

    #[test]
    fn range_scan_bounds() {
        let mut t = BPlusTree::new();
        for i in (0..1000u64).step_by(10) {
            t.insert(Key(i), i);
        }
        let r = t.range(KeyRange::new(Key(95), Key(151)));
        let keys: Vec<u64> = r.iter().map(|(k, _)| k.raw()).collect();
        assert_eq!(keys, vec![100, 110, 120, 130, 140, 150]);
        assert!(t.range(KeyRange::new(Key(5), Key(5))).is_empty());
        assert_eq!(t.range(KeyRange::all()).len(), 100);
    }

    #[test]
    fn remove_simple() {
        let mut t = BPlusTree::new();
        for i in 0..10u64 {
            t.insert(Key(i), i);
        }
        assert_eq!(t.remove(Key(5)), Some(5));
        assert_eq!(t.remove(Key(5)), None);
        assert_eq!(t.get(Key(5)).0, None);
        assert_eq!(t.len(), 9);
        t.check_invariants();
    }

    #[test]
    fn remove_everything_both_directions() {
        let mut t = BPlusTree::new();
        let n = 5000u64;
        for i in 0..n {
            t.insert(Key(i), i);
        }
        // Remove ascending the first half, descending the second.
        for i in 0..n / 2 {
            assert_eq!(t.remove(Key(i)), Some(i));
            if i % 512 == 0 {
                t.check_invariants();
            }
        }
        for i in (n / 2..n).rev() {
            assert_eq!(t.remove(Key(i)), Some(i));
            if i % 512 == 0 {
                t.check_invariants();
            }
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants();
    }

    #[test]
    fn interleaved_insert_remove() {
        let mut t = BPlusTree::new();
        for round in 0..5u64 {
            for i in 0..2000u64 {
                t.insert(Key(i * 7 + round), i);
            }
            for i in (0..2000u64).step_by(2) {
                t.remove(Key(i * 7 + round));
            }
            t.check_invariants();
        }
        assert!(!t.is_empty());
    }

    #[test]
    fn first_last() {
        let mut t = BPlusTree::new();
        assert!(t.first().is_none());
        assert!(t.last().is_none());
        for i in [50u64, 10, 90, 30] {
            t.insert(Key(i), i);
        }
        assert_eq!(t.first().unwrap().0, Key(10));
        assert_eq!(t.last().unwrap().0, Key(90));
    }

    #[test]
    fn visit_count_matches_height() {
        let mut t = BPlusTree::new();
        for i in 0..100_000u64 {
            t.insert(Key(i), ());
        }
        let h = t.height();
        let (_, visits) = t.get(Key(54_321));
        assert_eq!(visits, h);
        assert!(h >= 3);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = BPlusTree::new();
        t.insert(Key(1), 10);
        *t.get_mut(Key(1)).unwrap() = 99;
        assert_eq!(t.get(Key(1)).0, Some(&99));
        assert!(t.get_mut(Key(2)).is_none());
    }
}
