//! Property tests: the B+-tree against `std::collections::BTreeMap`.

use proptest::prelude::*;
use std::collections::BTreeMap;
use wattdb_common::{Key, KeyRange};
use wattdb_index::BPlusTree;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Range(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Keys drawn from a small domain so removes/gets hit existing entries.
    let key = 0u64..5_000;
    prop_oneof![
        5 => (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        3 => key.clone().prop_map(Op::Remove),
        2 => key.clone().prop_map(Op::Get),
        1 => (key.clone(), key).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn btree_matches_std_model(ops in proptest::collection::vec(op_strategy(), 1..2_000)) {
        let mut tree: BPlusTree<u64> = BPlusTree::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(Key(k), v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(Key(k)), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(Key(k)).0, model.get(&k));
                }
                Op::Range(a, b) => {
                    let got: Vec<(u64, u64)> = tree
                        .range(KeyRange::new(Key(a), Key(b)))
                        .into_iter()
                        .map(|(k, v)| (k.raw(), *v))
                        .collect();
                    let want: Vec<(u64, u64)> =
                        model.range(a..b).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }

        tree.check_invariants();
        // Full iteration agrees at the end.
        let got: Vec<u64> = tree.iter().into_iter().map(|(k, _)| k.raw()).collect();
        let want: Vec<u64> = model.keys().copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn btree_survives_heavy_deletion(keys in proptest::collection::btree_set(0u64..100_000, 100..1_500)) {
        let mut tree: BPlusTree<()> = BPlusTree::new();
        for &k in &keys {
            tree.insert(Key(k), ());
        }
        tree.check_invariants();
        for &k in &keys {
            prop_assert_eq!(tree.remove(Key(k)), Some(()));
        }
        prop_assert!(tree.is_empty());
        tree.check_invariants();
    }
}
