//! TPC-C schema metadata and key encoding.
//!
//! §5.1: "we are using the dataset from the well-known TPC-C benchmark" —
//! nine tables, cardinalities per warehouse, and the standard row widths
//! (which drive the logical-size accounting: a scale factor of 1000 yields
//! ≈100 GB of data as in the paper).
//!
//! Keys are packed into 64 bits with the warehouse id as the *major*
//! component, so range partitioning on the key space is partitioning by
//! warehouse — the natural TPC-C sharding the paper uses when it moves
//! "50 % of the records" between nodes.

use wattdb_common::{Key, KeyRange, TableId};

/// The nine TPC-C tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TpccTable {
    /// WAREHOUSE (W rows).
    Warehouse,
    /// DISTRICT (10 per warehouse).
    District,
    /// CUSTOMER (3 000 per district).
    Customer,
    /// HISTORY (1 per customer initially).
    History,
    /// NEW-ORDER (900 per district initially).
    NewOrder,
    /// ORDER (3 000 per district initially).
    Orders,
    /// ORDER-LINE (~10 per order).
    OrderLine,
    /// ITEM (100 000, global).
    Item,
    /// STOCK (100 000 per warehouse).
    Stock,
}

impl TpccTable {
    /// All tables in load order.
    pub const ALL: [TpccTable; 9] = [
        TpccTable::Warehouse,
        TpccTable::District,
        TpccTable::Customer,
        TpccTable::History,
        TpccTable::NewOrder,
        TpccTable::Orders,
        TpccTable::OrderLine,
        TpccTable::Item,
        TpccTable::Stock,
    ];

    /// Catalog table id.
    pub fn table_id(self) -> TableId {
        TableId(match self {
            TpccTable::Warehouse => 1,
            TpccTable::District => 2,
            TpccTable::Customer => 3,
            TpccTable::History => 4,
            TpccTable::NewOrder => 5,
            TpccTable::Orders => 6,
            TpccTable::OrderLine => 7,
            TpccTable::Item => 8,
            TpccTable::Stock => 9,
        })
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TpccTable::Warehouse => "WAREHOUSE",
            TpccTable::District => "DISTRICT",
            TpccTable::Customer => "CUSTOMER",
            TpccTable::History => "HISTORY",
            TpccTable::NewOrder => "NEW-ORDER",
            TpccTable::Orders => "ORDER",
            TpccTable::OrderLine => "ORDER-LINE",
            TpccTable::Item => "ITEM",
            TpccTable::Stock => "STOCK",
        }
    }

    /// Logical row width in bytes (TPC-C spec §1.2 approximate widths).
    pub fn row_width(self) -> u32 {
        match self {
            TpccTable::Warehouse => 89,
            TpccTable::District => 95,
            TpccTable::Customer => 655,
            TpccTable::History => 46,
            TpccTable::NewOrder => 8,
            TpccTable::Orders => 24,
            TpccTable::OrderLine => 54,
            TpccTable::Item => 82,
            TpccTable::Stock => 306,
        }
    }

    /// Initial rows per warehouse at density 1.0 (Item is global and
    /// reported per full run).
    pub fn rows_per_warehouse(self) -> u64 {
        match self {
            TpccTable::Warehouse => 1,
            TpccTable::District => 10,
            TpccTable::Customer => 30_000,
            TpccTable::History => 30_000,
            TpccTable::NewOrder => 9_000,
            TpccTable::Orders => 30_000,
            TpccTable::OrderLine => 300_000,
            TpccTable::Item => 0, // global, see ITEM_ROWS
            TpccTable::Stock => 100_000,
        }
    }
}

/// Global ITEM cardinality at density 1.0.
pub const ITEM_ROWS: u64 = 100_000;

// Key packing: [ warehouse:20 | district:6 | entity:38 ].
const W_SHIFT: u32 = 44;
const D_SHIFT: u32 = 38;
const ENT_MASK: u64 = (1 << D_SHIFT) - 1;

/// Pack a warehouse-scoped key.
pub fn wkey(w: u32, d: u32, entity: u64) -> Key {
    debug_assert!(d < 64, "district fits 6 bits");
    debug_assert!(entity <= ENT_MASK);
    Key(((w as u64) << W_SHIFT) | ((d as u64) << D_SHIFT) | entity)
}

/// Warehouse component of a key.
pub fn key_warehouse(k: Key) -> u32 {
    (k.raw() >> W_SHIFT) as u32
}

/// District component of a key.
pub fn key_district(k: Key) -> u32 {
    ((k.raw() >> D_SHIFT) & 0x3F) as u32
}

/// Entity component of a key.
pub fn key_entity(k: Key) -> u64 {
    k.raw() & ENT_MASK
}

/// The key range covering warehouses `[lo, hi)` (for partitioning).
pub fn warehouse_range(lo: u32, hi: u32) -> KeyRange {
    KeyRange::new(wkey(lo, 0, 0), wkey(hi, 0, 0))
}

/// Key constructors per table.
pub mod keys {
    use super::*;

    /// WAREHOUSE(w).
    pub fn warehouse(w: u32) -> Key {
        wkey(w, 0, 0)
    }

    /// DISTRICT(w, d).
    pub fn district(w: u32, d: u32) -> Key {
        wkey(w, d, 0)
    }

    /// CUSTOMER(w, d, c).
    pub fn customer(w: u32, d: u32, c: u32) -> Key {
        wkey(w, d, c as u64)
    }

    /// HISTORY(w, d, seq).
    pub fn history(w: u32, d: u32, seq: u64) -> Key {
        wkey(w, d, seq)
    }

    /// NEW-ORDER(w, d, o).
    pub fn new_order(w: u32, d: u32, o: u64) -> Key {
        wkey(w, d, o)
    }

    /// ORDER(w, d, o).
    pub fn order(w: u32, d: u32, o: u64) -> Key {
        wkey(w, d, o)
    }

    /// ORDER-LINE(w, d, o, line) — lines packed below the order number.
    pub fn order_line(w: u32, d: u32, o: u64, line: u32) -> Key {
        wkey(w, d, o * 16 + line as u64)
    }

    /// ITEM(i) — global table, keyed by item id spread across the
    /// warehouse-major space so it partitions alongside the rest.
    pub fn item(i: u64, warehouses: u32) -> Key {
        // Deterministically assign items round-robin to warehouse-major
        // buckets so an item lookup is usually remote (as in a real
        // distributed TPC-C without replication).
        let w = (i % warehouses.max(1) as u64) as u32;
        wkey(w, 63, i) // district 63 reserved for ITEM rows
    }

    /// STOCK(w, i).
    pub fn stock(w: u32, i: u64) -> Key {
        wkey(w, 62, i) // district 62 reserved for STOCK rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_packing_roundtrip() {
        let k = wkey(123, 9, 4567);
        assert_eq!(key_warehouse(k), 123);
        assert_eq!(key_district(k), 9);
        assert_eq!(key_entity(k), 4567);
    }

    #[test]
    fn warehouse_major_ordering() {
        // All keys of warehouse 2 sort before all keys of warehouse 3.
        let hi2 = wkey(2, 63, ENT_MASK);
        let lo3 = wkey(3, 0, 0);
        assert!(hi2 < lo3);
        let r = warehouse_range(0, 2);
        assert!(r.contains(keys::customer(1, 9, 2999)));
        assert!(r.contains(keys::stock(1, 99_999)));
        assert!(!r.contains(keys::warehouse(2)));
    }

    #[test]
    fn table_ids_unique() {
        use std::collections::HashSet;
        let ids: HashSet<_> = TpccTable::ALL.iter().map(|t| t.table_id()).collect();
        assert_eq!(ids.len(), 9);
    }

    #[test]
    fn scale_factor_1000_is_about_100gb() {
        // §5.1: "a thousand warehouses [...] about 100 GB of data".
        let per_warehouse: u64 = TpccTable::ALL
            .iter()
            .map(|t| t.rows_per_warehouse() * t.row_width() as u64)
            .sum();
        let total = per_warehouse * 1000 + ITEM_ROWS * TpccTable::Item.row_width() as u64;
        let gb = total as f64 / 1e9;
        // Base data ≈ 70 GB; the paper's "about 100 GB" (and 200 GB raw)
        // includes indexes and storage overhead on top.
        assert!((55.0..130.0).contains(&gb), "{gb:.1} GB");
    }

    #[test]
    fn order_line_keys_do_not_collide_across_orders() {
        let a = keys::order_line(1, 2, 10, 15);
        let b = keys::order_line(1, 2, 11, 0);
        assert!(a < b);
    }

    #[test]
    fn stock_and_item_namespaces_disjoint_from_customers() {
        let c = keys::customer(1, 9, 500);
        let s = keys::stock(1, 500);
        let i = keys::item(500, 4);
        assert_ne!(key_district(c), key_district(s));
        assert_ne!(key_district(s), key_district(i));
    }
}
