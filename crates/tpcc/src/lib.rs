//! TPC-C workload for WattDB-RS (§5.1 of the paper).
//!
//! The paper drives its evaluation with the TPC-C dataset at scale factor
//! 1000 and a client-limited ("think time") adaptation of the TPC-C
//! transaction mix. This crate provides the schema with warehouse-major
//! 64-bit keys, a density-scalable deterministic generator, the five
//! transactions as record-operation profiles, and the closed-loop client
//! model.

pub mod client;
pub mod gen;
pub mod pool;
pub mod schema;
pub mod trace;
pub mod txns;

pub use client::{spawn_clients, spawn_clients_skewed, Client, ClientConfig};
pub use gen::{item_rows, warehouse_rows, GenRow, TpccConfig};
pub use pool::{carrier_split, ClientBatching, ClientPool, MAX_CARRIERS, POOL_AUTO_THRESHOLD};
pub use schema::{
    key_district, key_entity, key_warehouse, keys, warehouse_range, wkey, TpccTable, ITEM_ROWS,
};
pub use trace::{
    diurnal_target, flash_shape, DiurnalConfig, FlashCrowdConfig, LoadTrace, TenantLoad,
    TenantSpec, TracePoint,
};
pub use txns::{Op, OpKind, TpccWorkload, TxnProfile};
