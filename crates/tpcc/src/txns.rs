//! The five TPC-C transactions as record-operation profiles.
//!
//! §5.1: "we modified all queries to exclude (emulated) user interaction
//! and to execute in a single run on the database" — each transaction is a
//! straight-line list of keyed record operations (reads, updates, inserts,
//! deletes) that the cluster executor runs under the configured
//! concurrency control. Key selection follows the spec's randomness (NURand
//! for customers/items, uniform districts), scaled to the generated
//! cardinalities.

use wattdb_common::{DetRng, Key};

use crate::gen::TpccConfig;
use crate::schema::{keys, TpccTable};

/// What an operation does to its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Point read.
    Read,
    /// Read-modify-write.
    Update,
    /// Insert a new row.
    Insert,
    /// Delete an existing row.
    Delete,
}

/// One record operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Target table.
    pub table: TpccTable,
    /// Target key.
    pub key: Key,
    /// Access kind.
    pub kind: OpKind,
}

/// The five transaction profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnProfile {
    /// ~45 %: order entry (mid-weight read/write).
    NewOrder,
    /// ~43 %: payment (light read/write).
    Payment,
    /// ~4 %: order status (read-only).
    OrderStatus,
    /// ~4 %: delivery (heavy write batch).
    Delivery,
    /// ~4 %: stock level (read-only scan-ish).
    StockLevel,
}

impl TxnProfile {
    /// The standard mix weights (per mille-free integer weights).
    pub const MIX: [(TxnProfile, u32); 5] = [
        (TxnProfile::NewOrder, 45),
        (TxnProfile::Payment, 43),
        (TxnProfile::OrderStatus, 4),
        (TxnProfile::Delivery, 4),
        (TxnProfile::StockLevel, 4),
    ];

    /// Draw a profile according to the standard mix.
    pub fn draw(rng: &mut DetRng) -> TxnProfile {
        let weights: Vec<u32> = Self::MIX.iter().map(|(_, w)| *w).collect();
        Self::MIX[rng.weighted(&weights)].0
    }

    /// True if the profile never writes.
    pub fn read_only(self) -> bool {
        matches!(self, TxnProfile::OrderStatus | TxnProfile::StockLevel)
    }
}

/// Stateful transaction generator: tracks order-id high-water marks per
/// (warehouse, district) so inserts never collide and Delivery consumes
/// the oldest undelivered orders.
#[derive(Debug)]
pub struct TpccWorkload {
    cfg: TpccConfig,
    /// next order id per (w, d).
    next_o_id: Vec<u64>,
    /// oldest undelivered order per (w, d).
    delivery_cursor: Vec<u64>,
    /// next history sequence per (w, d).
    next_h_seq: Vec<u64>,
}

impl TpccWorkload {
    /// A workload over the generated dataset shape.
    pub fn new(cfg: TpccConfig) -> Self {
        let slots = (cfg.warehouses as usize) * 10;
        let orders = cfg.orders_per_district();
        let new_order_floor = orders - (orders * 3 / 10).max(1).min(orders);
        Self {
            cfg,
            next_o_id: vec![orders; slots],
            delivery_cursor: vec![new_order_floor; slots],
            next_h_seq: vec![cfg.customers_per_district(); slots],
        }
    }

    /// The dataset configuration in force.
    pub fn config(&self) -> &TpccConfig {
        &self.cfg
    }

    fn slot(&self, w: u32, d: u32) -> usize {
        (w as usize) * 10 + d as usize
    }

    fn rand_customer(&self, rng: &mut DetRng, w: u32, d: u32) -> Key {
        let n = self.cfg.customers_per_district();
        let c = rng.nurand(1023, 0, n - 1, 259);
        keys::customer(w, d, c as u32)
    }

    fn rand_item(&self, rng: &mut DetRng) -> Key {
        let n = self.cfg.item_rows();
        let i = rng.nurand(8191, 0, n - 1, 7911);
        keys::item(i, self.cfg.warehouses)
    }

    /// Generate the op list for one transaction homed at warehouse `w`.
    pub fn generate(&mut self, profile: TxnProfile, w: u32, rng: &mut DetRng) -> Vec<Op> {
        let d = rng.uniform(0, 9) as u32;
        match profile {
            TxnProfile::NewOrder => self.new_order(w, d, rng),
            TxnProfile::Payment => self.payment(w, d, rng),
            TxnProfile::OrderStatus => self.order_status(w, d, rng),
            TxnProfile::Delivery => self.delivery(w, rng),
            TxnProfile::StockLevel => self.stock_level(w, d, rng),
        }
    }

    fn new_order(&mut self, w: u32, d: u32, rng: &mut DetRng) -> Vec<Op> {
        let mut ops = vec![
            Op {
                table: TpccTable::Warehouse,
                key: keys::warehouse(w),
                kind: OpKind::Read,
            },
            Op {
                table: TpccTable::District,
                key: keys::district(w, d),
                kind: OpKind::Update, // D_NEXT_O_ID bump
            },
            Op {
                table: TpccTable::Customer,
                key: self.rand_customer(rng, w, d),
                kind: OpKind::Read,
            },
        ];
        let slot = self.slot(w, d);
        let o_id = self.next_o_id[slot];
        self.next_o_id[slot] += 1;
        ops.push(Op {
            table: TpccTable::Orders,
            key: keys::order(w, d, o_id),
            kind: OpKind::Insert,
        });
        ops.push(Op {
            table: TpccTable::NewOrder,
            key: keys::new_order(w, d, o_id),
            kind: OpKind::Insert,
        });
        let lines = rng.uniform(5, 15) as u32;
        for l in 0..lines {
            let item = self.rand_item(rng);
            // 1 % of lines hit a remote warehouse's stock (spec §2.4.1.5).
            let stock_w = if self.cfg.warehouses > 1 && rng.chance(0.01) {
                let mut ow = rng.uniform(0, self.cfg.warehouses as u64 - 1) as u32;
                if ow == w {
                    ow = (ow + 1) % self.cfg.warehouses;
                }
                ow
            } else {
                w
            };
            let stock_i = rng.uniform(0, self.cfg.stock_per_warehouse() - 1);
            ops.push(Op {
                table: TpccTable::Item,
                key: item,
                kind: OpKind::Read,
            });
            ops.push(Op {
                table: TpccTable::Stock,
                key: keys::stock(stock_w, stock_i),
                kind: OpKind::Update,
            });
            ops.push(Op {
                table: TpccTable::OrderLine,
                key: keys::order_line(w, d, o_id, l),
                kind: OpKind::Insert,
            });
        }
        ops
    }

    fn payment(&mut self, w: u32, d: u32, rng: &mut DetRng) -> Vec<Op> {
        let slot = self.slot(w, d);
        let h_seq = self.next_h_seq[slot];
        self.next_h_seq[slot] += 1;
        vec![
            Op {
                table: TpccTable::Warehouse,
                key: keys::warehouse(w),
                kind: OpKind::Update, // W_YTD
            },
            Op {
                table: TpccTable::District,
                key: keys::district(w, d),
                kind: OpKind::Update, // D_YTD
            },
            Op {
                table: TpccTable::Customer,
                key: self.rand_customer(rng, w, d),
                kind: OpKind::Update, // C_BALANCE
            },
            Op {
                table: TpccTable::History,
                key: keys::history(w, d, h_seq),
                kind: OpKind::Insert,
            },
        ]
    }

    fn order_status(&mut self, w: u32, d: u32, rng: &mut DetRng) -> Vec<Op> {
        let orders = self.next_o_id[self.slot(w, d)];
        let o = rng.uniform(0, orders.saturating_sub(1));
        let mut ops = vec![
            Op {
                table: TpccTable::Customer,
                key: self.rand_customer(rng, w, d),
                kind: OpKind::Read,
            },
            Op {
                table: TpccTable::Orders,
                key: keys::order(w, d, o),
                kind: OpKind::Read,
            },
        ];
        for l in 0..rng.uniform(5, 15) as u32 {
            ops.push(Op {
                table: TpccTable::OrderLine,
                key: keys::order_line(w, d, o, l),
                kind: OpKind::Read,
            });
        }
        ops
    }

    fn delivery(&mut self, w: u32, rng: &mut DetRng) -> Vec<Op> {
        let mut ops = Vec::new();
        for d in 0..10u32 {
            let slot = self.slot(w, d);
            if self.delivery_cursor[slot] >= self.next_o_id[slot] {
                continue; // district drained
            }
            let o = self.delivery_cursor[slot];
            self.delivery_cursor[slot] += 1;
            ops.push(Op {
                table: TpccTable::NewOrder,
                key: keys::new_order(w, d, o),
                kind: OpKind::Delete,
            });
            ops.push(Op {
                table: TpccTable::Orders,
                key: keys::order(w, d, o),
                kind: OpKind::Update, // O_CARRIER_ID
            });
            ops.push(Op {
                table: TpccTable::Customer,
                key: self.rand_customer(rng, w, d),
                kind: OpKind::Update, // C_BALANCE += sum(OL_AMOUNT)
            });
        }
        ops
    }

    fn stock_level(&mut self, w: u32, d: u32, rng: &mut DetRng) -> Vec<Op> {
        let mut ops = vec![Op {
            table: TpccTable::District,
            key: keys::district(w, d),
            kind: OpKind::Read,
        }];
        let orders = self.next_o_id[self.slot(w, d)];
        // Inspect order lines of the last 20 orders and their stock.
        for back in 0..20u64 {
            let Some(o) = orders.checked_sub(back + 1) else {
                break;
            };
            ops.push(Op {
                table: TpccTable::OrderLine,
                key: keys::order_line(w, d, o, 0),
                kind: OpKind::Read,
            });
            let i = rng.uniform(0, self.cfg.stock_per_warehouse() - 1);
            ops.push(Op {
                table: TpccTable::Stock,
                key: keys::stock(w, i),
                kind: OpKind::Read,
            });
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::key_warehouse;

    fn setup() -> (TpccWorkload, DetRng) {
        let cfg = TpccConfig {
            warehouses: 4,
            density: 0.02,
            payload_bytes: 8,
            seed: 3,
        };
        (TpccWorkload::new(cfg), DetRng::new(99))
    }

    #[test]
    fn new_order_shape() {
        let (mut w, mut rng) = setup();
        let ops = w.generate(TxnProfile::NewOrder, 1, &mut rng);
        // 3 header ops + 2 inserts + 3 per line (5–15 lines).
        assert!(ops.len() >= 3 + 2 + 3 * 5);
        assert!(ops.len() <= 3 + 2 + 3 * 15);
        let inserts = ops.iter().filter(|o| o.kind == OpKind::Insert).count();
        assert!(inserts >= 7, "orders + new-order + lines");
        // Order ids advance within a district.
        let oid = |ops: &[Op]| {
            ops.iter()
                .find(|o| o.table == TpccTable::Orders)
                .unwrap()
                .key
        };
        let first = oid(&ops);
        loop {
            let ops2 = w.generate(TxnProfile::NewOrder, 1, &mut rng);
            let second = oid(&ops2);
            if crate::schema::key_district(second) == crate::schema::key_district(first) {
                assert!(second > first);
                break;
            }
        }
    }

    #[test]
    fn payment_is_light() {
        let (mut w, mut rng) = setup();
        let ops = w.generate(TxnProfile::Payment, 0, &mut rng);
        assert_eq!(ops.len(), 4);
        assert_eq!(ops.iter().filter(|o| o.kind == OpKind::Update).count(), 3);
        // Distinct history keys on successive payments.
        let h1 = ops.last().unwrap().key;
        loop {
            let ops2 = w.generate(TxnProfile::Payment, 0, &mut rng);
            if crate::schema::key_district(ops2[1].key) == crate::schema::key_district(ops[1].key) {
                assert_ne!(ops2.last().unwrap().key, h1);
                break;
            }
        }
    }

    #[test]
    fn read_only_profiles_never_write() {
        let (mut w, mut rng) = setup();
        for p in [TxnProfile::OrderStatus, TxnProfile::StockLevel] {
            for _ in 0..20 {
                let ops = w.generate(p, 2, &mut rng);
                assert!(
                    ops.iter().all(|o| o.kind == OpKind::Read),
                    "{p:?} must be read-only"
                );
            }
            assert!(p.read_only());
        }
    }

    #[test]
    fn delivery_consumes_new_orders_in_order() {
        let (mut w, mut rng) = setup();
        let ops1 = w.generate(TxnProfile::Delivery, 0, &mut rng);
        let ops2 = w.generate(TxnProfile::Delivery, 0, &mut rng);
        let del1: Vec<Key> = ops1
            .iter()
            .filter(|o| o.kind == OpKind::Delete)
            .map(|o| o.key)
            .collect();
        let del2: Vec<Key> = ops2
            .iter()
            .filter(|o| o.kind == OpKind::Delete)
            .map(|o| o.key)
            .collect();
        assert_eq!(del1.len(), 10, "one per district");
        // Strictly later order per district.
        for (a, b) in del1.iter().zip(&del2) {
            assert!(b > a);
        }
    }

    #[test]
    fn home_warehouse_dominates() {
        let (mut w, mut rng) = setup();
        let mut home = 0usize;
        let mut total = 0usize;
        for _ in 0..50 {
            for op in w.generate(TxnProfile::NewOrder, 2, &mut rng) {
                if op.table == TpccTable::Stock {
                    total += 1;
                    home += usize::from(key_warehouse(op.key) == 2);
                }
            }
        }
        assert!(
            home as f64 / total as f64 > 0.95,
            "~99 % of stock ops at the home warehouse ({home}/{total})"
        );
    }

    #[test]
    fn mix_draw_roughly_matches_weights() {
        let mut rng = DetRng::new(5);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(TxnProfile::draw(&mut rng)).or_insert(0u32) += 1;
        }
        let no = counts[&TxnProfile::NewOrder] as f64 / 10_000.0;
        let pay = counts[&TxnProfile::Payment] as f64 / 10_000.0;
        assert!((no - 0.45).abs() < 0.03, "{no}");
        assert!((pay - 0.43).abs() < 0.03, "{pay}");
        assert_eq!(counts.len(), 5, "all profiles drawn");
    }
}
