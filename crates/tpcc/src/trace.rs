//! Trace-driven load: a piecewise target-client-count over sim-time.
//!
//! The paper's whole argument is that a cluster should *track* its
//! workload — §1's energy-proportionality motivation assumes load that
//! rises and falls like a real daily cycle. A [`LoadTrace`] describes
//! such a cycle as a piecewise-constant schedule of **modeled-client
//! targets**, sampled at a fixed step: at each breakpoint the pooled
//! arrival process ([`crate::ClientPool`]) is resized to the new
//! target, so driving a trace costs a handful of resize events rather
//! than a per-client spawn storm.
//!
//! Three generators cover the evaluation scenarios:
//!
//! * [`LoadTrace::diurnal`] — a sine day: `target(t) = min +
//!   (max − min) · (1 − cos(2πt/period + phase)) / 2`, so a zero phase
//!   starts the trace in the trough (the autopilot begins small and must
//!   grow into the peak).
//! * [`LoadTrace::flash_crowd`] — a constant baseline plus one burst:
//!   linear ramp-up over `ramp`, a `hold` plateau at `baseline + extra`,
//!   linear decay over `decay`. The burst's integrated extra
//!   client-seconds are exactly `extra · (ramp/2 + hold + decay/2)`
//!   in the continuous limit — the regression test checks the sampled
//!   schedule integrates to the same volume.
//! * [`LoadTrace::tenant_mix`] — k tenants, each an independent diurnal
//!   curve with its own phase and its own hot-warehouse skew
//!   ([`TenantSpec`]), sharing one period. Tenants map to carrier
//!   groups, so their targets resize independently.
//!
//! Every breakpoint carries a phase label (`trough`/`shoulder`/`peak`
//! for the sine shapes, `baseline`/`ramp`/`burst`/`decay` for the flash
//! crowd); [`LoadTrace::phase_spans`] merges consecutive same-label
//! breakpoints into the spans the energy scorecard reports per-phase
//! Wh-per-transaction over.

use std::f64::consts::PI;

use wattdb_common::SimDuration;

/// One tenant's homing rule: what fraction of its carriers concentrate
/// on which hot warehouses.
#[derive(Debug, Clone, Copy)]
pub struct TenantSpec {
    /// Fraction of the tenant's carriers homed on the hot range.
    pub hot_fraction: f64,
    /// First warehouse of the tenant's hot range.
    pub hot_first: u32,
    /// Width of the hot range in warehouses (≥ 1).
    pub hot_warehouses: u32,
}

impl Default for TenantSpec {
    /// No skew: carriers spread round-robin over every warehouse.
    fn default() -> Self {
        Self {
            hot_fraction: 0.0,
            hot_first: 0,
            hot_warehouses: 1,
        }
    }
}

/// One breakpoint of the schedule: from `at` (relative to trace start)
/// until the next breakpoint, tenant `i` targets `targets[i]` modeled
/// clients.
#[derive(Debug, Clone)]
pub struct TracePoint {
    /// Offset from trace start.
    pub at: SimDuration,
    /// Per-tenant modeled-client targets.
    pub targets: Vec<u64>,
    /// Phase label for scorecard grouping.
    pub phase: &'static str,
}

impl TracePoint {
    /// Total modeled clients across tenants at this breakpoint.
    pub fn total(&self) -> u64 {
        self.targets.iter().sum()
    }
}

/// Diurnal sine parameters (see [`LoadTrace::diurnal`]).
#[derive(Debug, Clone, Copy)]
pub struct DiurnalConfig {
    /// Trough target in modeled clients.
    pub min_clients: u64,
    /// Peak target in modeled clients.
    pub max_clients: u64,
    /// Length of one full cycle.
    pub period: SimDuration,
    /// Phase offset in radians (0 = start in the trough).
    pub phase: f64,
    /// Sampling step between breakpoints.
    pub step: SimDuration,
    /// Total trace length.
    pub horizon: SimDuration,
    /// Homing rule for the single tenant.
    pub tenant: TenantSpec,
}

impl Default for DiurnalConfig {
    fn default() -> Self {
        Self {
            min_clients: 200,
            max_clients: 4_000,
            period: SimDuration::from_secs(180),
            phase: 0.0,
            step: SimDuration::from_secs(10),
            horizon: SimDuration::from_secs(360),
            tenant: TenantSpec::default(),
        }
    }
}

/// Flash-crowd parameters (see [`LoadTrace::flash_crowd`]).
#[derive(Debug, Clone, Copy)]
pub struct FlashCrowdConfig {
    /// Steady load outside the burst, in modeled clients.
    pub baseline: u64,
    /// Extra modeled clients at the top of the burst.
    pub extra: u64,
    /// When the ramp-up begins.
    pub start: SimDuration,
    /// Linear ramp-up length.
    pub ramp: SimDuration,
    /// Plateau length at `baseline + extra`.
    pub hold: SimDuration,
    /// Linear decay length back to the baseline.
    pub decay: SimDuration,
    /// Sampling step between breakpoints.
    pub step: SimDuration,
    /// Total trace length.
    pub horizon: SimDuration,
    /// Homing rule for the single tenant.
    pub tenant: TenantSpec,
}

impl Default for FlashCrowdConfig {
    fn default() -> Self {
        Self {
            baseline: 400,
            extra: 3_600,
            start: SimDuration::from_secs(60),
            ramp: SimDuration::from_secs(30),
            hold: SimDuration::from_secs(90),
            decay: SimDuration::from_secs(60),
            step: SimDuration::from_secs(5),
            horizon: SimDuration::from_secs(300),
            tenant: TenantSpec::default(),
        }
    }
}

/// One tenant's diurnal curve in a [`LoadTrace::tenant_mix`] trace.
#[derive(Debug, Clone, Copy)]
pub struct TenantLoad {
    /// Trough target in modeled clients.
    pub min_clients: u64,
    /// Peak target in modeled clients.
    pub max_clients: u64,
    /// Phase offset in radians — stagger these to de-synchronize peaks.
    pub phase: f64,
    /// Homing rule (hot warehouses) for this tenant's carriers.
    pub spec: TenantSpec,
}

/// A piecewise-constant schedule of per-tenant modeled-client targets.
#[derive(Debug, Clone)]
pub struct LoadTrace {
    name: &'static str,
    step: SimDuration,
    tenants: Vec<TenantSpec>,
    points: Vec<TracePoint>,
}

/// The diurnal closed form: `min + (max − min)·(1 − cos(2πt/period +
/// phase))/2`. Public so the regression tests (and any analysis script)
/// can compare the sampled schedule against the exact curve.
pub fn diurnal_target(
    min_clients: u64,
    max_clients: u64,
    period: SimDuration,
    phase: f64,
    t: SimDuration,
) -> f64 {
    let x = 2.0 * PI * (t.as_micros() as f64 / period.as_micros().max(1) as f64) + phase;
    min_clients as f64 + (max_clients.saturating_sub(min_clients)) as f64 * (1.0 - x.cos()) / 2.0
}

/// The flash-crowd burst shape in \[0,1\]: 0 outside the burst, a linear
/// ramp over `ramp`, 1 through `hold`, a linear decay over `decay`.
pub fn flash_shape(cfg: &FlashCrowdConfig, t: SimDuration) -> f64 {
    let t = t.as_micros() as f64;
    let start = cfg.start.as_micros() as f64;
    let ramp = cfg.ramp.as_micros() as f64;
    let hold = cfg.hold.as_micros() as f64;
    let decay = cfg.decay.as_micros() as f64;
    if t < start {
        0.0
    } else if t < start + ramp {
        (t - start) / ramp.max(1.0)
    } else if t < start + ramp + hold {
        1.0
    } else if t < start + ramp + hold + decay {
        1.0 - (t - start - ramp - hold) / decay.max(1.0)
    } else {
        0.0
    }
}

/// Label a sine sample by where it sits between trough and peak.
fn sine_label(target: f64, min: f64, max: f64) -> &'static str {
    let span = (max - min).max(1e-9);
    let f = ((target - min) / span).clamp(0.0, 1.0);
    if f < 1.0 / 3.0 {
        "trough"
    } else if f < 2.0 / 3.0 {
        "shoulder"
    } else {
        "peak"
    }
}

impl LoadTrace {
    fn sample_steps(step: SimDuration, horizon: SimDuration) -> impl Iterator<Item = SimDuration> {
        let step_us = step.as_micros().max(1);
        let n = horizon.as_micros() / step_us;
        (0..n).map(move |k| SimDuration::from_micros(k * step_us))
    }

    /// A single-tenant sine day (see the module docs for the closed form).
    pub fn diurnal(cfg: DiurnalConfig) -> Self {
        assert!(
            cfg.max_clients >= cfg.min_clients && cfg.max_clients > 0,
            "diurnal trace needs 0 < min <= max clients"
        );
        let points = Self::sample_steps(cfg.step, cfg.horizon)
            .map(|at| {
                let target =
                    diurnal_target(cfg.min_clients, cfg.max_clients, cfg.period, cfg.phase, at);
                TracePoint {
                    at,
                    targets: vec![target.round() as u64],
                    phase: sine_label(target, cfg.min_clients as f64, cfg.max_clients as f64),
                }
            })
            .collect();
        Self {
            name: "diurnal",
            step: cfg.step,
            tenants: vec![cfg.tenant],
            points,
        }
    }

    /// A single-tenant baseline plus one ramp/hold/decay burst.
    pub fn flash_crowd(cfg: FlashCrowdConfig) -> Self {
        assert!(cfg.baseline > 0, "flash-crowd trace needs a baseline load");
        let points = Self::sample_steps(cfg.step, cfg.horizon)
            .map(|at| {
                let target = cfg.baseline as f64 + cfg.extra as f64 * flash_shape(&cfg, at);
                let phase = if at < cfg.start || at >= cfg.start + cfg.ramp + cfg.hold + cfg.decay {
                    "baseline"
                } else if at < cfg.start + cfg.ramp {
                    "ramp"
                } else if at < cfg.start + cfg.ramp + cfg.hold {
                    "burst"
                } else {
                    "decay"
                };
                TracePoint {
                    at,
                    targets: vec![target.round() as u64],
                    phase,
                }
            })
            .collect();
        Self {
            name: "flash-crowd",
            step: cfg.step,
            tenants: vec![cfg.tenant],
            points,
        }
    }

    /// k tenants, each an independent diurnal curve (own phase, own hot
    /// warehouses) over a shared `period`. Phase labels follow the
    /// *total* load across tenants.
    pub fn tenant_mix(
        period: SimDuration,
        step: SimDuration,
        horizon: SimDuration,
        tenants: &[TenantLoad],
    ) -> Self {
        assert!(!tenants.is_empty(), "tenant mix needs at least one tenant");
        let mut points: Vec<TracePoint> = Self::sample_steps(step, horizon)
            .map(|at| {
                let targets: Vec<u64> = tenants
                    .iter()
                    .map(|t| {
                        diurnal_target(t.min_clients, t.max_clients, period, t.phase, at).round()
                            as u64
                    })
                    .collect();
                TracePoint {
                    at,
                    targets,
                    phase: "shoulder", // relabelled below from the totals
                }
            })
            .collect();
        let totals: Vec<f64> = points.iter().map(|p| p.total() as f64).collect();
        let min = totals.iter().copied().fold(f64::MAX, f64::min);
        let max = totals.iter().copied().fold(f64::MIN, f64::max);
        for (p, &total) in points.iter_mut().zip(&totals) {
            p.phase = sine_label(total, min, max);
        }
        Self {
            name: "tenant-mix",
            step,
            tenants: tenants.iter().map(|t| t.spec).collect(),
            points,
        }
    }

    /// Generator name (`diurnal` / `flash-crowd` / `tenant-mix`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sampling step between breakpoints.
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// Total trace length (last breakpoint plus one step).
    pub fn horizon(&self) -> SimDuration {
        self.points
            .last()
            .map(|p| p.at + self.step)
            .unwrap_or(SimDuration::ZERO)
    }

    /// The breakpoint schedule, in time order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Per-tenant homing rules, index-aligned with every breakpoint's
    /// `targets`.
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// Tenant `i`'s highest target across the trace — the carrier-group
    /// capacity the pool must provision.
    pub fn tenant_peak(&self, i: usize) -> u64 {
        self.points
            .iter()
            .map(|p| p.targets.get(i).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    /// Highest total target across the trace.
    pub fn total_peak(&self) -> u64 {
        self.points.iter().map(|p| p.total()).max().unwrap_or(0)
    }

    /// Total target in force at offset `t` (piecewise-constant lookup).
    pub fn total_at(&self, t: SimDuration) -> u64 {
        self.points
            .iter()
            .rev()
            .find(|p| p.at <= t)
            .map(|p| p.total())
            .unwrap_or(0)
    }

    /// Consecutive same-label breakpoints merged into `(label, start,
    /// end)` spans covering the whole horizon — what the scorecard
    /// reports per-phase Wh-per-transaction over.
    pub fn phase_spans(&self) -> Vec<(&'static str, SimDuration, SimDuration)> {
        let mut spans: Vec<(&'static str, SimDuration, SimDuration)> = Vec::new();
        for p in &self.points {
            match spans.last_mut() {
                Some((label, _, end)) if *label == p.phase => *end = p.at + self.step,
                _ => spans.push((p.phase, p.at, p.at + self.step)),
            }
        }
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_schedule_matches_the_closed_form_sine() {
        let cfg = DiurnalConfig {
            min_clients: 100,
            max_clients: 2_000,
            period: SimDuration::from_secs(120),
            phase: 0.7,
            step: SimDuration::from_secs(5),
            horizon: SimDuration::from_secs(240),
            ..Default::default()
        };
        let trace = LoadTrace::diurnal(cfg);
        assert_eq!(trace.points().len(), 48);
        for p in trace.points() {
            let exact = diurnal_target(100, 2_000, cfg.period, cfg.phase, p.at);
            assert!(
                (p.targets[0] as f64 - exact).abs() <= 0.5,
                "breakpoint at {:?}: target {} vs closed form {exact}",
                p.at,
                p.targets[0]
            );
            assert!((100..=2_000).contains(&p.targets[0]));
        }
        // Zero phase starts in the trough; a half period later is the peak.
        let t0 = LoadTrace::diurnal(DiurnalConfig { phase: 0.0, ..cfg });
        assert_eq!(t0.points()[0].targets[0], 100);
        assert_eq!(t0.total_at(SimDuration::from_secs(60)), 2_000);
    }

    #[test]
    fn flash_crowd_burst_integrates_to_the_configured_extra_volume() {
        let cfg = FlashCrowdConfig {
            baseline: 500,
            extra: 4_000,
            start: SimDuration::from_secs(60),
            ramp: SimDuration::from_secs(30),
            hold: SimDuration::from_secs(60),
            decay: SimDuration::from_secs(60),
            step: SimDuration::from_secs(5),
            horizon: SimDuration::from_secs(300),
            ..Default::default()
        };
        let trace = LoadTrace::flash_crowd(cfg);
        // Left-Riemann integral of (target − baseline) over the schedule,
        // in client-seconds. The ramp undercounts by the same triangle the
        // decay overcounts, so the discrete sum equals the continuous
        // integral extra·(ramp/2 + hold + decay/2) up to rounding.
        let step_s = cfg.step.as_secs_f64();
        let measured: f64 = trace
            .points()
            .iter()
            .map(|p| (p.targets[0].saturating_sub(cfg.baseline)) as f64 * step_s)
            .sum();
        let expected = cfg.extra as f64
            * (cfg.ramp.as_secs_f64() / 2.0
                + cfg.hold.as_secs_f64()
                + cfg.decay.as_secs_f64() / 2.0);
        let tolerance = cfg.extra as f64 * step_s; // one step of slack
        assert!(
            (measured - expected).abs() <= tolerance,
            "burst volume {measured} client-s vs configured {expected} client-s"
        );
        // Outside the burst the load sits exactly on the baseline.
        assert_eq!(trace.points()[0].targets[0], cfg.baseline);
        assert_eq!(trace.points()[0].phase, "baseline");
        assert_eq!(
            trace.total_at(SimDuration::from_secs(120)),
            cfg.baseline + cfg.extra
        );
    }

    #[test]
    fn tenant_phases_are_independent() {
        let tenant = |phase: f64, hot_first: u32| TenantLoad {
            min_clients: 100,
            max_clients: 1_000,
            phase,
            spec: TenantSpec {
                hot_fraction: 0.8,
                hot_first,
                hot_warehouses: 1,
            },
        };
        let period = SimDuration::from_secs(120);
        let step = SimDuration::from_secs(10);
        let horizon = SimDuration::from_secs(240);
        let a = LoadTrace::tenant_mix(period, step, horizon, &[tenant(0.0, 0), tenant(2.0, 1)]);
        let b = LoadTrace::tenant_mix(period, step, horizon, &[tenant(0.0, 0), tenant(4.0, 1)]);
        let col = |t: &LoadTrace, i: usize| -> Vec<u64> {
            t.points().iter().map(|p| p.targets[i]).collect()
        };
        // Shifting tenant 1's phase must not move tenant 0's curve at all.
        assert_eq!(col(&a, 0), col(&b, 0), "tenant 0 unaffected");
        assert_ne!(col(&a, 1), col(&b, 1), "tenant 1 shifted");
        assert_eq!(a.tenants().len(), 2);
        assert_eq!(a.tenant_peak(0), 1_000);
    }

    #[test]
    fn phase_spans_tile_the_horizon() {
        let trace = LoadTrace::diurnal(DiurnalConfig::default());
        let spans = trace.phase_spans();
        assert!(!spans.is_empty());
        assert_eq!(spans[0].1, SimDuration::ZERO);
        assert_eq!(spans.last().unwrap().2, trace.horizon());
        for w in spans.windows(2) {
            assert_eq!(w[0].2, w[1].1, "spans are contiguous");
            assert_ne!(w[0].0, w[1].0, "adjacent spans have distinct labels");
        }
        let labels: std::collections::BTreeSet<_> = spans.iter().map(|s| s.0).collect();
        for l in labels {
            assert!(["trough", "shoulder", "peak"].contains(&l));
        }
    }
}
