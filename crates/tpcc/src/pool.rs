//! Aggregated client arrival process — N modeled clients, one repeater.
//!
//! §5.1's closed-loop client model spawns one think-timer event per
//! client per transaction; at 10⁵–10⁶ clients the per-client timers *are*
//! the workload. [`ClientPool`] batches them: the modeled population is
//! folded onto a bounded set of **carrier** clients (each representing
//! [`ClientPool::weight`] modeled clients), and a single periodic tick
//! drives a deterministic batched arrival process.
//!
//! Per tick of width `dt`, each thinking carrier independently finishes
//! its think (mean `T`) with probability `p = dt/T` — so the pool's
//! arrival counts are Binomial(thinking, p) draws and per-carrier think
//! times are geometric with mean exactly `T`, the rate-preserving
//! discretization of N independent exponential think timers.
//! Completed carriers re-enter the thinking set and the loop closes,
//! preserving the closed-loop property (throughput limited client-side).
//!
//! What stays statistically identical to per-client mode:
//!
//! * the transaction mix — carriers draw profiles from the same per-client
//!   derived RNG streams;
//! * the per-warehouse skew — carriers are homed by the same round-robin /
//!   hot-fraction rules over the same warehouse count;
//! * the offered load — `carriers / weight × (T + R)` reproduces the
//!   modeled population's throughput, with each executed carrier
//!   transaction charged `weight`× into metrics, heat, and resource
//!   occupancy.
//!
//! What is approximated: think times are quantized to the tick width
//! (`dt = T/4`, so the quantization error is well inside the exponential
//! distribution's own spread), and response-time percentiles sample one
//! carrier execution per `weight` modeled transactions.

use wattdb_common::{DetRng, SimDuration};

/// How `spawn_clients`/`spawn_clients_skewed` decide between per-client
/// think timers and the pooled arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClientBatching {
    /// Pooled above [`POOL_AUTO_THRESHOLD`] modeled clients, per-client
    /// below it.
    #[default]
    Auto,
    /// Always one think timer per client (the legacy behaviour).
    PerClient,
    /// Always the pooled arrival process, whatever the population.
    Pooled,
}

/// Modeled-client count above which [`ClientBatching::Auto`] switches to
/// the pooled arrival process.
pub const POOL_AUTO_THRESHOLD: u32 = 4_096;

/// Carrier-population cap: a pooled spawn never materializes more than
/// this many carrier clients; the remainder is folded into per-carrier
/// weight.
pub const MAX_CARRIERS: u32 = 2_048;

impl ClientBatching {
    /// Does a population of `n` modeled clients run pooled under this
    /// setting?
    pub fn pooled(self, n: u32) -> bool {
        match self {
            ClientBatching::Auto => n > POOL_AUTO_THRESHOLD,
            ClientBatching::PerClient => false,
            ClientBatching::Pooled => true,
        }
    }
}

/// Carrier count and per-carrier weight for a pooled population of `n`
/// modeled clients: `weight = ceil(n / MAX_CARRIERS)` and
/// `carriers = ceil(n / weight)`, so `carriers × weight ≥ n` with at
/// most one carrier of slack and weight 1 whenever the population fits.
pub fn carrier_split(n: u32) -> (u32, u64) {
    let weight = (n as u64).div_ceil(MAX_CARRIERS as u64).max(1);
    let carriers = ((n as u64).div_ceil(weight) as u32).max(1);
    (carriers, weight)
}

/// The aggregated arrival process over a set of carrier clients.
///
/// The pool owns only the arrival state — which carriers are thinking,
/// the tick width, the Bernoulli parameter — while the carriers
/// themselves stay ordinary [`crate::Client`]s in the cluster's client
/// vector, so the whole executor path (profiles, key RNG streams,
/// backoff) is unchanged.
#[derive(Debug)]
pub struct ClientPool {
    /// Modeled clients represented by each carrier.
    weight: u64,
    /// Total modeled population.
    modeled: u64,
    /// Arrival tick width.
    tick: SimDuration,
    /// Per-tick completion probability of one thinking carrier.
    p: f64,
    /// Carriers currently in their think phase (unordered).
    thinking: Vec<u32>,
    rng: DetRng,
}

impl ClientPool {
    /// A pool over `carriers` carrier clients, each representing
    /// `weight` modeled clients of a `modeled`-strong population with
    /// the given mean think time. All carriers start thinking.
    pub fn new(
        carriers: u32,
        weight: u64,
        modeled: u64,
        think_mean: SimDuration,
        rng: DetRng,
    ) -> Self {
        // A quarter of the mean think time keeps the discretization
        // error far inside the exponential's own spread while bounding
        // the tick rate; the floor keeps degenerate configs sane.
        let tick_us = (think_mean.as_micros() / 4).max(1_000);
        // p = dt/T, with each arrival jittered uniformly inside its tick
        // (see [`ClientPool::arrivals`]): a carrier parks mid-tick (dt/2
        // to its first trial on average), waits (1/p − 1)·dt of geometric
        // trials, and fires dt/2 of jitter into the winning tick — summing
        // to exactly T. The jitter also breaks up the tick-boundary
        // thundering herd that synchronized arrivals would inflict on the
        // lock manager and the resource queues.
        let p = (tick_us as f64 / think_mean.as_micros().max(1) as f64).min(1.0);
        Self {
            weight,
            modeled,
            tick: SimDuration::from_micros(tick_us),
            p,
            thinking: (0..carriers).collect(),
            rng,
        }
    }

    /// Modeled clients per carrier (the multiplier for metrics, heat,
    /// and resource occupancy of each executed carrier transaction).
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Total modeled population.
    pub fn modeled(&self) -> u64 {
        self.modeled
    }

    /// Arrival tick width (the single repeater's period).
    pub fn tick(&self) -> SimDuration {
        self.tick
    }

    /// Carriers currently thinking.
    pub fn thinking_len(&self) -> usize {
        self.thinking.len()
    }

    /// Draw one tick's arrivals: each thinking carrier finishes its
    /// think with probability `p`, independently — a Binomial draw whose
    /// members are removed from the thinking set and returned for
    /// submission, each with a uniform offset inside the upcoming tick.
    /// The offsets spread the batch over the tick (per-client arrivals
    /// are not synchronized, and neither should carrier arrivals be) and
    /// complete the mean-`T` think-time accounting. Order and offsets are
    /// fully determined by the pool's RNG stream.
    pub fn arrivals(&mut self) -> Vec<(u32, SimDuration)> {
        let mut due = Vec::new();
        let mut i = 0;
        while i < self.thinking.len() {
            if self.rng.chance(self.p) {
                let carrier = self.thinking.swap_remove(i);
                let jitter = self.rng.uniform(0, self.tick.as_micros().saturating_sub(1));
                due.push((carrier, SimDuration::from_micros(jitter)));
            } else {
                i += 1;
            }
        }
        due
    }

    /// Return a carrier to the thinking set (its transaction finished
    /// or was abandoned).
    pub fn park(&mut self, carrier: u32) {
        debug_assert!(!self.thinking.contains(&carrier), "double park");
        self.thinking.push(carrier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_mode_switches_at_the_threshold() {
        assert!(!ClientBatching::Auto.pooled(POOL_AUTO_THRESHOLD));
        assert!(ClientBatching::Auto.pooled(POOL_AUTO_THRESHOLD + 1));
        assert!(!ClientBatching::PerClient.pooled(1_000_000));
        assert!(ClientBatching::Pooled.pooled(1));
    }

    #[test]
    fn carrier_split_covers_the_population() {
        for n in [1u32, 10, 2_048, 2_049, 10_000, 100_000, 1_000_000] {
            let (carriers, weight) = carrier_split(n);
            assert!(carriers <= MAX_CARRIERS);
            assert!(carriers as u64 * weight >= n as u64, "n={n}");
            assert!((carriers as u64 - 1) * weight < n as u64, "n={n}");
        }
        assert_eq!(carrier_split(100), (100, 1), "small populations: weight 1");
    }

    #[test]
    fn arrival_rate_matches_the_think_time() {
        let think = SimDuration::from_millis(100);
        let mut pool = ClientPool::new(1_000, 1, 1_000, think, DetRng::new(7));
        // Carriers parked right back each tick: draws per carrier are
        // geometric with success dt/T, so the draw rate is
        // carriers / T ≈ 10_000/s (the in-engine jitter shifts *when* in
        // the tick each fires, not how many fire).
        let ticks_per_sec = 1_000_000 / pool.tick().as_micros();
        let mut total = 0u64;
        let secs = 20;
        for _ in 0..(ticks_per_sec * secs) {
            let due = pool.arrivals();
            total += due.len() as u64;
            for (c, jitter) in due {
                assert!(jitter < pool.tick());
                pool.park(c);
            }
        }
        let per_sec = total as f64 / secs as f64;
        assert!(
            (per_sec - 10_000.0).abs() < 300.0,
            "arrival rate {per_sec}/s, expected ~10000/s"
        );
    }

    #[test]
    fn arrivals_drain_and_parks_refill() {
        let mut pool = ClientPool::new(4, 25, 100, SimDuration::from_millis(1), DetRng::new(3));
        assert_eq!(pool.weight(), 25);
        assert_eq!(pool.thinking_len(), 4);
        let mut out = 0;
        for _ in 0..10_000 {
            out += pool.arrivals().len();
            if pool.thinking_len() == 0 {
                break;
            }
        }
        assert_eq!(out, 4, "every carrier eventually arrives");
        assert_eq!(pool.thinking_len(), 0);
        pool.park(2);
        assert_eq!(pool.thinking_len(), 1);
    }
}
