//! Aggregated client arrival process — N modeled clients, one repeater.
//!
//! §5.1's closed-loop client model spawns one think-timer event per
//! client per transaction; at 10⁵–10⁶ clients the per-client timers *are*
//! the workload. [`ClientPool`] batches them: the modeled population is
//! folded onto a bounded set of **carrier** clients (each representing
//! [`ClientPool::weight`] modeled clients), and a single periodic tick
//! drives a deterministic batched arrival process.
//!
//! Per tick of width `dt`, each thinking carrier independently finishes
//! its think (mean `T`) with probability `p = dt/T` — so the pool's
//! arrival counts are Binomial(thinking, p) draws and per-carrier think
//! times are geometric with mean exactly `T`, the rate-preserving
//! discretization of N independent exponential think timers.
//! Completed carriers re-enter the thinking set and the loop closes,
//! preserving the closed-loop property (throughput limited client-side).
//!
//! What stays statistically identical to per-client mode:
//!
//! * the transaction mix — carriers draw profiles from the same per-client
//!   derived RNG streams;
//! * the per-warehouse skew — carriers are homed by the same round-robin /
//!   hot-fraction rules over the same warehouse count;
//! * the offered load — `carriers / weight × (T + R)` reproduces the
//!   modeled population's throughput, with each executed carrier
//!   transaction charged `weight`× into metrics, heat, and resource
//!   occupancy.
//!
//! What is approximated: think times are quantized to the tick width
//! (`dt = T/4`, so the quantization error is well inside the exponential
//! distribution's own spread), and response-time percentiles sample one
//! carrier execution per `weight` modeled transactions.

use wattdb_common::{DetRng, SimDuration};

/// How `spawn_clients`/`spawn_clients_skewed` decide between per-client
/// think timers and the pooled arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClientBatching {
    /// Pooled above [`POOL_AUTO_THRESHOLD`] modeled clients, per-client
    /// below it.
    #[default]
    Auto,
    /// Always one think timer per client (the legacy behaviour).
    PerClient,
    /// Always the pooled arrival process, whatever the population.
    Pooled,
}

/// Modeled-client count above which [`ClientBatching::Auto`] switches to
/// the pooled arrival process.
pub const POOL_AUTO_THRESHOLD: u32 = 4_096;

/// Carrier-population cap: a pooled spawn never materializes more than
/// this many carrier clients; the remainder is folded into per-carrier
/// weight.
pub const MAX_CARRIERS: u32 = 2_048;

impl ClientBatching {
    /// Does a population of `n` modeled clients run pooled under this
    /// setting?
    pub fn pooled(self, n: u32) -> bool {
        match self {
            ClientBatching::Auto => n > POOL_AUTO_THRESHOLD,
            ClientBatching::PerClient => false,
            ClientBatching::Pooled => true,
        }
    }
}

/// Carrier count and per-carrier weight for a pooled population of `n`
/// modeled clients: `weight = ceil(n / MAX_CARRIERS)` and
/// `carriers = ceil(n / weight)`, so `carriers × weight ≥ n` with at
/// most one carrier of slack and weight 1 whenever the population fits.
pub fn carrier_split(n: u32) -> (u32, u64) {
    let weight = (n as u64).div_ceil(MAX_CARRIERS as u64).max(1);
    let carriers = ((n as u64).div_ceil(weight) as u32).max(1);
    (carriers, weight)
}

/// One contiguous run of carriers sharing a weight — a tenant, in
/// trace-driven runs. `active` of the group's `len` carriers
/// participate in the arrival process; the rest idle (a parked carrier
/// costs one skipped slot per tick, no RNG draws, no events).
#[derive(Debug, Clone, Copy)]
struct CarrierGroup {
    /// First carrier index of the group.
    start: u32,
    /// Carriers materialized for the group (its capacity / weight).
    len: u32,
    /// Modeled clients per carrier.
    weight: u64,
    /// Carriers currently enabled (`≤ len`).
    active: u32,
    /// Modeled-client target the activation approximates.
    target: u64,
}

/// The aggregated arrival process over a set of carrier clients.
///
/// The pool owns only the arrival state — which carriers are thinking,
/// the tick width, the Bernoulli parameter — while the carriers
/// themselves stay ordinary [`crate::Client`]s in the cluster's client
/// vector, so the whole executor path (profiles, key RNG streams,
/// backoff) is unchanged.
///
/// Carriers are partitioned into contiguous **groups** (one per tenant;
/// classic spawns have exactly one). Each group activates
/// `ceil(target / weight)` of its carriers, so a [`crate::LoadTrace`]
/// resizes the offered load in O(groups) per breakpoint. With every
/// carrier active the arrival RNG stream is byte-identical to the
/// pre-group pool — disabled carriers are skipped *without* consuming
/// a draw.
#[derive(Debug)]
pub struct ClientPool {
    /// Carrier groups, in ascending `start` order.
    groups: Vec<CarrierGroup>,
    /// Arrival tick width.
    tick: SimDuration,
    /// Per-tick completion probability of one thinking carrier.
    p: f64,
    /// Carriers currently in their think phase (unordered).
    thinking: Vec<u32>,
    rng: DetRng,
}

/// Tick width and Bernoulli parameter for a mean think time.
///
/// A quarter of the mean think time keeps the discretization error far
/// inside the exponential's own spread while bounding the tick rate;
/// the floor keeps degenerate configs sane. `p = dt/T`, with each
/// arrival jittered uniformly inside its tick (see
/// [`ClientPool::arrivals`]): a carrier parks mid-tick (dt/2 to its
/// first trial on average), waits (1/p − 1)·dt of geometric trials, and
/// fires dt/2 of jitter into the winning tick — summing to exactly T.
/// The jitter also breaks up the tick-boundary thundering herd that
/// synchronized arrivals would inflict on the lock manager and the
/// resource queues.
fn tick_and_p(think_mean: SimDuration) -> (SimDuration, f64) {
    let tick_us = (think_mean.as_micros() / 4).max(1_000);
    let p = (tick_us as f64 / think_mean.as_micros().max(1) as f64).min(1.0);
    (SimDuration::from_micros(tick_us), p)
}

impl ClientPool {
    /// A single-group pool over `carriers` carrier clients, each
    /// representing `weight` modeled clients of a `modeled`-strong
    /// population with the given mean think time. All carriers start
    /// thinking and active.
    pub fn new(
        carriers: u32,
        weight: u64,
        modeled: u64,
        think_mean: SimDuration,
        rng: DetRng,
    ) -> Self {
        let (tick, p) = tick_and_p(think_mean);
        Self {
            groups: vec![CarrierGroup {
                start: 0,
                len: carriers,
                weight,
                active: carriers,
                target: modeled,
            }],
            tick,
            p,
            thinking: (0..carriers).collect(),
            rng,
        }
    }

    /// A multi-group pool: one `(carriers, weight)` group per tenant,
    /// laid out contiguously in argument order. Every carrier starts
    /// thinking and active at full capacity; drive per-group load with
    /// [`ClientPool::set_target`].
    pub fn new_grouped(specs: &[(u32, u64)], think_mean: SimDuration, rng: DetRng) -> Self {
        assert!(!specs.is_empty(), "a pool needs at least one group");
        let (tick, p) = tick_and_p(think_mean);
        let mut groups = Vec::with_capacity(specs.len());
        let mut start = 0u32;
        for &(carriers, weight) in specs {
            let carriers = carriers.max(1);
            let weight = weight.max(1);
            groups.push(CarrierGroup {
                start,
                len: carriers,
                weight,
                active: carriers,
                target: carriers as u64 * weight,
            });
            start += carriers;
        }
        Self {
            groups,
            tick,
            p,
            thinking: (0..start).collect(),
            rng,
        }
    }

    /// Retarget group `group` at `target` modeled clients: activates
    /// `ceil(target / weight)` of its carriers (clamped to the group's
    /// capacity), so the activation granularity is one carrier weight.
    /// A carrier mid-transaction when deactivated finishes it and then
    /// idles; re-activation picks idle carriers back up on the next tick.
    pub fn set_target(&mut self, group: usize, target: u64) {
        let g = &mut self.groups[group];
        let capacity = g.len as u64 * g.weight;
        g.target = target.min(capacity);
        g.active = g.target.div_ceil(g.weight).min(g.len as u64) as u32;
    }

    /// Modeled clients per carrier of the **first** group — the
    /// single-group multiplier. Multi-group pools must use
    /// [`ClientPool::weight_of`] per carrier.
    pub fn weight(&self) -> u64 {
        self.groups[0].weight
    }

    /// Modeled clients the given carrier stands in for.
    pub fn weight_of(&self, carrier: u32) -> u64 {
        self.group_of(carrier).weight
    }

    /// Total modeled population currently targeted across groups.
    pub fn modeled(&self) -> u64 {
        self.groups.iter().map(|g| g.target).sum()
    }

    /// Alias of [`ClientPool::modeled`] under the trace vocabulary: the
    /// sum of per-group targets in force right now (exported as the
    /// `workload.target_clients` gauge).
    pub fn current_target(&self) -> u64 {
        self.modeled()
    }

    /// Number of carrier groups (tenants).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Carriers currently activated across groups.
    pub fn active_carriers(&self) -> u32 {
        self.groups.iter().map(|g| g.active).sum()
    }

    fn group_of(&self, carrier: u32) -> &CarrierGroup {
        let i = self
            .groups
            .partition_point(|g| g.start <= carrier)
            .saturating_sub(1);
        &self.groups[i]
    }

    /// Is the carrier currently participating in the arrival process?
    fn enabled(&self, carrier: u32) -> bool {
        let g = self.group_of(carrier);
        carrier - g.start < g.active
    }

    /// Arrival tick width (the single repeater's period).
    pub fn tick(&self) -> SimDuration {
        self.tick
    }

    /// Carriers currently thinking.
    pub fn thinking_len(&self) -> usize {
        self.thinking.len()
    }

    /// Draw one tick's arrivals: each thinking carrier finishes its
    /// think with probability `p`, independently — a Binomial draw whose
    /// members are removed from the thinking set and returned for
    /// submission, each with a uniform offset inside the upcoming tick.
    /// The offsets spread the batch over the tick (per-client arrivals
    /// are not synchronized, and neither should carrier arrivals be) and
    /// complete the mean-`T` think-time accounting. Order and offsets are
    /// fully determined by the pool's RNG stream.
    pub fn arrivals(&mut self) -> Vec<(u32, SimDuration)> {
        let mut due = Vec::new();
        let mut i = 0;
        while i < self.thinking.len() {
            // Deactivated carriers idle in the thinking set without
            // consuming RNG draws, so a fully-active pool's arrival
            // stream is bit-identical to one that never had groups.
            if !self.enabled(self.thinking[i]) {
                i += 1;
                continue;
            }
            if self.rng.chance(self.p) {
                let carrier = self.thinking.swap_remove(i);
                let jitter = self.rng.uniform(0, self.tick.as_micros().saturating_sub(1));
                due.push((carrier, SimDuration::from_micros(jitter)));
            } else {
                i += 1;
            }
        }
        due
    }

    /// Return a carrier to the thinking set (its transaction finished
    /// or was abandoned).
    pub fn park(&mut self, carrier: u32) {
        debug_assert!(!self.thinking.contains(&carrier), "double park");
        self.thinking.push(carrier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_mode_switches_at_the_threshold() {
        assert!(!ClientBatching::Auto.pooled(POOL_AUTO_THRESHOLD));
        assert!(ClientBatching::Auto.pooled(POOL_AUTO_THRESHOLD + 1));
        assert!(!ClientBatching::PerClient.pooled(1_000_000));
        assert!(ClientBatching::Pooled.pooled(1));
    }

    #[test]
    fn carrier_split_covers_the_population() {
        for n in [1u32, 10, 2_048, 2_049, 10_000, 100_000, 1_000_000] {
            let (carriers, weight) = carrier_split(n);
            assert!(carriers <= MAX_CARRIERS);
            assert!(carriers as u64 * weight >= n as u64, "n={n}");
            assert!((carriers as u64 - 1) * weight < n as u64, "n={n}");
        }
        assert_eq!(carrier_split(100), (100, 1), "small populations: weight 1");
    }

    #[test]
    fn arrival_rate_matches_the_think_time() {
        let think = SimDuration::from_millis(100);
        let mut pool = ClientPool::new(1_000, 1, 1_000, think, DetRng::new(7));
        // Carriers parked right back each tick: draws per carrier are
        // geometric with success dt/T, so the draw rate is
        // carriers / T ≈ 10_000/s (the in-engine jitter shifts *when* in
        // the tick each fires, not how many fire).
        let ticks_per_sec = 1_000_000 / pool.tick().as_micros();
        let mut total = 0u64;
        let secs = 20;
        for _ in 0..(ticks_per_sec * secs) {
            let due = pool.arrivals();
            total += due.len() as u64;
            for (c, jitter) in due {
                assert!(jitter < pool.tick());
                pool.park(c);
            }
        }
        let per_sec = total as f64 / secs as f64;
        assert!(
            (per_sec - 10_000.0).abs() < 300.0,
            "arrival rate {per_sec}/s, expected ~10000/s"
        );
    }

    #[test]
    fn arrivals_drain_and_parks_refill() {
        let mut pool = ClientPool::new(4, 25, 100, SimDuration::from_millis(1), DetRng::new(3));
        assert_eq!(pool.weight(), 25);
        assert_eq!(pool.thinking_len(), 4);
        let mut out = 0;
        for _ in 0..10_000 {
            out += pool.arrivals().len();
            if pool.thinking_len() == 0 {
                break;
            }
        }
        assert_eq!(out, 4, "every carrier eventually arrives");
        assert_eq!(pool.thinking_len(), 0);
        pool.park(2);
        assert_eq!(pool.thinking_len(), 1);
    }

    #[test]
    fn grouped_pool_routes_weights_per_carrier() {
        let mut pool = ClientPool::new_grouped(
            &[(4, 10), (2, 25)],
            SimDuration::from_millis(100),
            DetRng::new(9),
        );
        assert_eq!(pool.group_count(), 2);
        assert_eq!(pool.weight_of(0), 10);
        assert_eq!(pool.weight_of(3), 10);
        assert_eq!(pool.weight_of(4), 25);
        assert_eq!(pool.weight_of(5), 25);
        assert_eq!(pool.current_target(), 4 * 10 + 2 * 25);
        assert_eq!(pool.active_carriers(), 6);
        // Retarget group 0 down: ceil(15/10) = 2 carriers stay active.
        pool.set_target(0, 15);
        assert_eq!(pool.active_carriers(), 2 + 2);
        assert_eq!(pool.current_target(), 15 + 50);
        // Targets clamp at group capacity.
        pool.set_target(1, 1_000_000);
        assert_eq!(pool.current_target(), 15 + 50);
        // Zero target disables the group entirely.
        pool.set_target(1, 0);
        assert_eq!(pool.active_carriers(), 2);
    }

    #[test]
    fn fully_active_groups_draw_the_same_arrival_stream_as_a_flat_pool() {
        let think = SimDuration::from_millis(50);
        let mut flat = ClientPool::new(8, 1, 8, think, DetRng::new(11));
        let mut grouped = ClientPool::new_grouped(&[(3, 1), (5, 1)], think, DetRng::new(11));
        for _ in 0..200 {
            let a = flat.arrivals();
            let b = grouped.arrivals();
            assert_eq!(a, b, "grouping must not perturb the RNG stream");
            for (c, _) in a {
                flat.park(c);
                grouped.park(c);
            }
        }
    }

    #[test]
    fn resizing_a_group_halves_its_arrival_rate() {
        let think = SimDuration::from_millis(100);
        let mut pool = ClientPool::new_grouped(&[(1_000, 1)], think, DetRng::new(13));
        let ticks_per_sec = 1_000_000 / pool.tick().as_micros();
        let rate = |pool: &mut ClientPool, secs: u64| -> f64 {
            let mut total = 0u64;
            for _ in 0..(ticks_per_sec * secs) {
                let due = pool.arrivals();
                total += due.len() as u64;
                for (c, _) in due {
                    pool.park(c);
                }
            }
            total as f64 / secs as f64
        };
        let full = rate(&mut pool, 20);
        pool.set_target(0, 500);
        let half = rate(&mut pool, 20);
        assert!(
            (full - 10_000.0).abs() < 300.0,
            "full rate {full}/s, expected ~10000/s"
        );
        assert!(
            (half - 5_000.0).abs() < 300.0,
            "half rate {half}/s, expected ~5000/s"
        );
    }
}
