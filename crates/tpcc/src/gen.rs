//! TPC-C data generation.
//!
//! Produces the initial dataset as streams of `(table, key, logical width,
//! compact payload)` rows. The `density` knob scales the per-warehouse
//! cardinalities so tests and benches can run the *same code paths* at a
//! fraction of the 100 GB the paper loads, while the logical widths keep
//! per-row I/O costs authentic.

use wattdb_common::{DetRng, Key};

use crate::schema::{keys, TpccTable, ITEM_ROWS};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TpccConfig {
    /// Number of warehouses (the scale factor; paper: 1000).
    pub warehouses: u32,
    /// Cardinality scale in (0, 1]: customers/orders/stock per warehouse
    /// are multiplied by this (minimum 1 row where the table is non-empty).
    pub density: f64,
    /// Physical payload bytes stored per row (compact stand-in for the
    /// logical row image).
    pub payload_bytes: usize,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        Self {
            warehouses: 4,
            density: 0.02,
            payload_bytes: 8,
            seed: 42,
        }
    }
}

impl TpccConfig {
    /// Scaled row count for `table`, per warehouse.
    pub fn rows_per_warehouse(&self, table: TpccTable) -> u64 {
        let base = table.rows_per_warehouse();
        if base == 0 {
            return 0;
        }
        ((base as f64 * self.density).round() as u64).max(1)
    }

    /// Scaled global ITEM count.
    pub fn item_rows(&self) -> u64 {
        ((ITEM_ROWS as f64 * self.density).round() as u64).max(1)
    }

    /// Scaled customers per district.
    pub fn customers_per_district(&self) -> u64 {
        (self.rows_per_warehouse(TpccTable::Customer) / 10).max(1)
    }

    /// Scaled orders per district.
    pub fn orders_per_district(&self) -> u64 {
        (self.rows_per_warehouse(TpccTable::Orders) / 10).max(1)
    }

    /// Scaled stock rows per warehouse.
    pub fn stock_per_warehouse(&self) -> u64 {
        self.rows_per_warehouse(TpccTable::Stock)
    }

    /// Total logical bytes the initial dataset occupies.
    pub fn logical_dataset_bytes(&self) -> u64 {
        let mut total = self.item_rows() * TpccTable::Item.row_width() as u64;
        for t in TpccTable::ALL {
            total += self.rows_per_warehouse(t) * t.row_width() as u64 * self.warehouses as u64;
        }
        total
    }
}

/// One generated row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenRow {
    /// Owning table.
    pub table: TpccTable,
    /// Primary key.
    pub key: Key,
    /// Logical width (schema row width).
    pub width: u32,
    /// Compact payload.
    pub payload: Vec<u8>,
}

fn payload(rng: &mut DetRng, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.uniform(0, 255) as u8).collect()
}

/// Generate all rows of one warehouse, in load order. Deterministic in
/// `(cfg.seed, w)`.
pub fn warehouse_rows(cfg: &TpccConfig, w: u32) -> Vec<GenRow> {
    let mut rng = DetRng::new(cfg.seed).derive(w as u64 + 1);
    let mut out = Vec::new();
    let mut push = |table: TpccTable, key: Key, rng: &mut DetRng, pb: usize| {
        out.push(GenRow {
            table,
            key,
            width: table.row_width(),
            payload: payload(rng, pb),
        });
    };
    let pb = cfg.payload_bytes;
    push(TpccTable::Warehouse, keys::warehouse(w), &mut rng, pb);
    let cust_per_d = cfg.customers_per_district();
    let orders_per_d = cfg.orders_per_district();
    // 2/3 of initial orders are delivered; the last third populates
    // NEW-ORDER, per the spec's 900/3000 ratio.
    let new_order_floor = orders_per_d - (orders_per_d * 3 / 10).max(1).min(orders_per_d);
    for d in 0..10u32 {
        push(TpccTable::District, keys::district(w, d), &mut rng, pb);
        for c in 0..cust_per_d {
            push(
                TpccTable::Customer,
                keys::customer(w, d, c as u32),
                &mut rng,
                pb,
            );
            push(TpccTable::History, keys::history(w, d, c), &mut rng, pb);
        }
        for o in 0..orders_per_d {
            push(TpccTable::Orders, keys::order(w, d, o), &mut rng, pb);
            let lines = rng.uniform(5, 15);
            for l in 0..lines {
                push(
                    TpccTable::OrderLine,
                    keys::order_line(w, d, o, l as u32),
                    &mut rng,
                    pb,
                );
            }
            if o >= new_order_floor {
                push(TpccTable::NewOrder, keys::new_order(w, d, o), &mut rng, pb);
            }
        }
    }
    for i in 0..cfg.stock_per_warehouse() {
        push(TpccTable::Stock, keys::stock(w, i), &mut rng, pb);
    }
    out
}

/// Generate the global ITEM rows (spread across the warehouse key space).
pub fn item_rows(cfg: &TpccConfig) -> Vec<GenRow> {
    let mut rng = DetRng::new(cfg.seed).derive(0xC0FFEE);
    (0..cfg.item_rows())
        .map(|i| GenRow {
            table: TpccTable::Item,
            key: keys::item(i, cfg.warehouses),
            width: TpccTable::Item.row_width(),
            payload: payload(&mut rng, cfg.payload_bytes),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::key_warehouse;
    use std::collections::HashSet;

    fn cfg() -> TpccConfig {
        TpccConfig {
            warehouses: 2,
            density: 0.01,
            payload_bytes: 8,
            seed: 7,
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = warehouse_rows(&cfg(), 1);
        let b = warehouse_rows(&cfg(), 1);
        assert_eq!(a, b);
        let other = warehouse_rows(&cfg(), 0);
        assert_ne!(a[0].key, other[0].key);
    }

    #[test]
    fn keys_unique_within_tables() {
        let rows = warehouse_rows(&cfg(), 0);
        let mut seen: HashSet<(TpccTable, Key)> = HashSet::new();
        for r in &rows {
            assert!(
                seen.insert((r.table, r.key)),
                "dup {:?} {:?}",
                r.table,
                r.key
            );
        }
    }

    #[test]
    fn rows_belong_to_their_warehouse() {
        let rows = warehouse_rows(&cfg(), 1);
        assert!(rows.iter().all(|r| key_warehouse(r.key) == 1));
    }

    #[test]
    fn density_scales_cardinalities() {
        let lo = TpccConfig {
            density: 0.01,
            ..cfg()
        };
        let hi = TpccConfig {
            density: 0.1,
            ..cfg()
        };
        let n_lo = warehouse_rows(&lo, 0).len();
        let n_hi = warehouse_rows(&hi, 0).len();
        assert!(n_hi > 5 * n_lo, "lo={n_lo} hi={n_hi}");
        assert!(hi.logical_dataset_bytes() > lo.logical_dataset_bytes());
    }

    #[test]
    fn widths_follow_schema() {
        let rows = warehouse_rows(&cfg(), 0);
        for r in &rows {
            assert_eq!(r.width, r.table.row_width());
            assert_eq!(r.payload.len(), 8);
        }
    }

    #[test]
    fn new_order_subset_of_orders() {
        let rows = warehouse_rows(&cfg(), 0);
        let orders: HashSet<Key> = rows
            .iter()
            .filter(|r| r.table == TpccTable::Orders)
            .map(|r| r.key)
            .collect();
        let new_orders: Vec<Key> = rows
            .iter()
            .filter(|r| r.table == TpccTable::NewOrder)
            .map(|r| r.key)
            .collect();
        assert!(!new_orders.is_empty());
        assert!(new_orders.len() < orders.len());
    }

    #[test]
    fn item_rows_spread_over_warehouses() {
        let c = TpccConfig {
            warehouses: 4,
            density: 0.05,
            ..cfg()
        };
        let items = item_rows(&c);
        let whs: HashSet<u32> = items.iter().map(|r| key_warehouse(r.key)).collect();
        assert!(whs.len() > 1, "items should spread: {whs:?}");
    }
}
