//! OLTP client model.
//!
//! §5.1: "we spawned a number of OLTP clients, sending queries to the DBMS.
//! Each client submits a randomly selected query at specified intervals. If
//! the query is answered, the next query is delayed until the subsequent
//! interval, similar to defined think times in the TPC-C specification.
//! Hence, the more OLTP clients and the lower the think time, the more
//! utilization is generated."
//!
//! This closed-loop design — throughput limited at the client side — is
//! what lets the paper study *fitness to a given workload* instead of peak
//! throughput.

use wattdb_common::{ClientId, DetRng, SimDuration};

use crate::txns::TxnProfile;

/// Client behaviour parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Mean think time between transactions (exponentially distributed).
    pub think_time: SimDuration,
    /// Retry aborted transactions after a short backoff.
    pub retry_backoff: SimDuration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            think_time: SimDuration::from_millis(100),
            retry_backoff: SimDuration::from_millis(10),
        }
    }
}

/// One closed-loop client bound to a home warehouse.
#[derive(Debug)]
pub struct Client {
    /// Client id.
    pub id: ClientId,
    /// Home warehouse (transactions are homed here, per the spec).
    pub home_warehouse: u32,
    cfg: ClientConfig,
    rng: DetRng,
    submitted: u64,
    completed: u64,
    retried: u64,
}

impl Client {
    /// A client with its own derived random stream.
    pub fn new(id: ClientId, home_warehouse: u32, cfg: ClientConfig, root_rng: &DetRng) -> Self {
        Self {
            id,
            home_warehouse,
            cfg,
            rng: root_rng.derive(0x10_0000 + id.raw() as u64),
            submitted: 0,
            completed: 0,
            retried: 0,
        }
    }

    /// Draw the next transaction profile from the standard mix.
    pub fn next_profile(&mut self) -> TxnProfile {
        self.submitted += 1;
        TxnProfile::draw(&mut self.rng)
    }

    /// Exponentially distributed think time before the next submission.
    pub fn think(&mut self) -> SimDuration {
        SimDuration::from_micros(self.rng.exp_micros(self.cfg.think_time.as_micros() as f64))
    }

    /// Backoff before retrying an aborted transaction.
    pub fn backoff(&mut self) -> SimDuration {
        self.retried += 1;
        // Jittered: 0.5–1.5× the configured backoff.
        let base = self.cfg.retry_backoff.as_micros();
        SimDuration::from_micros(self.rng.uniform(base / 2, base * 3 / 2))
    }

    /// Record a completion.
    pub fn complete(&mut self) {
        self.completed += 1;
    }

    /// Record `n` completions at once: a pooled carrier's one executed
    /// transaction completes on behalf of `weight` modeled clients.
    pub fn complete_n(&mut self, n: u64) {
        self.completed += n;
    }

    /// Client's private random stream (for key selection).
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Transactions submitted.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Transactions completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Retries performed.
    pub fn retried(&self) -> u64 {
        self.retried
    }
}

/// Spawn `n` clients spread round-robin over `warehouses` home warehouses.
pub fn spawn_clients(n: u32, warehouses: u32, cfg: ClientConfig, root_rng: &DetRng) -> Vec<Client> {
    (0..n)
        .map(|i| Client::new(ClientId(i), i % warehouses.max(1), cfg, root_rng))
        .collect()
}

/// Spawn `n` clients with a hot-range skew: the first
/// `n × hot_fraction` clients are homed round-robin inside the first
/// `hot_warehouses` warehouses, the rest round-robin over all of them.
/// With e.g. `hot_fraction = 0.8, hot_warehouses = 1`, 80 % of the load
/// hammers warehouse 0's key range — the workload shape that separates
/// heat-aware from fraction-based rebalance planning.
pub fn spawn_clients_skewed(
    n: u32,
    warehouses: u32,
    cfg: ClientConfig,
    root_rng: &DetRng,
    hot_fraction: f64,
    hot_warehouses: u32,
) -> Vec<Client> {
    let w = warehouses.max(1);
    let hot_w = hot_warehouses.clamp(1, w);
    let hot_n = (n as f64 * hot_fraction.clamp(0.0, 1.0)).round() as u32;
    (0..n)
        .map(|i| {
            let home = if i < hot_n { i % hot_w } else { i % w };
            Client::new(ClientId(i), home, cfg, root_rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clients_have_decorrelated_streams() {
        let root = DetRng::new(1);
        let cfg = ClientConfig::default();
        let mut a = Client::new(ClientId(0), 0, cfg, &root);
        let mut b = Client::new(ClientId(1), 0, cfg, &root);
        let sa: Vec<u64> = (0..8).map(|_| a.think().as_micros()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.think().as_micros()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn think_time_mean_tracks_config() {
        let root = DetRng::new(2);
        let cfg = ClientConfig {
            think_time: SimDuration::from_millis(50),
            ..Default::default()
        };
        let mut c = Client::new(ClientId(0), 0, cfg, &root);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| c.think().as_micros()).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 50_000.0).abs() < 2_000.0, "{mean}");
    }

    #[test]
    fn round_robin_homes() {
        let root = DetRng::new(3);
        let clients = spawn_clients(7, 3, ClientConfig::default(), &root);
        let homes: Vec<u32> = clients.iter().map(|c| c.home_warehouse).collect();
        assert_eq!(homes, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn skewed_homes_concentrate_on_the_hot_range() {
        let root = DetRng::new(6);
        let clients = spawn_clients_skewed(10, 4, ClientConfig::default(), &root, 0.8, 1);
        let hot = clients.iter().filter(|c| c.home_warehouse == 0).count();
        assert!(
            hot >= 8,
            "at least 80% of clients home on warehouse 0: {hot}"
        );
        // The tail still spreads over all warehouses.
        assert!(clients.iter().any(|c| c.home_warehouse != 0));
    }

    #[test]
    fn counters() {
        let root = DetRng::new(4);
        let mut c = Client::new(ClientId(0), 0, ClientConfig::default(), &root);
        c.next_profile();
        c.complete();
        c.backoff();
        assert_eq!(c.submitted(), 1);
        assert_eq!(c.completed(), 1);
        assert_eq!(c.retried(), 1);
    }

    #[test]
    fn backoff_jitter_bounded() {
        let root = DetRng::new(5);
        let cfg = ClientConfig {
            retry_backoff: SimDuration::from_millis(10),
            ..Default::default()
        };
        let mut c = Client::new(ClientId(0), 0, cfg, &root);
        for _ in 0..100 {
            let b = c.backoff().as_micros();
            assert!((5_000..=15_000).contains(&b), "{b}");
        }
    }
}
