//! Transaction manager: lifecycle, snapshots, and the two concurrency
//! control modes the paper compares (Fig. 3).
//!
//! * [`CcMode::Mvcc`] — snapshot reads over version chains; writers take X
//!   record locks (write-write serialization) but never block readers.
//! * [`CcMode::LockingRx`] — classical MGL-RX: readers take S record locks,
//!   writers X, updates happen in place with before-images retained for
//!   undo. The before-image list is the "additional storage space to hold a
//!   list of pending changes" the paper attributes to the locking variant.
//!
//! The manager also mints *system transactions* (§3.5) used by the
//! migration engine to serialize record movement against user work.

use std::collections::HashMap;

use wattdb_common::error::AbortReason;

use wattdb_common::{Error, Key, Result, SegmentId, TxnId};
use wattdb_index::SegmentIndex;
use wattdb_storage::{PageStore, Record, TS_INFINITY};

use crate::locks::{LockManager, LockMode, LockTarget};
use crate::mvcc::{self, Snapshot, WriteOp};

/// The canonical container for a node's segment indexes, as consumed by
/// [`TxnManager::abort`]: undo must touch every segment a transaction
/// wrote, so the caller lends the whole map.
pub type IndexMap = HashMap<SegmentId, SegmentIndex>;

/// Concurrency-control mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcMode {
    /// Multiversion concurrency control.
    Mvcc,
    /// Multi-granularity locking with R/X record locks, in-place updates.
    LockingRx,
}

/// Why this transaction exists (user work vs. internal movement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnKind {
    /// Client transaction.
    User,
    /// System transaction protecting record/segment movement.
    System,
}

/// A before-image retained by the locking mode for undo.
#[derive(Debug, Clone)]
struct BeforeImage {
    segment: SegmentId,
    key: Key,
    rid: wattdb_common::RecordId,
    /// `None` for inserts (undo = delete).
    prior: Option<Record>,
}

/// Live transaction state.
#[derive(Debug)]
pub struct TxnState {
    /// Transaction id.
    pub id: TxnId,
    /// Snapshot (MVCC mode).
    pub snapshot: Snapshot,
    /// Kind (user/system).
    pub kind: TxnKind,
    writes: Vec<WriteOp>,
    before_images: Vec<BeforeImage>,
}

impl TxnState {
    /// MVCC write set (for WAL redo records).
    pub fn write_set(&self) -> &[WriteOp] {
        &self.writes
    }

    /// Bytes of pending-change state held for undo (locking mode).
    pub fn before_image_bytes(&self) -> usize {
        self.before_images
            .iter()
            .map(|b| b.prior.as_ref().map_or(0, |r| r.encode().len()))
            .sum()
    }
}

/// The transaction manager.
#[derive(Debug)]
pub struct TxnManager {
    mode: CcMode,
    next_txn: u64,
    /// Logical commit clock; begins hand out the current value, commits
    /// increment it.
    clock: u64,
    active: HashMap<TxnId, TxnState>,
    /// The lock manager (shared by both modes).
    pub locks: LockManager,
    commits: u64,
    aborts: u64,
}

impl TxnManager {
    /// Manager in the given CC mode.
    pub fn new(mode: CcMode) -> Self {
        Self {
            mode,
            next_txn: 1,
            clock: 1,
            active: HashMap::new(),
            locks: LockManager::new(),
            commits: 0,
            aborts: 0,
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> CcMode {
        self.mode
    }

    /// Commits so far.
    pub fn commit_count(&self) -> u64 {
        self.commits
    }

    /// Aborts so far.
    pub fn abort_count(&self) -> u64 {
        self.aborts
    }

    /// Number of in-flight transactions.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Begin a transaction.
    pub fn begin(&mut self, kind: TxnKind) -> TxnId {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        let snapshot = Snapshot {
            ts: self.clock,
            txn: id,
        };
        self.active.insert(
            id,
            TxnState {
                id,
                snapshot,
                kind,
                writes: Vec::new(),
                before_images: Vec::new(),
            },
        );
        id
    }

    /// Access a live transaction.
    pub fn state(&self, txn: TxnId) -> Result<&TxnState> {
        self.active
            .get(&txn)
            .ok_or(Error::InvalidState("unknown or finished transaction"))
    }

    /// The snapshot of a live transaction.
    pub fn snapshot(&self, txn: TxnId) -> Result<Snapshot> {
        Ok(self.state(txn)?.snapshot)
    }

    /// Oldest snapshot timestamp among live transactions (vacuum horizon);
    /// the current clock when idle.
    pub fn gc_horizon(&self) -> u64 {
        self.active
            .values()
            .map(|t| t.snapshot.ts)
            .min()
            .unwrap_or(self.clock)
    }

    /// Read `key`. MVCC: snapshot read, no lock needed (caller acquires S
    /// only in LockingRx mode). Locking: reads the in-place current record.
    pub fn read(
        &self,
        txn: TxnId,
        index: &SegmentIndex,
        store: &PageStore,
        key: Key,
    ) -> Result<Option<Record>> {
        let st = self.state(txn)?;
        match self.mode {
            CcMode::Mvcc => Ok(mvcc::read(index, store, key, st.snapshot)?.0),
            CcMode::LockingRx => {
                let (rid, _) = index.get(key);
                match rid {
                    None => Ok(None),
                    Some(rid) => {
                        let r = store.read_record(rid)?;
                        Ok(if r.is_tombstone() { None } else { Some(r) })
                    }
                }
            }
        }
    }

    /// Insert `key`.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &mut self,
        txn: TxnId,
        index: &mut SegmentIndex,
        store: &mut PageStore,
        max_pages: u32,
        key: Key,
        logical_width: u32,
        payload: Vec<u8>,
    ) -> Result<()> {
        let snapshot = self.snapshot(txn)?;
        match self.mode {
            CcMode::Mvcc => {
                let w = mvcc::insert(
                    index,
                    store,
                    max_pages,
                    key,
                    logical_width,
                    payload,
                    snapshot,
                )?;
                self.active.get_mut(&txn).expect("live").writes.push(w);
            }
            CcMode::LockingRx => {
                if index.get(key).0.is_some() {
                    return Err(Error::DuplicateKey(key));
                }
                let rec = Record::new(key, self.clock, logical_width, payload);
                let (rid, _) = store.insert_record(index.segment(), &rec, max_pages)?;
                index.insert(key, rid);
                self.active
                    .get_mut(&txn)
                    .expect("live")
                    .before_images
                    .push(BeforeImage {
                        segment: index.segment(),
                        key,
                        rid,
                        prior: None,
                    });
            }
        }
        Ok(())
    }

    /// Update `key` in place (locking) or via a new version (MVCC).
    #[allow(clippy::too_many_arguments)]
    pub fn update(
        &mut self,
        txn: TxnId,
        index: &mut SegmentIndex,
        store: &mut PageStore,
        max_pages: u32,
        key: Key,
        logical_width: u32,
        payload: Vec<u8>,
    ) -> Result<()> {
        let snapshot = self.snapshot(txn)?;
        match self.mode {
            CcMode::Mvcc => {
                let w = mvcc::update(
                    index,
                    store,
                    max_pages,
                    key,
                    logical_width,
                    payload,
                    snapshot,
                )?;
                self.active.get_mut(&txn).expect("live").writes.push(w);
            }
            CcMode::LockingRx => {
                let (rid, _) = index.get(key);
                let rid = rid.ok_or(Error::KeyNotFound(key))?;
                let prior = store.read_record(rid)?;
                if prior.is_tombstone() {
                    return Err(Error::KeyNotFound(key));
                }
                let mut new = prior.clone();
                new.payload = payload;
                new.logical_width = logical_width;
                store.write_record(rid, &new)?;
                self.active
                    .get_mut(&txn)
                    .expect("live")
                    .before_images
                    .push(BeforeImage {
                        segment: index.segment(),
                        key,
                        rid,
                        prior: Some(prior),
                    });
            }
        }
        Ok(())
    }

    /// Delete `key`.
    pub fn delete(
        &mut self,
        txn: TxnId,
        index: &mut SegmentIndex,
        store: &mut PageStore,
        max_pages: u32,
        key: Key,
    ) -> Result<()> {
        let snapshot = self.snapshot(txn)?;
        match self.mode {
            CcMode::Mvcc => {
                let w = mvcc::delete(index, store, max_pages, key, snapshot)?;
                self.active.get_mut(&txn).expect("live").writes.push(w);
            }
            CcMode::LockingRx => {
                let (rid, _) = index.get(key);
                let rid = rid.ok_or(Error::KeyNotFound(key))?;
                let prior = store.read_record(rid)?;
                store.delete_record(rid)?;
                index.remove(key);
                self.active
                    .get_mut(&txn)
                    .expect("live")
                    .before_images
                    .push(BeforeImage {
                        segment: index.segment(),
                        key,
                        rid,
                        prior: Some(prior),
                    });
            }
        }
        Ok(())
    }

    /// Commit: stamps MVCC versions (or drops before-images), bumps the
    /// clock, releases locks. Returns `(commit_ts, lock grants to resume)`.
    #[allow(clippy::type_complexity)]
    pub fn commit(
        &mut self,
        txn: TxnId,
        store: &mut PageStore,
    ) -> Result<(u64, Vec<(TxnId, LockTarget, LockMode)>)> {
        let st = self
            .active
            .remove(&txn)
            .ok_or(Error::InvalidState("commit of unknown transaction"))?;
        self.clock += 1;
        let commit_ts = self.clock;
        if self.mode == CcMode::Mvcc {
            mvcc::commit_writes(store, &st.writes, commit_ts)?;
        }
        self.commits += 1;
        Ok((commit_ts, self.locks.release_all(txn)))
    }

    /// Abort: undoes writes and releases locks. Returns lock grants.
    pub fn abort(
        &mut self,
        txn: TxnId,
        indexes: &mut IndexMap,
        store: &mut PageStore,
    ) -> Result<Vec<(TxnId, LockTarget, LockMode)>> {
        let st = self
            .active
            .remove(&txn)
            .ok_or(Error::InvalidState("abort of unknown transaction"))?;
        match self.mode {
            CcMode::Mvcc => {
                // Group by segment so each segment's index is resolved once.
                let mut by_seg: HashMap<SegmentId, Vec<WriteOp>> = HashMap::new();
                for w in st.writes {
                    by_seg.entry(w.segment).or_default().push(w);
                }
                for (seg, writes) in by_seg {
                    let idx = indexes.get_mut(&seg).ok_or(Error::UnknownSegment(seg))?;
                    mvcc::abort_writes(idx, store, &writes)?;
                }
            }
            CcMode::LockingRx => {
                for b in st.before_images.into_iter().rev() {
                    let idx = indexes
                        .get_mut(&b.segment)
                        .ok_or(Error::UnknownSegment(b.segment))?;
                    match b.prior {
                        Some(prior) => {
                            if store.read_record(b.rid).is_ok() {
                                store.write_record(b.rid, &prior)?;
                            } else {
                                // Undo of a delete: re-insert the image.
                                let (rid, _) = store.insert_record(b.segment, &prior, u32::MAX)?;
                                idx.insert(b.key, rid);
                            }
                        }
                        None => {
                            store.delete_record(b.rid)?;
                            idx.remove(b.key);
                        }
                    }
                }
            }
        }
        self.aborts += 1;
        Ok(self.locks.release_all(txn))
    }

    /// The lock footprint a data operation needs before it may proceed, per
    /// the configured mode. Hierarchical order: coarse to fine.
    pub fn required_locks(
        &self,
        table: wattdb_common::TableId,
        partition: wattdb_common::PartitionId,
        key: Key,
        write: bool,
    ) -> Vec<(LockTarget, LockMode)> {
        let mut v = Vec::with_capacity(3);
        match (self.mode, write) {
            (CcMode::Mvcc, false) => {} // snapshot readers don't lock
            (CcMode::Mvcc, true) | (CcMode::LockingRx, true) => {
                v.push((LockTarget::Table(table), LockMode::IX));
                v.push((LockTarget::Partition(partition), LockMode::IX));
                v.push((LockTarget::Record(table, key), LockMode::X));
            }
            (CcMode::LockingRx, false) => {
                v.push((LockTarget::Table(table), LockMode::IS));
                v.push((LockTarget::Partition(partition), LockMode::IS));
                v.push((LockTarget::Record(table, key), LockMode::S));
            }
        }
        v
    }

    /// Total before-image bytes across live transactions (locking-mode
    /// storage overhead, Fig. 3).
    pub fn pending_change_bytes(&self) -> usize {
        self.active.values().map(|t| t.before_image_bytes()).sum()
    }

    /// Abort with a specific reason, as an error for the caller.
    pub fn abort_error(&self, txn: TxnId, reason: AbortReason) -> Error {
        Error::TxnAborted { txn, reason }
    }
}

/// End timestamp sentinel re-export for convenience.
pub const INFINITY: u64 = TS_INFINITY;

#[cfg(test)]
mod tests {
    use super::*;
    use wattdb_common::KeyRange;

    fn setup() -> (SegmentIndex, PageStore) {
        let seg = SegmentId(1);
        let mut store = PageStore::new();
        store.add_segment(seg);
        (SegmentIndex::new(seg, KeyRange::all()), store)
    }

    #[test]
    fn mvcc_commit_visibility_lifecycle() {
        let (mut idx, mut st) = setup();
        let mut tm = TxnManager::new(CcMode::Mvcc);
        let t1 = tm.begin(TxnKind::User);
        tm.insert(t1, &mut idx, &mut st, 64, Key(1), 64, vec![1])
            .unwrap();
        // Another txn doesn't see it yet.
        let t2 = tm.begin(TxnKind::User);
        assert!(tm.read(t2, &idx, &st, Key(1)).unwrap().is_none());
        tm.commit(t1, &mut st).unwrap();
        // t2's snapshot predates the commit.
        assert!(tm.read(t2, &idx, &st, Key(1)).unwrap().is_none());
        let t3 = tm.begin(TxnKind::User);
        assert!(tm.read(t3, &idx, &st, Key(1)).unwrap().is_some());
        assert_eq!(tm.commit_count(), 1);
    }

    #[test]
    fn mvcc_abort_via_manager() {
        let (mut idx, mut st) = setup();
        let mut tm = TxnManager::new(CcMode::Mvcc);
        let t1 = tm.begin(TxnKind::User);
        tm.insert(t1, &mut idx, &mut st, 64, Key(1), 64, vec![1])
            .unwrap();
        let mut map = IndexMap::new();
        map.insert(idx.segment(), idx);
        tm.abort(t1, &mut map, &mut st).unwrap();
        let idx = map.remove(&SegmentId(1)).unwrap();
        let t2 = tm.begin(TxnKind::User);
        assert!(tm.read(t2, &idx, &st, Key(1)).unwrap().is_none());
        assert_eq!(tm.abort_count(), 1);
    }

    #[test]
    fn locking_mode_updates_in_place_with_undo() {
        let (mut idx, mut st) = setup();
        let mut tm = TxnManager::new(CcMode::LockingRx);
        let t1 = tm.begin(TxnKind::User);
        tm.insert(t1, &mut idx, &mut st, 64, Key(1), 64, vec![1])
            .unwrap();
        tm.commit(t1, &mut st).unwrap();
        let t2 = tm.begin(TxnKind::User);
        tm.update(t2, &mut idx, &mut st, 64, Key(1), 64, vec![2])
            .unwrap();
        // In-place: even an unrelated reader sees the new value (that's why
        // locking mode needs the S/X protocol).
        let t3 = tm.begin(TxnKind::User);
        assert_eq!(
            tm.read(t3, &idx, &st, Key(1)).unwrap().unwrap().payload,
            vec![2]
        );
        assert!(tm.pending_change_bytes() > 0, "before-image retained");
        // Abort restores the old image.
        let mut map = IndexMap::new();
        map.insert(idx.segment(), idx);
        tm.abort(t2, &mut map, &mut st).unwrap();
        let idx = map.remove(&SegmentId(1)).unwrap();
        assert_eq!(
            tm.read(t3, &idx, &st, Key(1)).unwrap().unwrap().payload,
            vec![1]
        );
    }

    #[test]
    fn locking_mode_delete_undo() {
        let (mut idx, mut st) = setup();
        let mut tm = TxnManager::new(CcMode::LockingRx);
        let t1 = tm.begin(TxnKind::User);
        tm.insert(t1, &mut idx, &mut st, 64, Key(1), 64, vec![1])
            .unwrap();
        tm.commit(t1, &mut st).unwrap();
        let t2 = tm.begin(TxnKind::User);
        tm.delete(t2, &mut idx, &mut st, 64, Key(1)).unwrap();
        assert!(tm.read(t2, &idx, &st, Key(1)).unwrap().is_none());
        let mut map = IndexMap::new();
        map.insert(idx.segment(), idx);
        tm.abort(t2, &mut map, &mut st).unwrap();
        let idx = map.remove(&SegmentId(1)).unwrap();
        let t3 = tm.begin(TxnKind::User);
        assert_eq!(
            tm.read(t3, &idx, &st, Key(1)).unwrap().unwrap().payload,
            vec![1]
        );
    }

    #[test]
    fn required_locks_follow_mode() {
        use wattdb_common::{PartitionId, TableId};
        let tm = TxnManager::new(CcMode::Mvcc);
        assert!(tm
            .required_locks(TableId(1), PartitionId(1), Key(1), false)
            .is_empty());
        let w = tm.required_locks(TableId(1), PartitionId(1), Key(1), true);
        assert_eq!(w.len(), 3);
        assert_eq!(w[2].1, LockMode::X);
        let tm = TxnManager::new(CcMode::LockingRx);
        let r = tm.required_locks(TableId(1), PartitionId(1), Key(1), false);
        assert_eq!(r[2].1, LockMode::S);
        assert_eq!(r[0], (LockTarget::Table(TableId(1)), LockMode::IS));
    }

    #[test]
    fn gc_horizon_tracks_oldest_snapshot() {
        let (mut idx, mut st) = setup();
        let mut tm = TxnManager::new(CcMode::Mvcc);
        let t1 = tm.begin(TxnKind::User);
        let h1 = tm.gc_horizon();
        tm.insert(t1, &mut idx, &mut st, 64, Key(1), 64, vec![1])
            .unwrap();
        tm.commit(t1, &mut st).unwrap();
        // Idle: horizon advances with the clock.
        assert!(tm.gc_horizon() > h1);
        let _t2 = tm.begin(TxnKind::User);
        let held = tm.gc_horizon();
        let t3 = tm.begin(TxnKind::User);
        tm.insert(t3, &mut idx, &mut st, 64, Key(2), 64, vec![2])
            .unwrap();
        tm.commit(t3, &mut st).unwrap();
        // Horizon pinned by t2's snapshot.
        assert_eq!(tm.gc_horizon(), held);
    }

    #[test]
    fn system_transactions_tracked() {
        let mut tm = TxnManager::new(CcMode::Mvcc);
        let t = tm.begin(TxnKind::System);
        assert_eq!(tm.state(t).unwrap().kind, TxnKind::System);
        assert_eq!(tm.active_count(), 1);
    }
}
