//! Multi-granularity locking (MGL) with deadlock detection.
//!
//! The baseline concurrency control the paper benchmarks MVCC against
//! (Fig. 3) is "classical Multi-Granularity Locking with RX lock modes
//! (MGL-RX)". This manager implements the full MGL lattice — IS, IX, S,
//! SIX, X — over the hierarchy Table → Partition → Segment → Record; the
//! RX protocol is the subset using S/X on records with intention modes
//! above.
//!
//! Like the latch table, the manager is written for the event-driven
//! engine: conflicting requests queue, and `release_all` reports which
//! queued requests become granted so the caller can resume them. Deadlocks
//! are detected by wait-for-graph cycle search at request time; the
//! requester is chosen as the victim.

use std::collections::{HashMap, VecDeque};

use wattdb_common::{Key, PartitionId, SegmentId, TableId, TxnId};

/// A lockable resource in the granularity hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockTarget {
    /// Whole table.
    Table(TableId),
    /// One partition.
    Partition(PartitionId),
    /// One segment (physiological mini-partition).
    Segment(SegmentId),
    /// One record by primary key (per-table key spaces are disjoint by
    /// construction: keys embed the table).
    Record(TableId, Key),
}

/// MGL lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockMode {
    /// Intention shared.
    IS,
    /// Intention exclusive.
    IX,
    /// Shared ("R" in the paper's MGL-RX).
    S,
    /// Shared + intention exclusive.
    SIX,
    /// Exclusive ("X").
    X,
}

impl LockMode {
    /// Standard MGL compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (IS, IS)
                | (IS, IX)
                | (IS, S)
                | (IS, SIX)
                | (IX, IS)
                | (IX, IX)
                | (S, IS)
                | (S, S)
                | (SIX, IS)
        )
    }

    /// The least mode covering both (lock conversion lattice).
    pub fn combine(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self == other {
            return self;
        }
        match (self, other) {
            (X, _) | (_, X) => X,
            (SIX, _) | (_, SIX) => SIX,
            (S, IX) | (IX, S) => SIX,
            (S, IS) | (IS, S) => S,
            (IX, IS) | (IS, IX) => IX,
            _ => unreachable!("combine covers the 5x5 lattice"),
        }
    }

    /// True if `self` already covers `other` (no conversion needed).
    pub fn covers(self, other: LockMode) -> bool {
        self.combine(other) == self
    }
}

/// Result of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockAcquire {
    /// Granted (or already held in a covering mode).
    Granted,
    /// Queued behind conflicting holders; a later release grants it.
    Waiting,
    /// Granting would deadlock; the requester must abort.
    Deadlock,
}

#[derive(Debug, Default)]
struct LockState {
    /// Granted transactions and their (combined) modes.
    granted: HashMap<TxnId, LockMode>,
    /// FIFO wait queue (conversions re-queue at the front).
    queue: VecDeque<(TxnId, LockMode)>,
}

impl LockState {
    fn grant_compatible(&self, txn: TxnId, mode: LockMode) -> bool {
        self.granted
            .iter()
            .all(|(t, m)| *t == txn || m.compatible(mode))
    }
}

/// The lock manager.
#[derive(Debug, Default)]
pub struct LockManager {
    locks: HashMap<LockTarget, LockState>,
    /// Targets each txn holds or waits on (for release_all).
    touched: HashMap<TxnId, Vec<LockTarget>>,
    waits: u64,
    deadlocks: u64,
}

impl LockManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times a request had to wait.
    pub fn wait_count(&self) -> u64 {
        self.waits
    }

    /// Deadlocks detected.
    pub fn deadlock_count(&self) -> u64 {
        self.deadlocks
    }

    /// Number of targets with active lock state.
    pub fn active_targets(&self) -> usize {
        self.locks.len()
    }

    /// Mode `txn` currently holds on `target`, if any.
    pub fn held_mode(&self, txn: TxnId, target: LockTarget) -> Option<LockMode> {
        self.locks.get(&target)?.granted.get(&txn).copied()
    }

    /// Request `target` in `mode` for `txn`.
    pub fn acquire(&mut self, txn: TxnId, target: LockTarget, mode: LockMode) -> LockAcquire {
        let state = self.locks.entry(target).or_default();
        let effective = match state.granted.get(&txn) {
            Some(held) if held.covers(mode) => return LockAcquire::Granted,
            Some(held) => held.combine(mode),
            None => mode,
        };
        if state.grant_compatible(txn, effective) && state.queue.is_empty() {
            state.granted.insert(txn, effective);
            self.touched.entry(txn).or_default().push(target);
            return LockAcquire::Granted;
        }
        // Conversions may jump a non-empty queue if compatible with holders
        // (standard treatment, avoids instant self-deadlock).
        if state.granted.contains_key(&txn) && state.grant_compatible(txn, effective) {
            state.granted.insert(txn, effective);
            return LockAcquire::Granted;
        }
        // Would wait: check for a deadlock cycle first.
        if self.would_deadlock(txn, target, effective) {
            self.deadlocks += 1;
            return LockAcquire::Deadlock;
        }
        let state = self.locks.get_mut(&target).expect("entry exists");
        if state.granted.contains_key(&txn) {
            // Conversion waits at the front.
            state.queue.push_front((txn, effective));
        } else {
            state.queue.push_back((txn, effective));
        }
        self.touched.entry(txn).or_default().push(target);
        self.waits += 1;
        LockAcquire::Waiting
    }

    /// Wait-for edges from `txn` if it queued for (target, mode): the
    /// conflicting holders plus queued requests ahead of it. Cycle search
    /// via DFS over current wait relationships.
    fn would_deadlock(&self, txn: TxnId, target: LockTarget, mode: LockMode) -> bool {
        let mut stack: Vec<TxnId> = self.blockers(txn, target, mode);
        let mut seen: Vec<TxnId> = Vec::new();
        while let Some(t) = stack.pop() {
            if t == txn {
                return true;
            }
            if seen.contains(&t) {
                continue;
            }
            seen.push(t);
            // Everything t waits on.
            for (tgt, st) in &self.locks {
                for (waiter, wmode) in &st.queue {
                    if *waiter == t {
                        stack.extend(self.blockers(t, *tgt, *wmode));
                    }
                }
            }
        }
        false
    }

    fn blockers(&self, txn: TxnId, target: LockTarget, mode: LockMode) -> Vec<TxnId> {
        let Some(st) = self.locks.get(&target) else {
            return Vec::new();
        };
        let mut out: Vec<TxnId> = st
            .granted
            .iter()
            .filter(|(t, m)| **t != txn && !m.compatible(mode))
            .map(|(t, _)| *t)
            .collect();
        // Queued requests ahead also block (FIFO fairness).
        for (t, m) in &st.queue {
            if *t != txn && !m.compatible(mode) {
                out.push(*t);
            }
        }
        out
    }

    /// Release everything `txn` holds or waits for. Returns newly granted
    /// `(txn, target, mode)` requests for the caller to resume, in grant
    /// order.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(TxnId, LockTarget, LockMode)> {
        let mut granted_now = Vec::new();
        let Some(targets) = self.touched.remove(&txn) else {
            return granted_now;
        };
        for target in targets {
            let Some(state) = self.locks.get_mut(&target) else {
                continue;
            };
            state.granted.remove(&txn);
            state.queue.retain(|(t, _)| *t != txn);
            // Promote from the queue head while compatible.
            while let Some((t, m)) = state.queue.front().copied() {
                let eff = match state.granted.get(&t) {
                    Some(held) => held.combine(m),
                    None => m,
                };
                if !state.grant_compatible(t, eff) {
                    break;
                }
                state.queue.pop_front();
                state.granted.insert(t, eff);
                granted_now.push((t, target, eff));
            }
            if state.granted.is_empty() && state.queue.is_empty() {
                self.locks.remove(&target);
            }
        }
        granted_now
    }

    /// Locks held by `txn` (diagnostics/tests).
    pub fn holdings(&self, txn: TxnId) -> Vec<(LockTarget, LockMode)> {
        let mut v: Vec<(LockTarget, LockMode)> = self
            .locks
            .iter()
            .filter_map(|(tgt, st)| st.granted.get(&txn).map(|m| (*tgt, *m)))
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    fn rec(k: u64) -> LockTarget {
        LockTarget::Record(TableId(1), Key(k))
    }

    #[test]
    fn compatibility_matrix() {
        // Spot-check the canonical matrix.
        assert!(IS.compatible(IX));
        assert!(IX.compatible(IX));
        assert!(!IX.compatible(S));
        assert!(S.compatible(S));
        assert!(!S.compatible(X));
        assert!(SIX.compatible(IS));
        assert!(!SIX.compatible(SIX));
        assert!(!X.compatible(IS));
        for m in [IS, IX, S, SIX, X] {
            assert!(!X.compatible(m));
            assert!(!m.compatible(X));
        }
    }

    #[test]
    fn combine_lattice() {
        assert_eq!(S.combine(IX), SIX);
        assert_eq!(IS.combine(IX), IX);
        assert_eq!(S.combine(S), S);
        assert_eq!(SIX.combine(S), SIX);
        assert_eq!(X.combine(IS), X);
        assert!(X.covers(S));
        assert!(!S.covers(IX));
    }

    #[test]
    fn shared_coexist_exclusive_waits() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(TxnId(1), rec(5), S), LockAcquire::Granted);
        assert_eq!(lm.acquire(TxnId(2), rec(5), S), LockAcquire::Granted);
        assert_eq!(lm.acquire(TxnId(3), rec(5), X), LockAcquire::Waiting);
        // Release one reader: writer still blocked by the other.
        assert!(lm.release_all(TxnId(1)).is_empty());
        let granted = lm.release_all(TxnId(2));
        assert_eq!(granted, vec![(TxnId(3), rec(5), X)]);
    }

    #[test]
    fn intention_locks_on_hierarchy() {
        let mut lm = LockManager::new();
        let tbl = LockTarget::Table(TableId(1));
        // Txn 1 scans (S on table), txn 2 wants to update a record (IX on
        // table) — classic MGL conflict at the table level.
        assert_eq!(lm.acquire(TxnId(1), tbl, S), LockAcquire::Granted);
        assert_eq!(lm.acquire(TxnId(2), tbl, IX), LockAcquire::Waiting);
        let granted = lm.release_all(TxnId(1));
        assert_eq!(granted, vec![(TxnId(2), tbl, IX)]);
        // IS and IX coexist.
        assert_eq!(lm.acquire(TxnId(3), tbl, IS), LockAcquire::Granted);
    }

    #[test]
    fn upgrade_s_to_x() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(TxnId(1), rec(1), S), LockAcquire::Granted);
        // Sole holder upgrades immediately.
        assert_eq!(lm.acquire(TxnId(1), rec(1), X), LockAcquire::Granted);
        assert_eq!(lm.held_mode(TxnId(1), rec(1)), Some(X));
        // Re-request of a covered mode is a no-op grant.
        assert_eq!(lm.acquire(TxnId(1), rec(1), S), LockAcquire::Granted);
    }

    #[test]
    fn upgrade_deadlock_detected() {
        let mut lm = LockManager::new();
        // Two readers both try to upgrade: the second must see the cycle.
        assert_eq!(lm.acquire(TxnId(1), rec(1), S), LockAcquire::Granted);
        assert_eq!(lm.acquire(TxnId(2), rec(1), S), LockAcquire::Granted);
        assert_eq!(lm.acquire(TxnId(1), rec(1), X), LockAcquire::Waiting);
        assert_eq!(lm.acquire(TxnId(2), rec(1), X), LockAcquire::Deadlock);
        assert_eq!(lm.deadlock_count(), 1);
    }

    #[test]
    fn two_txn_cycle_detected() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(TxnId(1), rec(1), X), LockAcquire::Granted);
        assert_eq!(lm.acquire(TxnId(2), rec(2), X), LockAcquire::Granted);
        assert_eq!(lm.acquire(TxnId(1), rec(2), X), LockAcquire::Waiting);
        // 2 → 1 → 2 closes the cycle.
        assert_eq!(lm.acquire(TxnId(2), rec(1), X), LockAcquire::Deadlock);
    }

    #[test]
    fn victim_abort_unblocks_waiter() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), rec(1), X);
        lm.acquire(TxnId(2), rec(2), X);
        lm.acquire(TxnId(1), rec(2), X);
        assert_eq!(lm.acquire(TxnId(2), rec(1), X), LockAcquire::Deadlock);
        // Victim (txn 2) aborts, releasing rec(2); txn 1 proceeds.
        let granted = lm.release_all(TxnId(2));
        assert_eq!(granted, vec![(TxnId(1), rec(2), X)]);
        assert_eq!(lm.holdings(TxnId(1)).len(), 2);
    }

    #[test]
    fn fifo_no_barging() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), rec(1), X);
        assert_eq!(lm.acquire(TxnId(2), rec(1), S), LockAcquire::Waiting);
        // A later S request queues behind the waiting S (queue non-empty).
        assert_eq!(lm.acquire(TxnId(3), rec(1), S), LockAcquire::Waiting);
        let granted = lm.release_all(TxnId(1));
        // Both shared requests granted together, in order.
        assert_eq!(granted, vec![(TxnId(2), rec(1), S), (TxnId(3), rec(1), S)]);
    }

    #[test]
    fn release_cleans_state() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), rec(1), S);
        lm.acquire(TxnId(1), LockTarget::Table(TableId(1)), IS);
        assert_eq!(lm.active_targets(), 2);
        lm.release_all(TxnId(1));
        assert_eq!(lm.active_targets(), 0);
        assert!(lm.holdings(TxnId(1)).is_empty());
    }

    #[test]
    fn segment_and_partition_targets_are_distinct() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(TxnId(1), LockTarget::Segment(SegmentId(1)), X),
            LockAcquire::Granted
        );
        assert_eq!(
            lm.acquire(TxnId(2), LockTarget::Partition(PartitionId(1)), X),
            LockAcquire::Granted
        );
    }
}
