//! Transactions for WattDB-RS: MVCC, MGL-RX locking, and lifecycle.
//!
//! Implements §3.5 of the paper: multiversion concurrency control so that
//! "readers can still access old versions, even if new transactions changed
//! the data" — the property that lets repartitioning move records without
//! stalling readers — plus the classical multi-granularity locking baseline
//! (MGL-RX) it is benchmarked against in Fig. 3, and the system
//! transactions that serialize record movement.

pub mod blocking;
pub mod locks;
pub mod manager;
pub mod mvcc;

pub use blocking::{BlockingAcquire, BlockingLockManager};
pub use locks::{LockAcquire, LockManager, LockMode, LockTarget};
pub use manager::{CcMode, IndexMap, TxnKind, TxnManager, TxnState};
pub use mvcc::{is_provisional, owner, provisional, visible, Snapshot, WriteOp, TXN_MARK};
