//! Multiversion concurrency control over the storage layer.
//!
//! §3.5: "Multiversion Concurrency Control allows multiple versions of DB
//! objects to exist; modifying a record creates a new version of it without
//! deleting the old one immediately. Hence, readers can still access old
//! versions [...] This property is especially useful for dynamic
//! partitioning techniques, where records are frequently moved."
//!
//! Versions live in pages as [`Record`]s chained newest-first through their
//! `prev` pointers; the segment's PK index always points at the newest
//! version. Uncommitted timestamps are *provisional*: the creating
//! transaction's id with the high bit set. Commit stamps them with the
//! commit timestamp; abort unlinks the provisional version.
//!
//! Write-write conflicts: a transaction that finds the newest version
//! provisionally owned by another in-flight transaction aborts
//! (first-updater-wins between concurrent writers). Writes against versions
//! committed *after* the writer's snapshot are allowed once the record's X
//! lock is held — read-committed write semantics, the standard engine
//! behaviour that keeps TPC-C's hot counter rows (W_YTD, D_NEXT_O_ID) from
//! aborting every concurrent increment. Snapshot reads are unaffected.

use wattdb_common::{Error, Key, Result, SegmentId, TxnId};
use wattdb_index::SegmentIndex;
use wattdb_storage::{PageStore, Record, TS_INFINITY};

/// High bit marking a provisional (uncommitted) timestamp.
pub const TXN_MARK: u64 = 1 << 63;

/// Provisional timestamp for `txn`.
pub fn provisional(txn: TxnId) -> u64 {
    TXN_MARK | txn.raw()
}

/// True for provisional timestamps (excluding the `TS_INFINITY` sentinel).
pub fn is_provisional(ts: u64) -> bool {
    ts >= TXN_MARK && ts != TS_INFINITY
}

/// Owner of a provisional timestamp.
pub fn owner(ts: u64) -> TxnId {
    debug_assert!(is_provisional(ts));
    TxnId(ts & !TXN_MARK)
}

/// A transaction's view: its start timestamp plus its own id (own
/// uncommitted writes are visible to itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Sees versions committed at or before this timestamp.
    pub ts: u64,
    /// Owning transaction.
    pub txn: TxnId,
}

/// Is `rec` visible to `snap`?
pub fn visible(rec: &Record, snap: Snapshot) -> bool {
    let begin_ok = if is_provisional(rec.begin) {
        owner(rec.begin) == snap.txn
    } else {
        rec.begin <= snap.ts
    };
    let end_ok = if rec.end == TS_INFINITY {
        true
    } else if is_provisional(rec.end) {
        // Superseded only provisionally: still visible to everyone except
        // the superseding transaction itself.
        owner(rec.end) != snap.txn
    } else {
        rec.end > snap.ts
    };
    begin_ok && end_ok
}

/// One entry of a transaction's write set, needed to stamp or undo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOp {
    /// Segment the key lives in.
    pub segment: SegmentId,
    /// The key written.
    pub key: Key,
    /// The provisional new version.
    pub new_rid: wattdb_common::RecordId,
    /// The superseded version, if the key existed.
    pub old_rid: Option<wattdb_common::RecordId>,
}

/// Read the newest version of `key` visible to `snap`. Returns `None` for
/// unknown keys and for keys whose visible version is a tombstone. Also
/// reports the number of versions inspected (cost model).
pub fn read(
    index: &SegmentIndex,
    store: &PageStore,
    key: Key,
    snap: Snapshot,
) -> Result<(Option<Record>, usize)> {
    let (rid, _) = index.get(key);
    let Some(mut rid) = rid else {
        return Ok((None, 0));
    };
    let mut inspected = 0;
    loop {
        let rec = store.read_record(rid)?;
        inspected += 1;
        if visible(&rec, snap) {
            let out = if rec.is_tombstone() { None } else { Some(rec) };
            return Ok((out, inspected));
        }
        match rec.prev {
            Some(prev) => rid = prev,
            None => return Ok((None, inspected)),
        }
    }
}

fn check_write_conflict(newest: &Record, snap: Snapshot) -> Result<()> {
    // Another transaction's uncommitted version heads the chain.
    if is_provisional(newest.begin) && owner(newest.begin) != snap.txn {
        return Err(Error::TxnAborted {
            txn: snap.txn,
            reason: wattdb_common::error::AbortReason::WriteConflict,
        });
    }
    // Another transaction provisionally superseded it.
    if is_provisional(newest.end) && newest.end != TS_INFINITY && owner(newest.end) != snap.txn {
        return Err(Error::TxnAborted {
            txn: snap.txn,
            reason: wattdb_common::error::AbortReason::WriteConflict,
        });
    }
    Ok(())
}

/// Insert a new key. Fails with [`Error::DuplicateKey`] if a visible
/// version exists.
#[allow(clippy::too_many_arguments)]
pub fn insert(
    index: &mut SegmentIndex,
    store: &mut PageStore,
    max_pages: u32,
    key: Key,
    logical_width: u32,
    payload: Vec<u8>,
    snap: Snapshot,
) -> Result<WriteOp> {
    let (existing_rid, _) = index.get(key);
    let prev = match existing_rid {
        Some(rid) => {
            let newest = store.read_record(rid)?;
            check_write_conflict(&newest, snap)?;
            if !newest.is_tombstone() {
                return Err(Error::DuplicateKey(key));
            }
            // Re-insert over a tombstone: chain through it.
            Some(rid)
        }
        None => None,
    };
    let mut rec = Record::new(key, provisional(snap.txn), logical_width, payload);
    rec.prev = prev;
    let segment = index.segment();
    let (new_rid, _) = store.insert_record(segment, &rec, max_pages)?;
    if let Some(old_rid) = prev {
        let mut old = store.read_record(old_rid)?;
        old.end = provisional(snap.txn);
        store.write_record(old_rid, &old)?;
    }
    index.insert(key, new_rid);
    Ok(WriteOp {
        segment,
        key,
        new_rid,
        old_rid: prev,
    })
}

/// Update an existing key with a new payload (creates a version).
#[allow(clippy::too_many_arguments)]
pub fn update(
    index: &mut SegmentIndex,
    store: &mut PageStore,
    max_pages: u32,
    key: Key,
    logical_width: u32,
    payload: Vec<u8>,
    snap: Snapshot,
) -> Result<WriteOp> {
    write_version(index, store, max_pages, key, snap, |prev_rid| {
        let mut r = Record::new(key, provisional(snap.txn), logical_width, payload.clone());
        r.prev = Some(prev_rid);
        r
    })
}

/// Delete an existing key (creates a tombstone version).
pub fn delete(
    index: &mut SegmentIndex,
    store: &mut PageStore,
    max_pages: u32,
    key: Key,
    snap: Snapshot,
) -> Result<WriteOp> {
    write_version(index, store, max_pages, key, snap, |prev_rid| {
        let mut t = Record::tombstone(key, provisional(snap.txn));
        t.prev = Some(prev_rid);
        t
    })
}

fn write_version(
    index: &mut SegmentIndex,
    store: &mut PageStore,
    max_pages: u32,
    key: Key,
    snap: Snapshot,
    make: impl Fn(wattdb_common::RecordId) -> Record,
) -> Result<WriteOp> {
    let (rid, _) = index.get(key);
    let old_rid = rid.ok_or(Error::KeyNotFound(key))?;
    let mut newest = store.read_record(old_rid)?;
    check_write_conflict(&newest, snap)?;
    if newest.is_tombstone() {
        return Err(Error::KeyNotFound(key));
    }
    let segment = index.segment();
    let rec = make(old_rid);
    let (new_rid, _) = store.insert_record(segment, &rec, max_pages)?;
    newest.end = provisional(snap.txn);
    store.write_record(old_rid, &newest)?;
    index.insert(key, new_rid);
    Ok(WriteOp {
        segment,
        key,
        new_rid,
        old_rid: Some(old_rid),
    })
}

/// Stamp a transaction's write set at commit time.
pub fn commit_writes(store: &mut PageStore, writes: &[WriteOp], commit_ts: u64) -> Result<()> {
    for w in writes {
        let mut new = store.read_record(w.new_rid)?;
        if is_provisional(new.begin) {
            new.begin = commit_ts;
            store.write_record(w.new_rid, &new)?;
        }
        if let Some(old_rid) = w.old_rid {
            let mut old = store.read_record(old_rid)?;
            if is_provisional(old.end) && old.end != TS_INFINITY {
                old.end = commit_ts;
                store.write_record(old_rid, &old)?;
            }
        }
    }
    Ok(())
}

/// Undo a transaction's write set at abort: unlink provisional versions and
/// restore index pointers and end timestamps.
pub fn abort_writes(
    index: &mut SegmentIndex,
    store: &mut PageStore,
    writes: &[WriteOp],
) -> Result<()> {
    // Undo in reverse so repeated writes to one key restore correctly.
    for w in writes.iter().rev() {
        store.delete_record(w.new_rid)?;
        match w.old_rid {
            Some(old_rid) => {
                let mut old = store.read_record(old_rid)?;
                if is_provisional(old.end) {
                    old.end = TS_INFINITY;
                    store.write_record(old_rid, &old)?;
                }
                index.insert(w.key, old_rid);
            }
            None => {
                index.remove(w.key);
            }
        }
    }
    Ok(())
}

/// Garbage-collect versions no snapshot at or after `horizon` can see:
/// committed versions with `end <= horizon`, plus tombstone heads older
/// than the horizon. Returns versions reclaimed.
pub fn vacuum(index: &mut SegmentIndex, store: &mut PageStore, horizon: u64) -> Result<usize> {
    let mut reclaimed = 0;
    for (key, head_rid) in index.entries() {
        // Walk the chain, keeping the head; cut the first link whose target
        // is invisible to every active snapshot.
        let mut cur_rid = head_rid;
        loop {
            let cur = store.read_record(cur_rid)?;
            let Some(prev_rid) = cur.prev else {
                break;
            };
            let prev = store.read_record(prev_rid)?;
            if !is_provisional(prev.end) && prev.end != TS_INFINITY && prev.end <= horizon {
                // Unlink and reclaim the whole tail from prev down.
                let mut cut = cur;
                cut.prev = None;
                store.write_record(cur_rid, &cut)?;
                let mut tail = Some(prev_rid);
                while let Some(rid) = tail {
                    let r = store.read_record(rid)?;
                    tail = r.prev;
                    store.delete_record(rid)?;
                    reclaimed += 1;
                }
                break;
            }
            cur_rid = prev_rid;
        }
        // Drop fully-dead tombstone heads (no chain, committed, old).
        let head = store.read_record(head_rid)?;
        if head.is_tombstone()
            && head.prev.is_none()
            && !is_provisional(head.begin)
            && head.begin <= horizon
        {
            store.delete_record(head_rid)?;
            index.remove(key);
            reclaimed += 1;
        }
    }
    Ok(reclaimed)
}

/// Count stored versions per live key: (versions, live keys). The paper's
/// Fig. 3 storage-space line is `versions / live keys`.
pub fn version_stats(index: &SegmentIndex, store: &PageStore) -> Result<(usize, usize)> {
    let mut versions = 0;
    let live = index.len();
    for (_, head) in index.entries() {
        let mut rid = Some(head);
        while let Some(r) = rid {
            let rec = store.read_record(r)?;
            versions += 1;
            rid = rec.prev;
        }
    }
    Ok((versions, live))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattdb_common::KeyRange;

    const MAX_PAGES: u32 = 1024;

    fn setup() -> (SegmentIndex, PageStore) {
        let seg = SegmentId(1);
        let mut store = PageStore::new();
        store.add_segment(seg);
        let index = SegmentIndex::new(seg, KeyRange::all());
        (index, store)
    }

    fn snap(ts: u64, txn: u64) -> Snapshot {
        Snapshot {
            ts,
            txn: TxnId(txn),
        }
    }

    fn commit(store: &mut PageStore, writes: &[WriteOp], ts: u64) {
        commit_writes(store, writes, ts).unwrap();
    }

    #[test]
    fn insert_commit_read() {
        let (mut idx, mut st) = setup();
        let w = insert(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![7],
            snap(10, 1),
        )
        .unwrap();
        // Own uncommitted write is visible to self, invisible to others.
        assert!(read(&idx, &st, Key(1), snap(10, 1)).unwrap().0.is_some());
        assert!(read(&idx, &st, Key(1), snap(10, 2)).unwrap().0.is_none());
        commit(&mut st, &[w], 20);
        // Visible to snapshots at/after 20, invisible before.
        assert!(read(&idx, &st, Key(1), snap(20, 2)).unwrap().0.is_some());
        assert!(read(&idx, &st, Key(1), snap(19, 2)).unwrap().0.is_none());
    }

    #[test]
    fn update_preserves_old_version_for_readers() {
        let (mut idx, mut st) = setup();
        let w = insert(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![1],
            snap(0, 1),
        )
        .unwrap();
        commit(&mut st, &[w], 10);
        // Updater at ts 20.
        let w2 = update(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![2],
            snap(20, 2),
        )
        .unwrap();
        commit(&mut st, &[w2], 30);
        // A reader whose snapshot predates the update still sees v1 —
        // the paper's key property while records are on the move.
        let old = read(&idx, &st, Key(1), snap(25, 3)).unwrap().0.unwrap();
        assert_eq!(old.payload, vec![1]);
        let new = read(&idx, &st, Key(1), snap(30, 3)).unwrap().0.unwrap();
        assert_eq!(new.payload, vec![2]);
    }

    #[test]
    fn delete_leaves_tombstone_until_vacuum() {
        let (mut idx, mut st) = setup();
        let w = insert(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![1],
            snap(0, 1),
        )
        .unwrap();
        commit(&mut st, &[w], 10);
        let w2 = delete(&mut idx, &mut st, MAX_PAGES, Key(1), snap(15, 2)).unwrap();
        commit(&mut st, &[w2], 20);
        assert!(read(&idx, &st, Key(1), snap(15, 3)).unwrap().0.is_some());
        assert!(read(&idx, &st, Key(1), snap(20, 3)).unwrap().0.is_none());
        // Vacuum past the tombstone: key disappears entirely.
        let reclaimed = vacuum(&mut idx, &mut st, 50).unwrap();
        assert!(reclaimed >= 2, "old version + tombstone, got {reclaimed}");
        assert_eq!(idx.get(Key(1)).0, None);
    }

    #[test]
    fn write_write_conflict_aborts_second_writer() {
        let (mut idx, mut st) = setup();
        let w = insert(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![1],
            snap(0, 1),
        )
        .unwrap();
        commit(&mut st, &[w], 10);
        let _w1 = update(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![2],
            snap(20, 2),
        )
        .unwrap();
        // Txn 3 tries to update the same record while txn 2 is in flight.
        let err = update(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![3],
            snap(20, 3),
        );
        assert!(matches!(err, Err(Error::TxnAborted { .. })));
    }

    #[test]
    fn read_committed_writes_chain_after_commit() {
        let (mut idx, mut st) = setup();
        let w = insert(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![1],
            snap(0, 1),
        )
        .unwrap();
        commit(&mut st, &[w], 10);
        // Txn 2 and 3 both start at ts 20. Txn 2 updates and commits at 30.
        let w2 = update(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![2],
            snap(20, 2),
        )
        .unwrap();
        commit(&mut st, &[w2], 30);
        // Txn 3's snapshot (20) predates that commit, but with the record's
        // X lock serializing writers, its update applies on top of txn 2's
        // committed version (read-committed write semantics) instead of
        // aborting — hot TPC-C counters depend on this.
        let w3 = update(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![3],
            snap(20, 3),
        )
        .unwrap();
        commit(&mut st, &[w3], 40);
        let r = read(&idx, &st, Key(1), snap(40, 9)).unwrap().0.unwrap();
        assert_eq!(r.payload, vec![3]);
        // An old snapshot still sees the pre-churn version.
        let r = read(&idx, &st, Key(1), snap(15, 9)).unwrap().0.unwrap();
        assert_eq!(r.payload, vec![1]);
    }

    #[test]
    fn abort_restores_previous_state() {
        let (mut idx, mut st) = setup();
        let w = insert(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![1],
            snap(0, 1),
        )
        .unwrap();
        commit(&mut st, &[w], 10);
        let w2 = update(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![2],
            snap(20, 2),
        )
        .unwrap();
        abort_writes(&mut idx, &mut st, &[w2]).unwrap();
        let r = read(&idx, &st, Key(1), snap(20, 3)).unwrap().0.unwrap();
        assert_eq!(r.payload, vec![1]);
        assert_eq!(r.end, TS_INFINITY);
        // A fresh insert that aborts leaves no key behind.
        let w3 = insert(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(9),
            64,
            vec![9],
            snap(20, 4),
        )
        .unwrap();
        abort_writes(&mut idx, &mut st, &[w3]).unwrap();
        assert_eq!(idx.get(Key(9)).0, None);
    }

    #[test]
    fn duplicate_insert_rejected_reinsert_over_tombstone_ok() {
        let (mut idx, mut st) = setup();
        let w = insert(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![1],
            snap(0, 1),
        )
        .unwrap();
        commit(&mut st, &[w], 10);
        assert!(matches!(
            insert(
                &mut idx,
                &mut st,
                MAX_PAGES,
                Key(1),
                64,
                vec![2],
                snap(20, 2)
            ),
            Err(Error::DuplicateKey(_))
        ));
        let w2 = delete(&mut idx, &mut st, MAX_PAGES, Key(1), snap(20, 2)).unwrap();
        commit(&mut st, &[w2], 30);
        let w3 = insert(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![3],
            snap(40, 3),
        )
        .unwrap();
        commit(&mut st, &[w3], 50);
        let r = read(&idx, &st, Key(1), snap(50, 4)).unwrap().0.unwrap();
        assert_eq!(r.payload, vec![3]);
    }

    #[test]
    fn vacuum_respects_active_snapshots() {
        let (mut idx, mut st) = setup();
        let w = insert(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![1],
            snap(0, 1),
        )
        .unwrap();
        commit(&mut st, &[w], 10);
        let w2 = update(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![2],
            snap(20, 2),
        )
        .unwrap();
        commit(&mut st, &[w2], 30);
        // Horizon 25: the old version (end=30) may still be needed.
        assert_eq!(vacuum(&mut idx, &mut st, 25).unwrap(), 0);
        let (versions, live) = version_stats(&idx, &st).unwrap();
        assert_eq!((versions, live), (2, 1));
        // Horizon 30: old version reclaimable.
        assert_eq!(vacuum(&mut idx, &mut st, 30).unwrap(), 1);
        let (versions, live) = version_stats(&idx, &st).unwrap();
        assert_eq!((versions, live), (1, 1));
        // Reader at a current snapshot still sees v2.
        let r = read(&idx, &st, Key(1), snap(40, 9)).unwrap().0.unwrap();
        assert_eq!(r.payload, vec![2]);
    }

    #[test]
    fn own_double_update_chains() {
        let (mut idx, mut st) = setup();
        let w = insert(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![1],
            snap(0, 1),
        )
        .unwrap();
        commit(&mut st, &[w], 10);
        let w1 = update(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![2],
            snap(20, 2),
        )
        .unwrap();
        let w2 = update(
            &mut idx,
            &mut st,
            MAX_PAGES,
            Key(1),
            64,
            vec![3],
            snap(20, 2),
        )
        .unwrap();
        // Own snapshot sees the latest own write.
        let r = read(&idx, &st, Key(1), snap(20, 2)).unwrap().0.unwrap();
        assert_eq!(r.payload, vec![3]);
        commit(&mut st, &[w1, w2], 30);
        let r = read(&idx, &st, Key(1), snap(30, 5)).unwrap().0.unwrap();
        assert_eq!(r.payload, vec![3]);
    }
}
