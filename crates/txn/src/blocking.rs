//! Thread-blocking facade over the lock manager.
//!
//! The engine proper runs under the deterministic event loop and uses the
//! token-based [`LockManager`] directly. Library users embedding the
//! engine in a threaded application get this facade instead: `acquire`
//! blocks the calling thread until the lock is granted (or a deadlock
//! makes it the victim), and `release_all` wakes whoever became grantable.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use wattdb_common::TxnId;

use crate::locks::{LockAcquire, LockManager, LockMode, LockTarget};

/// Outcome of a blocking acquire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingAcquire {
    /// Lock held.
    Granted,
    /// The request closed a wait-for cycle; the caller must abort.
    Deadlock,
}

struct Inner {
    locks: Mutex<LockManager>,
    granted: Condvar,
}

/// A shareable, thread-safe lock manager.
#[derive(Clone)]
pub struct BlockingLockManager {
    inner: Arc<Inner>,
}

impl Default for BlockingLockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockingLockManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                locks: Mutex::new(LockManager::new()),
                granted: Condvar::new(),
            }),
        }
    }

    /// Acquire `target` in `mode` for `txn`, blocking until granted.
    pub fn acquire(&self, txn: TxnId, target: LockTarget, mode: LockMode) -> BlockingAcquire {
        let mut lm = self.inner.locks.lock();
        match lm.acquire(txn, target, mode) {
            LockAcquire::Granted => BlockingAcquire::Granted,
            LockAcquire::Deadlock => BlockingAcquire::Deadlock,
            LockAcquire::Waiting => {
                // Park until a release grants us the mode we asked for.
                loop {
                    self.inner.granted.wait(&mut lm);
                    if lm
                        .held_mode(txn, target)
                        .map(|m| m.covers(mode))
                        .unwrap_or(false)
                    {
                        return BlockingAcquire::Granted;
                    }
                }
            }
        }
    }

    /// Release everything `txn` holds and wake newly granted waiters.
    pub fn release_all(&self, txn: TxnId) {
        let granted = {
            let mut lm = self.inner.locks.lock();
            lm.release_all(txn)
        };
        if !granted.is_empty() {
            self.inner.granted.notify_all();
        }
    }

    /// Deadlocks detected so far.
    pub fn deadlock_count(&self) -> u64 {
        self.inner.locks.lock().deadlock_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use wattdb_common::{Key, TableId};

    fn rec(k: u64) -> LockTarget {
        LockTarget::Record(TableId(1), Key(k))
    }

    #[test]
    fn uncontended_grant() {
        let lm = BlockingLockManager::new();
        assert_eq!(
            lm.acquire(TxnId(1), rec(1), LockMode::X),
            BlockingAcquire::Granted
        );
        lm.release_all(TxnId(1));
    }

    #[test]
    fn writer_blocks_until_reader_releases() {
        let lm = BlockingLockManager::new();
        assert_eq!(
            lm.acquire(TxnId(1), rec(1), LockMode::S),
            BlockingAcquire::Granted
        );
        let lm2 = lm.clone();
        let t = std::thread::spawn(move || {
            // Blocks until the main thread releases.
            let r = lm2.acquire(TxnId(2), rec(1), LockMode::X);
            lm2.release_all(TxnId(2));
            r
        });
        std::thread::sleep(Duration::from_millis(30));
        lm.release_all(TxnId(1));
        assert_eq!(t.join().unwrap(), BlockingAcquire::Granted);
    }

    #[test]
    fn many_threads_serialize_on_one_record() {
        let lm = BlockingLockManager::new();
        let counter = std::sync::Arc::new(Mutex::new(0u32));
        crossbeam::scope(|scope| {
            for i in 0..16u64 {
                let lm = lm.clone();
                let counter = counter.clone();
                scope.spawn(move |_| {
                    let txn = TxnId(i + 1);
                    assert_eq!(
                        lm.acquire(txn, rec(7), LockMode::X),
                        BlockingAcquire::Granted
                    );
                    // Critical section: X holders are exclusive.
                    {
                        let mut c = counter.lock();
                        *c += 1;
                    }
                    lm.release_all(txn);
                });
            }
        })
        .unwrap();
        assert_eq!(*counter.lock(), 16);
    }

    #[test]
    fn deadlock_reported_to_the_victim() {
        let lm = BlockingLockManager::new();
        lm.acquire(TxnId(1), rec(1), LockMode::X);
        let lm2 = lm.clone();
        let t = std::thread::spawn(move || {
            lm2.acquire(TxnId(2), rec(2), LockMode::X);
            // 2 waits for 1's record...
            let r = lm2.acquire(TxnId(2), rec(1), LockMode::X);
            if r == BlockingAcquire::Granted {
                lm2.release_all(TxnId(2));
            }
            r
        });
        std::thread::sleep(Duration::from_millis(30));
        // ...and 1 closing the cycle must be told it's a deadlock.
        let r = lm.acquire(TxnId(1), rec(2), LockMode::X);
        assert_eq!(r, BlockingAcquire::Deadlock);
        // Victim aborts, releasing its locks; thread 2 proceeds.
        lm.release_all(TxnId(1));
        assert_eq!(t.join().unwrap(), BlockingAcquire::Granted);
        assert_eq!(lm.deadlock_count(), 1);
    }
}
