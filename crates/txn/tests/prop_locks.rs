//! Property tests: lock-manager invariants under random workloads.
//!
//! 1. Granted holders on any target are pairwise compatible at all times.
//! 2. Nothing leaks: after every transaction releases, the table is empty.
//! 3. Deadlock detection never reports a cycle for a single transaction's
//!    own re-acquisitions.

use proptest::prelude::*;
use wattdb_common::{Key, TableId, TxnId};
use wattdb_txn::{LockAcquire, LockManager, LockMode, LockTarget};

fn mode_strategy() -> impl Strategy<Value = LockMode> {
    prop_oneof![
        Just(LockMode::IS),
        Just(LockMode::IX),
        Just(LockMode::S),
        Just(LockMode::SIX),
        Just(LockMode::X),
    ]
}

#[derive(Debug, Clone)]
enum Op {
    Acquire { txn: u64, key: u64, mode: LockMode },
    ReleaseAll { txn: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u64..8, 0u64..6, mode_strategy())
            .prop_map(|(txn, key, mode)| Op::Acquire { txn, key, mode }),
        2 => (1u64..8).prop_map(|txn| Op::ReleaseAll { txn }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn grants_stay_compatible_and_nothing_leaks(
        ops in proptest::collection::vec(op_strategy(), 1..200)
    ) {
        let mut lm = LockManager::new();
        // Track which txns currently hold which (target, mode) — rebuilt
        // from the manager's own view via holdings().
        let mut live: std::collections::BTreeSet<u64> = Default::default();
        for op in &ops {
            match *op {
                Op::Acquire { txn, key, mode } => {
                    let t = LockTarget::Record(TableId(1), Key(key));
                    match lm.acquire(TxnId(txn), t, mode) {
                        LockAcquire::Granted => {
                            live.insert(txn);
                        }
                        LockAcquire::Waiting => {
                            live.insert(txn);
                        }
                        LockAcquire::Deadlock => {
                            // Victim aborts: everything must be releasable.
                            lm.release_all(TxnId(txn));
                            live.remove(&txn);
                        }
                    }
                }
                Op::ReleaseAll { txn } => {
                    lm.release_all(TxnId(txn));
                    live.remove(&txn);
                }
            }
            // Invariant 1: all granted holders pairwise compatible.
            for key in 0..6u64 {
                let t = LockTarget::Record(TableId(1), Key(key));
                let holders: Vec<(u64, LockMode)> = (1..8u64)
                    .filter_map(|txn| {
                        lm.held_mode(TxnId(txn), t).map(|m| (txn, m))
                    })
                    .collect();
                for (i, &(ta, ma)) in holders.iter().enumerate() {
                    for &(tb, mb) in &holders[i + 1..] {
                        prop_assert!(
                            ta == tb || ma.compatible(mb) || mb.compatible(ma),
                            "incompatible co-holders {ta}:{ma:?} vs {tb}:{mb:?} on key {key}"
                        );
                    }
                }
            }
        }
        // Invariant 2: releasing everyone empties the table.
        for txn in 1..8u64 {
            lm.release_all(TxnId(txn));
        }
        prop_assert_eq!(lm.active_targets(), 0, "lock state leaked");
    }

    #[test]
    fn self_reacquisition_never_deadlocks(
        modes in proptest::collection::vec(mode_strategy(), 1..20)
    ) {
        let mut lm = LockManager::new();
        let t = LockTarget::Record(TableId(1), Key(1));
        for m in modes {
            let r = lm.acquire(TxnId(1), t, m);
            prop_assert_eq!(r, LockAcquire::Granted, "sole txn must always get {:?}", m);
        }
        lm.release_all(TxnId(1));
        prop_assert_eq!(lm.active_targets(), 0);
    }
}
