//! # WattDB-RS replica map: per-segment leader/follower placement
//!
//! The paper's cluster keeps exactly one copy of every segment, so a node
//! loss is unrecoverable and a read hotspot can only be *moved*, never
//! fanned out. This crate adds the metadata half of the fix: an
//! epoch-versioned [`ReplicaMap`] recording, per segment, the **leader**
//! (the owning node — writes and routing authority) and a set of
//! **follower** nodes fed from the leader's WAL via the existing
//! `wattdb_wal::LogShipper` path.
//!
//! The map is pure bookkeeping — it holds no cluster state and performs no
//! I/O — so placement invariants (a follower never co-locates with its
//! leader, promotion always picks the most-caught-up follower) can be
//! property-tested exhaustively. Every mutation bumps the map's epoch; a
//! cached routing decision taken under an older epoch is stale and must be
//! re-resolved.

use std::collections::BTreeMap;

use wattdb_common::{Lsn, NodeId, SegmentId};

/// One segment's replication state: the leader plus its follower set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaSet {
    /// Owning node: serves writes, ships its log to the followers.
    pub leader: NodeId,
    /// Follower nodes holding a log-shipped copy, in attachment order.
    pub followers: Vec<NodeId>,
}

impl ReplicaSet {
    /// True if `node` holds any replica role for this segment.
    pub fn contains(&self, node: NodeId) -> bool {
        self.leader == node || self.followers.contains(&node)
    }
}

/// Epoch-versioned map from segment to its [`ReplicaSet`].
#[derive(Debug, Clone, Default)]
pub struct ReplicaMap {
    epoch: u64,
    segments: BTreeMap<SegmentId, ReplicaSet>,
}

impl ReplicaMap {
    /// Empty map at epoch zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current epoch: bumped by every mutation. Routing decisions cached
    /// under an older epoch are stale.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of segments with replication state.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when no segment has replication state.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The segment's replica set, if tracked.
    pub fn get(&self, seg: SegmentId) -> Option<&ReplicaSet> {
        self.segments.get(&seg)
    }

    /// The segment's leader, if tracked.
    pub fn leader_of(&self, seg: SegmentId) -> Option<NodeId> {
        self.segments.get(&seg).map(|r| r.leader)
    }

    /// The segment's followers (empty when untracked).
    pub fn followers_of(&self, seg: SegmentId) -> &[NodeId] {
        self.segments
            .get(&seg)
            .map(|r| r.followers.as_slice())
            .unwrap_or(&[])
    }

    /// Iterate over all tracked segments in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SegmentId, &ReplicaSet)> {
        self.segments.iter().map(|(s, r)| (*s, r))
    }

    /// Install (or replace) a segment's replica set. A follower equal to
    /// the leader is a placement bug and panics.
    pub fn set(&mut self, seg: SegmentId, leader: NodeId, followers: Vec<NodeId>) {
        assert!(
            !followers.contains(&leader),
            "{seg}: follower set co-locates with leader {leader}"
        );
        self.epoch += 1;
        self.segments.insert(seg, ReplicaSet { leader, followers });
    }

    /// Record that the segment's leadership moved (a completed migration):
    /// the replica set follows ownership. If the new leader was a
    /// follower, it leaves the follower set.
    pub fn set_leader(&mut self, seg: SegmentId, leader: NodeId) {
        if let Some(r) = self.segments.get_mut(&seg) {
            if r.leader == leader {
                return;
            }
            r.leader = leader;
            r.followers.retain(|&f| f != leader);
            self.epoch += 1;
        }
    }

    /// Add a follower to a tracked segment (no-op when already present).
    pub fn add_follower(&mut self, seg: SegmentId, node: NodeId) {
        if let Some(r) = self.segments.get_mut(&seg) {
            assert!(r.leader != node, "{seg}: follower {node} is the leader");
            if !r.followers.contains(&node) {
                r.followers.push(node);
                self.epoch += 1;
            }
        }
    }

    /// Remove a follower from a tracked segment.
    pub fn remove_follower(&mut self, seg: SegmentId, node: NodeId) {
        if let Some(r) = self.segments.get_mut(&seg) {
            let before = r.followers.len();
            r.followers.retain(|&f| f != node);
            if r.followers.len() != before {
                self.epoch += 1;
            }
        }
    }

    /// Stop tracking a segment (dropped table / merged segment).
    pub fn remove(&mut self, seg: SegmentId) {
        if self.segments.remove(&seg).is_some() {
            self.epoch += 1;
        }
    }

    /// Promote `node` to leader of `seg` after the old leader failed: the
    /// promotee leaves the follower set; the dead ex-leader is *not*
    /// demoted to follower — it is gone.
    pub fn promote(&mut self, seg: SegmentId, node: NodeId) {
        let r = self
            .segments
            .get_mut(&seg)
            .expect("promoting untracked segment");
        assert!(
            r.followers.contains(&node),
            "{seg}: promotee {node} is not a follower"
        );
        r.followers.retain(|&f| f != node);
        r.leader = node;
        self.epoch += 1;
    }

    /// Segments whose *leader* is `node` — the segments orphaned when the
    /// node fails, in id order.
    pub fn led_by(&self, node: NodeId) -> Vec<SegmentId> {
        self.segments
            .iter()
            .filter(|(_, r)| r.leader == node)
            .map(|(s, _)| *s)
            .collect()
    }

    /// Segments for which `node` is a follower, in id order.
    pub fn followed_by(&self, node: NodeId) -> Vec<SegmentId> {
        self.segments
            .iter()
            .filter(|(_, r)| r.followers.contains(&node))
            .map(|(s, _)| *s)
            .collect()
    }

    /// True if `node` appears anywhere in the map (leader or follower).
    pub fn references(&self, node: NodeId) -> bool {
        self.segments.values().any(|r| r.contains(node))
    }

    /// Erase a failed node from every follower set (its led segments must
    /// be promoted first, via [`ReplicaMap::promote`]). Returns the
    /// segments that lost a follower — the re-replication work list.
    pub fn drop_follower_node(&mut self, node: NodeId) -> Vec<SegmentId> {
        let mut lost = Vec::new();
        for (&seg, r) in self.segments.iter_mut() {
            let before = r.followers.len();
            r.followers.retain(|&f| f != node);
            if r.followers.len() != before {
                lost.push(seg);
            }
        }
        if !lost.is_empty() {
            self.epoch += 1;
        }
        lost
    }

    /// Segments whose follower count is below `factor`, with their
    /// deficit, in id order — the re-replication backlog.
    pub fn under_replicated(&self, factor: usize) -> Vec<(SegmentId, usize)> {
        self.segments
            .iter()
            .filter(|(_, r)| r.followers.len() < factor)
            .map(|(s, r)| (*s, factor - r.followers.len()))
            .collect()
    }
}

/// Pick the promotion winner among `candidates` — `(follower,
/// acknowledged LSN)` pairs read off the dead leader's shipping cursors:
/// the **most-caught-up** follower wins (highest acked LSN), ties broken
/// by lowest node id for determinism. `None` when there is no candidate.
pub fn pick_promotion(candidates: &[(NodeId, Lsn)]) -> Option<NodeId> {
    candidates
        .iter()
        .copied()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        .map(|(n, _)| n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(n: u64) -> SegmentId {
        SegmentId(n)
    }

    #[test]
    fn set_and_lookup() {
        let mut m = ReplicaMap::new();
        assert!(m.is_empty());
        m.set(seg(1), NodeId(1), vec![NodeId(2), NodeId(3)]);
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.leader_of(seg(1)), Some(NodeId(1)));
        assert_eq!(m.followers_of(seg(1)), &[NodeId(2), NodeId(3)]);
        assert_eq!(m.followers_of(seg(9)), &[] as &[NodeId]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "co-locates")]
    fn follower_never_co_locates_with_leader() {
        let mut m = ReplicaMap::new();
        m.set(seg(1), NodeId(1), vec![NodeId(1)]);
    }

    #[test]
    fn every_mutation_bumps_the_epoch() {
        let mut m = ReplicaMap::new();
        m.set(seg(1), NodeId(1), vec![NodeId(2)]);
        let e = m.epoch();
        m.add_follower(seg(1), NodeId(3));
        assert_eq!(m.epoch(), e + 1);
        m.add_follower(seg(1), NodeId(3)); // already present: no change
        assert_eq!(m.epoch(), e + 1);
        m.remove_follower(seg(1), NodeId(3));
        assert_eq!(m.epoch(), e + 2);
        m.remove_follower(seg(1), NodeId(3)); // absent: no change
        assert_eq!(m.epoch(), e + 2);
        m.set_leader(seg(1), NodeId(1)); // unchanged leader: no change
        assert_eq!(m.epoch(), e + 2);
        m.remove(seg(1));
        assert_eq!(m.epoch(), e + 3);
    }

    #[test]
    fn leadership_follows_migration() {
        let mut m = ReplicaMap::new();
        m.set(seg(1), NodeId(1), vec![NodeId(2), NodeId(3)]);
        // The segment migrates onto one of its followers: the follower
        // becomes leader and leaves the follower set.
        m.set_leader(seg(1), NodeId(2));
        assert_eq!(m.leader_of(seg(1)), Some(NodeId(2)));
        assert_eq!(m.followers_of(seg(1)), &[NodeId(3)]);
    }

    #[test]
    fn promotion_removes_the_dead_leader() {
        let mut m = ReplicaMap::new();
        m.set(seg(1), NodeId(1), vec![NodeId(2), NodeId(3)]);
        m.promote(seg(1), NodeId(3));
        assert_eq!(m.leader_of(seg(1)), Some(NodeId(3)));
        assert_eq!(m.followers_of(seg(1)), &[NodeId(2)]);
        assert!(
            !m.get(seg(1)).unwrap().contains(NodeId(1)),
            "dead ex-leader must not linger in the set"
        );
    }

    #[test]
    fn node_loss_worklists() {
        let mut m = ReplicaMap::new();
        m.set(seg(1), NodeId(1), vec![NodeId(2)]);
        m.set(seg(2), NodeId(1), vec![NodeId(3)]);
        m.set(seg(3), NodeId(2), vec![NodeId(1)]);
        assert_eq!(m.led_by(NodeId(1)), vec![seg(1), seg(2)]);
        assert_eq!(m.followed_by(NodeId(1)), vec![seg(3)]);
        assert!(m.references(NodeId(1)));
        m.promote(seg(1), NodeId(2));
        m.promote(seg(2), NodeId(3));
        let lost = m.drop_follower_node(NodeId(1));
        assert_eq!(lost, vec![seg(3)]);
        assert!(!m.references(NodeId(1)));
        // Factor 1 restored everywhere except the segment that lost its
        // follower.
        assert_eq!(
            m.under_replicated(1),
            vec![(seg(1), 1), (seg(2), 1), (seg(3), 1)]
        );
    }

    #[test]
    fn promotion_picks_max_lsn_then_lowest_id() {
        assert_eq!(pick_promotion(&[]), None);
        assert_eq!(
            pick_promotion(&[(NodeId(2), Lsn(5)), (NodeId(3), Lsn(9))]),
            Some(NodeId(3))
        );
        assert_eq!(
            pick_promotion(&[
                (NodeId(4), Lsn(7)),
                (NodeId(2), Lsn(7)),
                (NodeId(3), Lsn(7))
            ]),
            Some(NodeId(2))
        );
    }
}
