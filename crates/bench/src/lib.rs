//! Experiment harnesses regenerating every figure of the paper.
//!
//! Each `cargo bench -p wattdb-bench --bench figN_*` target prints the
//! same rows/series the corresponding figure reports. Absolute numbers come
//! from the simulated substrate; the comparisons —
//! which scheme wins, where the crossovers fall — are the reproduction
//! target. EXPERIMENTS.md records paper-vs-measured for each figure.

use std::cell::RefCell;
use std::rc::Rc;

use wattdb_common::{CostParams, NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;
use wattdb_core::executor;
use wattdb_core::metrics::Phase;
use wattdb_core::replay::{replay_trace, SortMemoryBroker};
use wattdb_query::{execute, ExecConfig, PlanNode, SyntheticTable};
use wattdb_sim::CostCategory;
use wattdb_tpcc::TxnProfile;
use wattdb_txn::CcMode;

/// One row of a Fig. 6/8-style time series.
#[derive(Debug, Clone, Copy)]
pub struct SeriesRow {
    /// Seconds relative to the rebalance trigger.
    pub t_rel: f64,
    /// Queries per second.
    pub qps: f64,
    /// Mean response time in ms.
    pub resp_ms: f64,
    /// Mean cluster power in W.
    pub watts: f64,
    /// Energy per query in J.
    pub jpq: f64,
}

/// Configuration for the scheme-comparison experiments (Figs. 6–8).
#[derive(Debug, Clone, Copy)]
pub struct SchemeExperiment {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Attach helper nodes during the rebalance (Fig. 8).
    pub helpers: bool,
    /// Warm-up before the rebalance trigger.
    pub warmup: SimDuration,
    /// Observation window after the trigger.
    pub window: SimDuration,
    /// OLTP clients.
    pub clients: u32,
    /// Mean think time.
    pub think: SimDuration,
    /// TPC-C warehouses.
    pub warehouses: u32,
    /// Cardinality density.
    pub density: f64,
    /// Bulk-I/O scale (see `WattDbBuilder::io_scale`).
    pub io_scale: u64,
    /// Multiplier on per-operation CPU costs: models the full SQL-layer
    /// work per record op on the wimpy Atom cores, putting the two initial
    /// nodes near saturation as in the paper's runs.
    pub cpu_scale: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for SchemeExperiment {
    fn default() -> Self {
        Self {
            scheme: Scheme::Physiological,
            helpers: false,
            warmup: SimDuration::from_secs(40),
            window: SimDuration::from_secs(180),
            clients: 80,
            think: SimDuration::from_millis(50),
            warehouses: 8,
            density: 0.05,
            io_scale: 800,
            cpu_scale: 40,
            seed: 42,
        }
    }
}

/// Configuration of the planner shootout: a skewed (hot-range) TPC-C run
/// where the autopilot rebalances with the planner under test.
#[derive(Debug, Clone, Copy)]
pub struct PlannerShootout {
    /// Planner the autopilot uses.
    pub planner: wattdb_core::Planner,
    /// OLTP clients.
    pub clients: u32,
    /// Mean client think time. Long enough that throughput stays
    /// client-limited after the rebalance, so post-rebalance CPU compares
    /// balance rather than the extra work a balanced cluster completes.
    pub think: SimDuration,
    /// Percentage of Payment (update) transactions in the mix; the rest
    /// are OrderStatus reads. This stationary mix keeps the hotspot on
    /// fixed warehouse/district/customer ranges, where access history
    /// predicts future load (insert-heavy mixes have a *moving* hotspot —
    /// see the module docs of `wattdb_planner`).
    pub update_pct: u32,
    /// Fraction of clients homed on the hot range.
    pub hot_fraction: f64,
    /// Warehouses forming the hot range.
    pub hot_warehouses: u32,
    /// TPC-C warehouses.
    pub warehouses: u32,
    /// Bulk-I/O scale.
    pub io_scale: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for PlannerShootout {
    fn default() -> Self {
        Self {
            planner: wattdb_core::Planner::HeatAware,
            clients: 80,
            think: SimDuration::from_millis(10),
            update_pct: 20,
            hot_fraction: 0.85,
            hot_warehouses: 1,
            warehouses: 4,
            io_scale: 10,
            seed: 3,
        }
    }
}

/// Outcome of one shootout run.
#[derive(Debug, Clone, Copy)]
pub struct PlannerShootoutRow {
    /// Planner used.
    pub planner: wattdb_core::Planner,
    /// Did a rebalance complete in-window?
    pub rebalanced: bool,
    /// Bytes the rebalance shipped.
    pub bytes_moved: u64,
    /// Segments relocated.
    pub segments_moved: u64,
    /// Heat the plan intended to relocate.
    pub heat_planned: f64,
    /// Heat actually relocated.
    pub heat_moved: f64,
    /// Max active-node CPU over a settle window after the rebalance.
    pub post_max_cpu: f64,
    /// Hottest node's share of total heat after the rebalance.
    pub post_max_heat_share: f64,
}

/// Run the planner shootout: one data node, skewed clients (the hot range
/// sits at the *bottom* of the key space, the worst case for the fraction
/// heuristic), autopilot engaged with the planner under test, one standby
/// target.
pub fn run_planner_shootout(cfg: PlannerShootout) -> PlannerShootoutRow {
    let mut db = WattDb::builder()
        .nodes(2)
        .scheme(Scheme::Physiological)
        .warehouses(cfg.warehouses)
        .density(0.02)
        .segment_pages(16)
        .io_scale(cfg.io_scale)
        .costs(scaled_costs(40))
        .seed(cfg.seed)
        .initial_data_nodes(&[NodeId(0)])
        .planner(cfg.planner)
        .policy(wattdb_core::PolicyConfig {
            cpu_high: 0.8,
            cpu_low: 0.02, // no scale-in during the measurement
            patience: 2,
            move_fraction: 0.5,
            planner: cfg.planner,
            heat_tolerance: 0.1,
            skew_threshold: 0.0, // CPU-triggered only: isolate the planner
            ..Default::default()
        })
        .monitoring(SimDuration::from_secs(5))
        .autopilot(true)
        .build();
    db.with_cluster_mut(|c| {
        c.auto_resubmit = false;
        c.spawn_clients_skewed(
            cfg.clients,
            wattdb_tpcc::ClientConfig {
                think_time: cfg.think,
                ..Default::default()
            },
            cfg.hot_fraction,
            cfg.hot_warehouses,
        );
    });
    db.with_runtime(|cl, sim| start_mixed_clients(cl, sim, cfg.update_pct));
    settle_and_measure(&mut db, cfg.planner, 80, SimDuration::from_secs(30))
}

/// The shared tail of every shootout phase: run until the autopilot's
/// rebalance completes (bounded poll), settle, then measure the
/// post-rebalance max node CPU and heat share over a fresh status
/// window.
fn settle_and_measure(
    db: &mut WattDb,
    planner: wattdb_core::Planner,
    poll_windows: u32,
    settle: SimDuration,
) -> PlannerShootoutRow {
    let mut rebalanced = false;
    for _ in 0..poll_windows {
        db.run_for(SimDuration::from_secs(5));
        if db.last_rebalance().is_some() && !db.rebalancing() {
            rebalanced = true;
            break;
        }
    }
    let _ = db.status();
    db.run_for(settle);
    let status = db.status();
    let post_max_cpu = status
        .nodes
        .iter()
        .filter(|n| n.state == wattdb_energy::NodeState::Active)
        .map(|n| n.cpu)
        .fold(0.0, f64::max);
    let total_heat: f64 = status.nodes.iter().map(|n| n.heat).sum();
    let post_max_heat_share = if total_heat > 0.0 {
        status.nodes.iter().map(|n| n.heat).fold(0.0, f64::max) / total_heat
    } else {
        0.0
    };
    let report = db.last_rebalance();
    PlannerShootoutRow {
        planner,
        rebalanced,
        bytes_moved: report.map(|r| r.bytes_moved).unwrap_or(0),
        segments_moved: report.map(|r| r.segments_moved).unwrap_or(0),
        heat_planned: report.map(|r| r.heat_planned).unwrap_or(0.0),
        heat_moved: report.map(|r| r.heat_moved).unwrap_or(0.0),
        post_max_cpu,
        post_max_heat_share,
    }
}

/// Configuration of the advancing-hotspot (drift) shootout: the hot
/// client population re-homes to the next warehouse on a fixed cadence,
/// modelling TPC-C's insert-advancing ORDER/ORDER-LINE/NEW-ORDER front.
/// The autopilot rebalances with the heat-aware planner either from
/// historical heat (`horizon == 0`) or from drift-projected heat.
#[derive(Debug, Clone, Copy)]
pub struct DriftShootout {
    /// Drift projection horizon the planner plans against (zero =
    /// historical heat).
    pub horizon: SimDuration,
    /// OLTP clients.
    pub clients: u32,
    /// Mean client think time.
    pub think: SimDuration,
    /// Percentage of Payment (update) transactions; the rest OrderStatus.
    pub update_pct: u32,
    /// Fraction of clients following the advancing hot warehouse.
    pub hot_fraction: f64,
    /// TPC-C warehouses (the hot front advances through them).
    pub warehouses: u32,
    /// Warm-up on the first warehouse before the front's first advance —
    /// the access history the historical planner will chase.
    pub warm: SimDuration,
    /// Dwell per warehouse after the first advance.
    pub dwell: SimDuration,
    /// Bulk-I/O scale.
    pub io_scale: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for DriftShootout {
    fn default() -> Self {
        Self {
            horizon: SimDuration::from_secs(15),
            clients: 80,
            think: SimDuration::from_millis(10),
            update_pct: 20,
            hot_fraction: 0.85,
            warehouses: 8,
            warm: SimDuration::from_secs(20),
            dwell: SimDuration::from_secs(60),
            io_scale: 10,
            seed: 3,
        }
    }
}

/// Run the drift shootout: one data node, an advancing hot warehouse,
/// the heat-aware planner fed historical or drift-projected heat, one
/// standby target.
///
/// Sequencing matters: the cluster first runs monitor-only (the CPU
/// ceiling out of reach) while warehouse 0 accumulates history; then the
/// front advances to warehouse 1 and, a couple of windows later, the real
/// thresholds are engaged. The scale-out plan therefore forms exactly in
/// the regime the ROADMAP describes — history pointing at a warehouse the
/// front has already left — and the post-rebalance window is measured
/// inside the new warehouse's dwell. Reports the same row as the
/// stationary shootout so both phases print side by side.
pub fn run_drift_shootout(cfg: DriftShootout) -> PlannerShootoutRow {
    let mut db = WattDb::builder()
        .nodes(2)
        .scheme(Scheme::Physiological)
        .warehouses(cfg.warehouses)
        .density(0.02)
        .segment_pages(16)
        .io_scale(cfg.io_scale)
        .costs(scaled_costs(40))
        .seed(cfg.seed)
        .initial_data_nodes(&[NodeId(0)])
        .policy(wattdb_core::PolicyConfig {
            cpu_high: 1.1, // monitor-only during warm-up: drift observes, nothing fires
            cpu_low: 0.0,
            skew_threshold: 0.0,
            ..Default::default()
        })
        .drift(wattdb_common::DriftConfig {
            velocity_half_life: SimDuration::from_secs(5),
            horizon: cfg.horizon,
        })
        .monitoring(SimDuration::from_secs(5))
        .autopilot(true)
        .build();
    let hot_n = (cfg.clients as f64 * cfg.hot_fraction.clamp(0.0, 1.0)).round() as usize;
    db.with_cluster_mut(|c| {
        c.auto_resubmit = false;
        c.spawn_clients_skewed(
            cfg.clients,
            wattdb_tpcc::ClientConfig {
                think_time: cfg.think,
                ..Default::default()
            },
            cfg.hot_fraction,
            1,
        );
    });
    db.with_runtime(|cl, sim| start_mixed_clients(cl, sim, cfg.update_pct));
    // Warm up on warehouse 0, then advance the front to warehouse 1 (and
    // keep it advancing every `dwell` thereafter).
    db.run_for(cfg.warm);
    let rehome = move |c: &mut wattdb_core::Cluster, front: u32| {
        let n = hot_n.min(c.clients.len());
        for i in 0..n {
            c.clients[i].home_warehouse = front;
        }
    };
    db.with_cluster_mut(|c| rehome(c, 1));
    db.with_runtime(|cl, sim| {
        let handle = cl.clone();
        let warehouses = cfg.warehouses;
        let mut front = 1u32;
        wattdb_sim::Repeater::every(sim, cfg.dwell, move |_| {
            front = (front + 1) % warehouses;
            rehome(&mut handle.borrow_mut(), front);
            true
        });
    });
    // Two windows on the new warehouse: history still favours warehouse
    // 0, velocity favours warehouse 1. Now arm the real thresholds.
    db.run_for(SimDuration::from_secs(10));
    let pilot_cfg = db.autopilot().expect("engaged").config();
    db.engage_autopilot(wattdb_core::AutoPilotConfig {
        policy: wattdb_core::PolicyConfig {
            cpu_high: 0.8,
            cpu_low: 0.02, // no scale-in during the measurement
            patience: 2,
            skew_threshold: 0.0, // CPU-triggered only: isolate the planner input
            ..Default::default()
        },
        period: pilot_cfg.period,
    });
    // The settle window stays inside the current warehouse's dwell.
    settle_and_measure(
        &mut db,
        wattdb_core::Planner::HeatAware,
        40,
        SimDuration::from_secs(25),
    )
}

fn scaled_costs(scale: u64) -> CostParams {
    let mut c = CostParams::default();
    c.index_node_visit = c.index_node_visit * scale;
    c.record_read = c.record_read * scale;
    c.record_write = c.record_write * scale;
    c.log_append = c.log_append * scale;
    c.buffer_hit = c.buffer_hit * scale;
    c
}

/// [`scaled_costs`] with an independent multiplier on the analytic
/// operator costs: the mixed-operator shootout models light SQL point
/// operations sharing a node with genuinely heavy scan/aggregation
/// queries. Both heat signals in the comparison run with the *same*
/// calibration — only the signal differs.
fn mixed_costs(point_scale: u64, analytic_scale: u64) -> CostParams {
    let mut c = scaled_costs(point_scale);
    c.scan_per_record = c.scan_per_record * analytic_scale;
    c.agg_per_record = c.agg_per_record * analytic_scale;
    c.project_per_record = c.project_per_record * analytic_scale;
    c.sort_per_record_level = c.sort_per_record_level * analytic_scale;
    c
}

/// Configuration of the mixed-operator shootout: point-read-hot clients on
/// warehouse 0 share a node with periodic scan+aggregation queries over a
/// different warehouse range. Count-based heat sees only access counts
/// (the point segments), cost-based heat sees the *work* (the scan
/// segments); the autopilot scales out with whichever signal is in force.
#[derive(Debug, Clone, Copy)]
pub struct MixedShootout {
    /// Heat signal under test: cost-based (`true`) or count-based.
    pub cost_based: bool,
    /// OLTP clients (all homed on the hot warehouse).
    pub clients: u32,
    /// Mean client think time.
    pub think: SimDuration,
    /// Percentage of Payment (update) transactions; the rest OrderStatus.
    pub update_pct: u32,
    /// First warehouse of the scanned range (default: warehouse 2 only —
    /// half-open `scan_lo..scan_hi`). The scanned table is ORDER-LINE:
    /// the most rows per warehouse (most operator CPU) at the smallest
    /// row width (fewest bytes to ship) — maximum contrast between
    /// access-count heat and cost heat.
    pub scan_lo: u32,
    /// One past the last scanned warehouse.
    pub scan_hi: u32,
    /// Scan dispatch cadence.
    pub scan_period: SimDuration,
    /// TPC-C warehouses.
    pub warehouses: u32,
    /// Bulk-I/O scale.
    pub io_scale: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for MixedShootout {
    fn default() -> Self {
        Self {
            cost_based: true,
            clients: 32,
            think: SimDuration::from_millis(10),
            update_pct: 20,
            scan_lo: 2,
            scan_hi: 3,
            scan_period: SimDuration::from_secs(3),
            warehouses: 4,
            io_scale: 10,
            seed: 3,
        }
    }
}

/// Run the mixed-operator shootout: one data node carrying both the
/// point-read hotspot (warehouse 0) and the scanned range, one standby
/// target, autopilot scale-out on the CPU ceiling. Scans re-resolve each
/// segment's storage node at dispatch, so whichever segments the planner
/// ships take their scan CPU with them.
pub fn run_mixed_shootout(cfg: MixedShootout) -> PlannerShootoutRow {
    let mut builder = WattDb::builder()
        .nodes(2)
        .scheme(Scheme::Physiological)
        .warehouses(cfg.warehouses)
        .density(0.02)
        .segment_pages(16)
        .io_scale(cfg.io_scale)
        .costs(mixed_costs(8, 40))
        .seed(cfg.seed)
        .initial_data_nodes(&[NodeId(0)])
        .policy(wattdb_core::PolicyConfig {
            cpu_high: 0.8,
            cpu_low: 0.02, // no scale-in during the measurement
            patience: 2,
            skew_threshold: 0.0, // CPU-triggered only: isolate the heat signal
            ..Default::default()
        })
        .monitoring(SimDuration::from_secs(5))
        .autopilot(true);
    if !cfg.cost_based {
        builder = builder.cost_model(None);
    }
    let mut db = builder.build();
    db.with_cluster_mut(|c| {
        c.auto_resubmit = false;
        c.spawn_clients_skewed(
            cfg.clients,
            wattdb_tpcc::ClientConfig {
                think_time: cfg.think,
                ..Default::default()
            },
            1.0,
            1,
        );
    });
    db.with_runtime(|cl, sim| start_mixed_clients(cl, sim, cfg.update_pct));
    // Periodic scan+aggregation over the scanned warehouse range.
    let scan_table = wattdb_tpcc::TpccTable::OrderLine.table_id();
    let scan_range = wattdb_tpcc::warehouse_range(cfg.scan_lo, cfg.scan_hi);
    db.with_runtime(|cl, sim| {
        let handle = cl.clone();
        wattdb_sim::Repeater::every(sim, cfg.scan_period, move |sim| {
            wattdb_core::scan::submit_scan(
                &handle,
                sim,
                scan_table,
                scan_range,
                Some(wattdb_query::AggFunc::Sum),
            );
            true
        });
    });
    settle_and_measure(
        &mut db,
        wattdb_core::Planner::HeatAware,
        80,
        SimDuration::from_secs(30),
    )
}

/// Configuration of the transient-skew shootout: every dwell the hot
/// client population re-homes to a *fresh* warehouse on the opposite
/// node (0 → 4 → 1 → 5 → …), so the heat-skew trigger keeps firing while
/// which node is hot alternates and the hot range never repeats — the
/// regime where shipping segments chases a hotspot that has moved on
/// before the copy pays off. Compared: the policy answering every skew
/// fire with a segment rebalance (`helpers: false`, helper escalation
/// disabled) vs. the helpers-first escalation (`helpers: true`): Fig. 8
/// helpers attach to the hot source and detach on subsidence, shipping
/// nothing.
#[derive(Debug, Clone, Copy)]
pub struct TransientShootout {
    /// Helper escalation on (`escalation_fires: 1`) or off (every skew
    /// fire rebalances).
    pub helpers: bool,
    /// OLTP clients.
    pub clients: u32,
    /// Mean client think time.
    pub think: SimDuration,
    /// Percentage of Payment (update) transactions; the rest OrderStatus.
    pub update_pct: u32,
    /// Fraction of clients following the flapping hot warehouse.
    pub hot_fraction: f64,
    /// TPC-C warehouses, split across the two data nodes.
    pub warehouses: u32,
    /// Warm-up on the first hot warehouse before the flap starts.
    pub warm: SimDuration,
    /// Dwell per side of the flap.
    pub dwell: SimDuration,
    /// Flips to run (the last dwell is the measurement window).
    pub flips: u32,
    /// Bulk-I/O scale.
    pub io_scale: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for TransientShootout {
    fn default() -> Self {
        Self {
            helpers: true,
            clients: 64,
            think: SimDuration::from_millis(10),
            update_pct: 20,
            hot_fraction: 0.95,
            warehouses: 8,
            warm: SimDuration::from_secs(25),
            dwell: SimDuration::from_secs(40),
            flips: 6,
            io_scale: 10,
            seed: 3,
        }
    }
}

/// Outcome of one transient-shootout run: the standard row plus the
/// helper-event counts the bench asserts on.
#[derive(Debug, Clone, Copy)]
pub struct TransientShootoutRow {
    /// The standard shootout measurements (`bytes_moved` sums *every*
    /// rebalance of the run; `rebalanced` = any completed).
    pub row: PlannerShootoutRow,
    /// Applied helper attachments over the run.
    pub helper_attaches: usize,
    /// Applied helper detachments over the run.
    pub helper_detaches: usize,
}

/// Run the transient-skew shootout: two data nodes, the hot population
/// flapping between a warehouse on each, skew-only policy (the CPU
/// bounds out of reach), with or without helper escalation. Measures the
/// max active-node CPU over the final dwell and the total bytes every
/// rebalance of the run shipped.
pub fn run_transient_shootout(cfg: TransientShootout) -> TransientShootoutRow {
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(cfg.warehouses)
        .density(0.02)
        .segment_pages(16)
        .io_scale(cfg.io_scale)
        .costs(scaled_costs(40))
        .seed(cfg.seed)
        .initial_data_nodes(&[NodeId(0), NodeId(1)])
        // A short heat half-life keeps the flap sharp: the side the hot
        // population just left cools before the next monitoring windows,
        // so the skew ratio genuinely alternates instead of smearing
        // toward balance.
        .heat_tracking(wattdb_common::HeatConfig {
            half_life: SimDuration::from_secs(15),
            ..Default::default()
        })
        .policy(wattdb_core::PolicyConfig {
            cpu_high: 1.1, // skew-only: the CPU bounds stay out of reach
            cpu_low: 0.0,
            patience: 2,
            skew_threshold: 1.5,
            skew_min_heat: 1.0,
            skew_cooldown: 2,
            helper: wattdb_common::HelperPolicyConfig {
                escalation_fires: u32::from(cfg.helpers),
                max_helpers: 2,
                min_net_heat: 0.0,
            },
            ..Default::default()
        })
        .monitoring(SimDuration::from_secs(5))
        .autopilot(true)
        .build();
    let hot_n = (cfg.clients as f64 * cfg.hot_fraction.clamp(0.0, 1.0)).round() as usize;
    db.with_cluster_mut(|c| {
        c.auto_resubmit = false;
        c.spawn_clients_skewed(
            cfg.clients,
            wattdb_tpcc::ClientConfig {
                think_time: cfg.think,
                ..Default::default()
            },
            cfg.hot_fraction,
            1,
        );
    });
    db.with_runtime(|cl, sim| start_mixed_clients(cl, sim, cfg.update_pct));
    db.run_for(cfg.warm);
    // The advancing flap: each dwell the hot population re-homes to a
    // fresh warehouse on the opposite node — 0, then half, then 1, then
    // half+1, … — so the hot node alternates and no hot range repeats.
    let half = cfg.warehouses.div_ceil(2);
    let rehome = move |c: &mut wattdb_core::Cluster, wh: u32| {
        let n = hot_n.min(c.clients.len());
        for i in 0..n {
            c.clients[i].home_warehouse = wh;
        }
    };
    db.with_runtime(|cl, sim| {
        let handle = cl.clone();
        let warehouses = cfg.warehouses;
        let mut step = 0u32;
        wattdb_sim::Repeater::every(sim, cfg.dwell, move |_| {
            step += 1;
            let wh = if step % 2 == 1 {
                half + step / 2
            } else {
                step / 2
            };
            rehome(&mut handle.borrow_mut(), wh % warehouses);
            true
        });
    });
    let flips = cfg.flips.max(2);
    db.run_for(cfg.dwell * (flips as u64 - 1));
    // Measurement: the final dwell on a fresh status window.
    let _ = db.status();
    db.run_for(cfg.dwell);
    let status = db.status();
    let post_max_cpu = status
        .nodes
        .iter()
        .filter(|n| n.state == wattdb_energy::NodeState::Active)
        .map(|n| n.cpu)
        .fold(0.0, f64::max);
    let total_heat: f64 = status.nodes.iter().map(|n| n.heat).sum();
    let post_max_heat_share = if total_heat > 0.0 {
        status.nodes.iter().map(|n| n.heat).fold(0.0, f64::max) / total_heat
    } else {
        0.0
    };
    let history = db.rebalance_history();
    let events = db.events();
    let attaches = events
        .iter()
        .filter(|e| {
            matches!(e.decision, wattdb_core::Decision::AttachHelpers { .. })
                && e.outcome == wattdb_core::Outcome::Applied
        })
        .count();
    let detaches = events
        .iter()
        .filter(|e| {
            matches!(e.decision, wattdb_core::Decision::DetachHelpers { .. })
                && e.outcome == wattdb_core::Outcome::Applied
        })
        .count();
    TransientShootoutRow {
        row: PlannerShootoutRow {
            planner: wattdb_core::Planner::HeatAware,
            rebalanced: !history.is_empty(),
            bytes_moved: history.iter().map(|r| r.bytes_moved).sum(),
            segments_moved: history.iter().map(|r| r.segments_moved).sum(),
            heat_planned: history
                .iter()
                .map(|r| r.heat_planned)
                .fold(0.0, |a, b| a + b),
            heat_moved: history.iter().map(|r| r.heat_moved).fold(0.0, |a, b| a + b),
            post_max_cpu,
            post_max_heat_share,
        },
        helper_attaches: attaches,
        helper_detaches: detaches,
    }
}

/// Configuration of the replication shootout's read-scaling phase: a
/// read-heavy population hammering one warehouse on the first of two
/// data nodes, served with (`factor: 1`) or without (`factor: 0`)
/// follower replicas. With replicas, the executor's heat-aware read
/// routing rotates eligible reads across the leader and its caught-up
/// follower, splitting the hot node's CPU; the wire cost is bounded by
/// the WAL itself (each flushed record ships at most once per follower).
#[derive(Debug, Clone, Copy)]
pub struct FailoverShootout {
    /// Replication factor (0 = baseline, no replication subsystem).
    pub factor: usize,
    /// OLTP clients.
    pub clients: u32,
    /// Mean client think time.
    pub think: SimDuration,
    /// Percentage of Payment (update) transactions; the rest OrderStatus
    /// reads — read-heavy, the regime follower read scaling targets.
    pub update_pct: u32,
    /// Fraction of clients homed on the hot warehouse.
    pub hot_fraction: f64,
    /// TPC-C warehouses, split across the two data nodes.
    pub warehouses: u32,
    /// Warm-up before the measurement window.
    pub warm: SimDuration,
    /// Measurement window (max active-node CPU on a fresh status probe).
    pub measure: SimDuration,
    /// Bulk-I/O scale.
    pub io_scale: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for FailoverShootout {
    fn default() -> Self {
        Self {
            factor: 1,
            // Hot but unsaturated: the baseline's hot node must sit below
            // 100 % CPU, or the fan-out's split hides inside the clip.
            clients: 16,
            think: SimDuration::from_millis(60),
            update_pct: 10,
            hot_fraction: 0.9,
            warehouses: 4,
            warm: SimDuration::from_secs(30),
            measure: SimDuration::from_secs(60),
            io_scale: 10,
            seed: 3,
        }
    }
}

/// Outcome of one read-scaling run: the standard row (its `bytes_moved`
/// is the replica WAL shipped) plus the replication counters the bench
/// gates on.
#[derive(Debug, Clone, Copy)]
pub struct FailoverShootoutRow {
    /// Standard shootout measurements.
    pub row: PlannerShootoutRow,
    /// Reads served by follower replicas.
    pub replica_reads: u64,
    /// WAL bytes shipped to followers over the run.
    pub replica_shipped_bytes: u64,
    /// WAL bytes the leaders flushed over the run — the shipping bound.
    pub wal_flushed_bytes: u64,
    /// Transactions completed.
    pub completed: u64,
}

/// Run the read-scaling phase: two data nodes, a hot warehouse on the
/// first, no autopilot (nothing rebalances — the comparison isolates
/// what read fan-out alone buys).
pub fn run_failover_shootout(cfg: FailoverShootout) -> FailoverShootoutRow {
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(cfg.warehouses)
        .density(0.02)
        .segment_pages(16)
        .io_scale(cfg.io_scale)
        .costs(scaled_costs(40))
        .seed(cfg.seed)
        .initial_data_nodes(&[NodeId(0), NodeId(1)])
        .replication(cfg.factor)
        .build();
    db.with_cluster_mut(|c| {
        c.auto_resubmit = false;
        c.spawn_clients_skewed(
            cfg.clients,
            wattdb_tpcc::ClientConfig {
                think_time: cfg.think,
                ..Default::default()
            },
            cfg.hot_fraction,
            1,
        );
    });
    db.with_runtime(|cl, sim| start_mixed_clients(cl, sim, cfg.update_pct));
    db.run_for(cfg.warm);
    // Measurement on a fresh status window.
    let _ = db.status();
    db.run_for(cfg.measure);
    let status = db.status();
    let post_max_cpu = status
        .nodes
        .iter()
        .filter(|n| n.state == wattdb_energy::NodeState::Active)
        .map(|n| n.cpu)
        .fold(0.0, f64::max);
    let total_heat: f64 = status.nodes.iter().map(|n| n.heat).sum();
    let post_max_heat_share = if total_heat > 0.0 {
        status.nodes.iter().map(|n| n.heat).fold(0.0, f64::max) / total_heat
    } else {
        0.0
    };
    FailoverShootoutRow {
        row: PlannerShootoutRow {
            planner: wattdb_core::Planner::HeatAware,
            rebalanced: false,
            bytes_moved: db.replica_shipped_bytes(),
            segments_moved: 0,
            heat_planned: 0.0,
            heat_moved: 0.0,
            post_max_cpu,
            post_max_heat_share,
        },
        replica_reads: db.replica_reads(),
        replica_shipped_bytes: db.replica_shipped_bytes(),
        wal_flushed_bytes: db.with_cluster(|c| c.nodes.iter().map(|n| n.log.flushed_bytes()).sum()),
        completed: db.completed(),
    }
}

/// Outcome of the node-kill recovery measurement.
#[derive(Debug, Clone, Copy)]
pub struct FailoverRecovery {
    /// Did the cluster reach full recovery inside the horizon?
    pub recovered: bool,
    /// Simulated seconds from the kill to recovery: every orphaned
    /// segment promoted, the dead node erased from the replica map, and
    /// the replication factor restored.
    pub recovery_secs: f64,
    /// Bytes shipped to seed the replacement followers.
    pub rereplication_bytes: u64,
    /// Segments the victim led at the kill (all of them get promoted).
    pub orphaned: usize,
}

/// Run the node-kill phase: three data nodes under factor 1, autopilot
/// on a failover-only policy, the middle node killed after warm-up.
/// Polls each simulated second until the factor is restored.
pub fn run_failover_recovery(cfg: FailoverShootout) -> FailoverRecovery {
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(cfg.warehouses.max(6))
        .density(0.02)
        .segment_pages(16)
        .io_scale(cfg.io_scale)
        .costs(scaled_costs(40))
        .seed(cfg.seed)
        .initial_data_nodes(&[NodeId(0), NodeId(1), NodeId(2)])
        .replication(cfg.factor.max(1))
        .policy(wattdb_core::PolicyConfig {
            cpu_high: 1.1, // failover-only: every elasticity trigger inert
            cpu_low: 0.0,
            skew_threshold: 0.0,
            net_high: 2.0,
            ..Default::default()
        })
        .monitoring(SimDuration::from_secs(5))
        .autopilot(true)
        .build();
    db.with_cluster_mut(|c| {
        c.auto_resubmit = false;
        c.spawn_clients_skewed(
            cfg.clients,
            wattdb_tpcc::ClientConfig {
                think_time: cfg.think,
                ..Default::default()
            },
            cfg.hot_fraction,
            1,
        );
    });
    db.with_runtime(|cl, sim| start_mixed_clients(cl, sim, cfg.update_pct));
    db.run_for(cfg.warm);
    let victim = NodeId(1);
    let orphaned = db.replica_map().led_by(victim).len();
    db.fail_node(victim);
    let killed_at = db.now();
    let horizon = SimDuration::from_secs(600);
    let mut recovered = false;
    while db.now() - killed_at < horizon {
        db.run_for(SimDuration::from_secs(1));
        let done = db.with_cluster(|c| {
            !c.replicas.references(victim)
                && c.replicas
                    .under_replicated(c.cfg.replication.factor)
                    .is_empty()
        });
        if done {
            recovered = true;
            break;
        }
    }
    FailoverRecovery {
        recovered,
        recovery_secs: (db.now() - killed_at).as_secs_f64(),
        rereplication_bytes: db.rereplication_bytes(),
        orphaned,
    }
}

/// Outcome of the drain-under-replication measurement.
#[derive(Debug, Clone, Copy)]
pub struct DrainUnderReplication {
    /// Did the autopilot drain and suspend a node inside the horizon?
    pub drained: bool,
    /// Simulated seconds from engagement to the node reaching standby.
    pub drain_secs: f64,
    /// Follower copies the drained node hosted before the drain — all of
    /// them must be re-homed onto survivors.
    pub rehomed_copies: usize,
    /// Bytes shipped re-homing and backfilling follower copies.
    pub rereplication_bytes: u64,
    /// Segments still under the replication factor once everything
    /// settled (the acceptance gate demands zero).
    pub under_replicated: usize,
    /// The replica-map invariants held after settling: no leader in its
    /// own follower set, no reference to a suspended node.
    pub invariants_ok: bool,
}

/// Run the drain-under-replication phase: three replicated data nodes
/// idle below the low-CPU bound, autopilot on a drain-only policy. The
/// coldest node hosts follower copies for the survivors' segments — the
/// scale-in must re-home those copies in the same decision, suspend the
/// node, and leave zero under-replicated segments once the backfill
/// copies land. Polls each simulated second until settled.
pub fn run_drain_under_replication(cfg: FailoverShootout) -> DrainUnderReplication {
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(cfg.warehouses.max(6))
        .density(0.02)
        .segment_pages(16)
        .io_scale(cfg.io_scale)
        .costs(scaled_costs(40))
        .seed(cfg.seed)
        .initial_data_nodes(&[NodeId(0), NodeId(1), NodeId(2)])
        .replication(cfg.factor.max(1))
        .policy(wattdb_core::PolicyConfig {
            cpu_high: 1.1, // drain-only: the idle cluster breaches cpu_low at once
            cpu_low: 0.5,
            patience: 2,
            skew_threshold: 0.0,
            net_high: 2.0,
            ..Default::default()
        })
        .monitoring(SimDuration::from_secs(5))
        .autopilot(true)
        .build();
    let copies_at_start: std::collections::BTreeMap<NodeId, usize> = (0..4u16)
        .map(|n| (NodeId(n), db.replica_map().followed_by(NodeId(n)).len()))
        .collect();
    let engaged_at = db.now();
    let horizon = SimDuration::from_secs(600);
    let mut suspended: Vec<NodeId> = Vec::new();
    let mut drain_secs = horizon.as_secs_f64();
    while db.now() - engaged_at < horizon {
        db.run_for(SimDuration::from_secs(1));
        if suspended.is_empty() {
            suspended = db
                .events()
                .iter()
                .filter_map(|e| match &e.outcome {
                    wattdb_core::autopilot::Outcome::Suspended { nodes } if !nodes.is_empty() => {
                        Some(nodes.clone())
                    }
                    _ => None,
                })
                .flatten()
                .collect();
            if !suspended.is_empty() {
                drain_secs = (db.now() - engaged_at).as_secs_f64();
            }
            continue;
        }
        let settled = db.with_cluster(|c| c.mover.is_none() && c.rereplication_inflight == 0);
        if settled {
            break;
        }
    }
    let rehomed_copies = suspended
        .iter()
        .map(|n| copies_at_start.get(n).copied().unwrap_or(0))
        .sum();
    let (under_replicated, invariants_ok) = db.with_cluster(|c| {
        (
            c.replicas.under_replicated(c.cfg.replication.factor).len(),
            c.check_replica_invariants().is_none(),
        )
    });
    DrainUnderReplication {
        drained: !suspended.is_empty(),
        drain_secs,
        rehomed_copies,
        rereplication_bytes: db.rereplication_bytes(),
        under_replicated,
        invariants_ok,
    }
}

/// Run the telemetry-capture phase: the stationary scale-out scenario
/// with replication enabled, so the exported timeline carries every
/// observable the subsystem promises — rebalance/power-up spans, the
/// full window sample stream (throughput, percentiles, per-node
/// utilization, replica read share, watts, Wh-per-committed-txn), and a
/// decision record per monitoring window. Returns the JSONL export the
/// shootout writes to `BENCH_timeline.jsonl`.
pub fn run_timeline_capture(cfg: PlannerShootout) -> String {
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(cfg.warehouses)
        .density(0.02)
        .segment_pages(16)
        .io_scale(cfg.io_scale)
        .costs(scaled_costs(40))
        .seed(cfg.seed)
        .initial_data_nodes(&[NodeId(0), NodeId(1)])
        .replication(1)
        .planner(cfg.planner)
        .policy(wattdb_core::PolicyConfig {
            cpu_high: 0.8,
            cpu_low: 0.02,
            patience: 2,
            move_fraction: 0.5,
            planner: cfg.planner,
            heat_tolerance: 0.1,
            skew_threshold: 0.0,
            ..Default::default()
        })
        .monitoring(SimDuration::from_secs(5))
        .autopilot(true)
        .build();
    db.with_cluster_mut(|c| {
        c.auto_resubmit = false;
        c.spawn_clients_skewed(
            cfg.clients,
            wattdb_tpcc::ClientConfig {
                think_time: cfg.think,
                ..Default::default()
            },
            cfg.hot_fraction,
            cfg.hot_warehouses,
        );
    });
    db.with_runtime(|cl, sim| start_mixed_clients(cl, sim, cfg.update_pct));
    settle_and_measure(&mut db, cfg.planner, 80, SimDuration::from_secs(30));
    db.export_timeline_string()
}

/// One labelled row of the machine-readable shootout summary.
#[derive(Debug, Clone)]
pub struct BenchJsonRow {
    /// Shootout phase (`"stationary"`, `"advancing"`, `"mixed"`).
    pub phase: &'static str,
    /// Variant within the phase (planner or heat-signal label).
    pub variant: String,
    /// The measured row.
    pub row: PlannerShootoutRow,
    /// Extra JSON key/value pairs spliced verbatim into the row object
    /// (each must start with `, `); empty for the standard phases.
    pub extra: String,
}

/// Serialize the shootout summary as JSON (hand-rolled — the build is
/// offline, no serde) so CI can upload the perf trajectory as an
/// artifact and later PRs can diff it machine-readably.
pub fn shootout_json(rows: &[BenchJsonRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"planner_shootout\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            concat!(
                "    {{\"phase\": \"{}\", \"variant\": \"{}\", \"rebalanced\": {}, ",
                "\"segments_moved\": {}, \"bytes_moved\": {}, \"heat_planned\": {:.3}, ",
                "\"heat_moved\": {:.3}, \"post_max_cpu\": {:.4}, ",
                "\"post_max_heat_share\": {:.4}{}}}{}\n"
            ),
            r.phase,
            r.variant,
            r.row.rebalanced,
            r.row.segments_moved,
            r.row.bytes_moved,
            r.row.heat_planned,
            r.row.heat_moved,
            r.row.post_max_cpu,
            r.row.post_max_heat_share,
            r.extra,
            sep,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Outcome of one scheme run.
pub struct SchemeRun {
    /// Bucketed series relative to the trigger.
    pub series: Vec<SeriesRow>,
    /// Virtual seconds the rebalance took (if it finished in-window).
    pub rebalance_secs: Option<f64>,
    /// Completed transactions.
    pub completed: u64,
    /// Aborted attempts.
    pub aborted: u64,
    /// The deployment, for post-hoc inspection (Fig. 7 profiles).
    pub db: WattDb,
}

/// Run the §5.1 experiment: load on two nodes, warm up, then move 50 % of
/// the data to two fresh nodes under the configured scheme.
pub fn run_scheme_experiment(cfg: SchemeExperiment) -> SchemeRun {
    let mut db = WattDb::builder()
        .nodes(10)
        .scheme(cfg.scheme)
        .warehouses(cfg.warehouses)
        .density(cfg.density)
        .io_scale(cfg.io_scale)
        .costs(scaled_costs(cfg.cpu_scale))
        .segment_pages(16)
        .bucket(SimDuration::from_secs(5))
        .seed(cfg.seed)
        .initial_data_nodes(&[NodeId(0), NodeId(1)])
        .build();
    db.start_oltp(cfg.clients, cfg.think);
    db.run_for(cfg.warmup);
    let trigger = db.now();
    let sources = [NodeId(0), NodeId(1)];
    let targets = [NodeId(2), NodeId(3)];
    if cfg.helpers {
        db.rebalance_with_helpers(0.5, &sources, &targets, &[NodeId(4), NodeId(5)]);
    } else {
        db.rebalance(0.5, &sources, &targets);
    }
    db.run_for(cfg.window);
    db.stop_clients();
    let rebalance_secs = db
        .last_rebalance()
        .map(|r| r.finished.since(r.started).as_secs_f64());
    let series = db
        .timeseries()
        .into_iter()
        .map(|(at, qps, resp, watts, jpq)| SeriesRow {
            t_rel: at.as_secs_f64() - trigger.as_secs_f64(),
            qps,
            resp_ms: resp,
            watts,
            jpq,
        })
        .collect();
    let completed = db.completed();
    let aborted = db.aborted();
    SchemeRun {
        series,
        rebalance_secs,
        completed,
        aborted,
        db,
    }
}

/// Print a Fig. 6/8 series as aligned columns.
pub fn print_series(label: &str, run: &SchemeRun) {
    println!("# {label}");
    println!(
        "{:>8} {:>10} {:>10} {:>9} {:>9}",
        "t(s)", "qps", "resp(ms)", "W", "J/query"
    );
    for r in &run.series {
        println!(
            "{:>8.0} {:>10.1} {:>10.2} {:>9.1} {:>9.3}",
            r.t_rel, r.qps, r.resp_ms, r.watts, r.jpq
        );
    }
    match run.rebalance_secs {
        Some(s) => println!("# rebalance completed in {s:.1}s"),
        None => println!("# rebalance still running at window end"),
    }
    println!("# completed={} aborted={}", run.completed, run.aborted);
    println!();
}

/// Fig. 7: per-phase mean query-cost breakdown in ms.
pub fn print_breakdown(label: &str, db: &WattDb, phase: Phase) {
    let Some(profile) = db.with_cluster(|c| c.metrics.mean_profile(phase)) else {
        println!("{label:<24} (no samples)");
        return;
    };
    let ms = |cat: CostCategory| profile.get(cat).as_millis_f64();
    // "other" folds CPU and scheduling residue, as Fig. 7 does.
    println!(
        "{label:<24} logging={:>7.2} latching={:>7.2} locking={:>7.2} networkIO={:>7.2} diskIO={:>7.2} other={:>7.2} | total={:>7.2} (ms)",
        ms(CostCategory::Logging),
        ms(CostCategory::Latching),
        ms(CostCategory::Locking),
        ms(CostCategory::NetworkIo),
        ms(CostCategory::DiskIo),
        ms(CostCategory::Cpu) + ms(CostCategory::Other),
        profile.total().as_millis_f64(),
    );
}

// ------------------------------------------------------------------ Fig. 1

/// One Fig. 1 configuration.
pub struct Fig1Config {
    /// Bar label as in the paper.
    pub label: &'static str,
    /// Volcano batch size (1 = single record).
    pub batch: u64,
    /// Projection placed remotely?
    pub remote: bool,
    /// Projection present at all?
    pub project: bool,
    /// Buffering operator inserted at the boundary?
    pub buffered: bool,
}

/// The five bars of Fig. 1.
pub fn fig1_configs() -> Vec<Fig1Config> {
    vec![
        Fig1Config {
            label: "TBSCAN (local)",
            batch: 1,
            remote: false,
            project: false,
            buffered: false,
        },
        Fig1Config {
            label: "L PROJECT + TBSCAN (single record)",
            batch: 1,
            remote: false,
            project: true,
            buffered: false,
        },
        Fig1Config {
            label: "R PROJECT + TBSCAN (single record)",
            batch: 1,
            remote: true,
            project: true,
            buffered: false,
        },
        Fig1Config {
            label: "R PROJECT + TBSCAN (vectorized)",
            batch: 128,
            remote: true,
            project: true,
            buffered: false,
        },
        Fig1Config {
            label: "R BUFFER + R PROJECT + TBSCAN (vectorized)",
            batch: 128,
            remote: true,
            project: true,
            buffered: true,
        },
    ]
}

/// Run one Fig. 1 configuration; returns records/second.
pub fn fig1_throughput(cfg: &Fig1Config, rows: u64) -> f64 {
    let data = NodeId(1);
    let consumer = if cfg.remote { NodeId(2) } else { NodeId(1) };
    let scan = PlanNode::Scan {
        source: Box::new(SyntheticTable::new(rows, 200, 40)),
        on: data,
    };
    let inner: PlanNode = if cfg.buffered {
        PlanNode::Buffer {
            input: Box::new(scan),
        }
    } else {
        scan
    };
    let plan = if cfg.project {
        PlanNode::Project {
            input: Box::new(inner),
            keep_width: 50,
            on: consumer,
        }
    } else {
        inner
    };
    let (_, trace) = execute(
        &plan,
        &CostParams::default(),
        &ExecConfig {
            batch_size: cfg.batch,
            ..Default::default()
        },
    );
    let db = idle_cluster(3);
    let mut sim = wattdb_sim::Sim::new();
    let broker = Rc::new(RefCell::new(SortMemoryBroker::default()));
    let out: Rc<RefCell<Option<SimDuration>>> = Rc::new(RefCell::new(None));
    let o = out.clone();
    replay_trace(&db, &mut sim, trace, broker, move |sim, started| {
        *o.borrow_mut() = Some(sim.now().since(started));
    });
    sim.run_to_completion();
    let elapsed = out.borrow().expect("trace completes");
    rows as f64 / elapsed.as_secs_f64()
}

fn idle_cluster(nodes: u16) -> wattdb_core::ClusterRc {
    let active: Vec<NodeId> = (0..nodes).map(NodeId).collect();
    wattdb_core::Cluster::new(
        wattdb_core::ClusterConfig {
            nodes,
            buffer_pages: 4096,
            ..Default::default()
        },
        &active,
    )
}

// ------------------------------------------------------------------ Fig. 2

/// Fig. 2: throughput of N concurrent scan+sort queries, local vs. remote
/// sort placement. Returns queries/second.
pub fn fig2_throughput(concurrent: u64, offload: bool, rows: u64) -> f64 {
    let db = idle_cluster(3);
    let mut sim = wattdb_sim::Sim::new();
    let broker = Rc::new(RefCell::new(SortMemoryBroker::default()));
    // Wimpy nodes: modest sort memory forces spills under concurrency.
    broker.borrow_mut().set_limit(NodeId(1), 24 * 1024 * 1024);
    broker.borrow_mut().set_limit(NodeId(2), 24 * 1024 * 1024);
    let done: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
    for _ in 0..concurrent {
        let plan = PlanNode::Sort {
            input: Box::new(PlanNode::Scan {
                source: Box::new(SyntheticTable::new(rows, 100, 80)),
                on: NodeId(1),
            }),
            on: if offload { NodeId(2) } else { NodeId(1) },
        };
        let (_, trace) = execute(&plan, &CostParams::default(), &ExecConfig::default());
        let d = done.clone();
        replay_trace(&db, &mut sim, trace, broker.clone(), move |_, _| {
            *d.borrow_mut() += 1;
        });
    }
    sim.run_to_completion();
    assert_eq!(*done.borrow(), concurrent);
    let makespan = sim.now().as_secs_f64();
    concurrent as f64 / makespan
}

// ------------------------------------------------------------------ Fig. 3

/// Result of one Fig. 3 cell.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Point {
    /// Percentage of update transactions.
    pub update_pct: u32,
    /// Transactions per minute while records were on the move.
    pub ta_per_minute: f64,
    /// Storage footprint relative to live data (1.0 = no overhead).
    pub storage_ratio: f64,
}

/// Run the Fig. 3 micro-benchmark: a read/update mix at `update_pct`
/// percent updates, while a logical move relocates 50 % of the records,
/// under the given CC mode.
pub fn fig3_run(update_pct: u32, mode: CcMode) -> Fig3Point {
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Logical)
        .cc_mode(mode)
        .warehouses(2)
        .density(0.05)
        .io_scale(1200)
        .segment_pages(16)
        .bucket(SimDuration::from_secs(5))
        .seed(7)
        .initial_data_nodes(&[NodeId(0), NodeId(1)])
        .build();
    // Spawn clients; a custom driver loop submits the fixed mix.
    db.with_cluster_mut(|c| {
        c.auto_resubmit = false;
        c.cfg.migration_batch = 64;
        c.spawn_clients(
            24,
            wattdb_tpcc::ClientConfig {
                think_time: SimDuration::from_millis(25),
                ..Default::default()
            },
        );
    });
    db.with_runtime(|cl, sim| start_mixed_clients(cl, sim, update_pct));
    db.run_for(SimDuration::from_secs(10));
    let move_start = db.now();
    let completed_before = db.completed();
    db.rebalance(0.5, &[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
    // Track peak storage overhead during the move.
    let peak: Rc<RefCell<f64>> = Rc::new(RefCell::new(1.0));
    db.with_runtime(|cl, sim| {
        let cl = cl.clone();
        let peak = peak.clone();
        wattdb_sim::Repeater::every(sim, SimDuration::from_secs(2), move |_| {
            let c = cl.borrow();
            let (versions, live) = c.version_stats();
            let mut ratio = if live > 0 {
                versions as f64 / live as f64
            } else {
                1.0
            };
            // Locking mode: pending before-image bytes count as overhead.
            let pending = c.txn.pending_change_bytes();
            if pending > 0 {
                ratio += pending as f64 / (live.max(1) as f64 * 128.0);
            }
            let mut p = peak.borrow_mut();
            if ratio > *p {
                *p = ratio;
            }
            c.mover.is_some()
        });
    });
    // Run until the move finishes (bounded; MGL-RX may stall on its
    // pending-change locks — that *is* the measured effect).
    for _ in 0..60 {
        db.run_for(SimDuration::from_secs(5));
        if !db.rebalancing() {
            break;
        }
    }
    db.stop_clients();
    let move_minutes = db.now().since(move_start).as_secs_f64() / 60.0;
    let ta = (db.completed() - completed_before) as f64 / move_minutes.max(1e-9);
    let storage_ratio = *peak.borrow();
    Fig3Point {
        update_pct,
        ta_per_minute: ta,
        storage_ratio,
    }
}

/// Custom closed-loop drivers with a fixed update fraction: updates are
/// Payments, reads OrderStatus. Each client keeps exactly one transaction
/// in flight, polling for completion.
fn start_mixed_clients(cl: &wattdb_core::ClusterRc, sim: &mut wattdb_sim::Sim, update_pct: u32) {
    let n = cl.borrow().clients.len();
    for client in 0..n {
        arm_mixed(cl, sim, client, update_pct);
    }
}

fn arm_mixed(
    cl: &wattdb_core::ClusterRc,
    sim: &mut wattdb_sim::Sim,
    client: usize,
    update_pct: u32,
) {
    let think = {
        let mut c = cl.borrow_mut();
        if c.stopped {
            return;
        }
        c.clients[client].think()
    };
    let handle = cl.clone();
    sim.after(think, move |sim| {
        let job = {
            let mut c = handle.borrow_mut();
            if c.stopped {
                None
            } else {
                let update = {
                    let r = c.clients[client].rng();
                    r.uniform(0, 99) < update_pct as u64
                };
                let profile = if update {
                    TxnProfile::Payment
                } else {
                    TxnProfile::OrderStatus
                };
                c.new_job_with(client, Some(profile), sim.now())
            }
        };
        let Some(job_id) = job else {
            return;
        };
        executor::step(&handle, sim, job_id);
        // Poll for completion, then re-arm.
        let poll = handle.clone();
        wattdb_sim::Repeater::every(sim, SimDuration::from_millis(25), move |sim| {
            if poll.borrow().jobs.contains_key(&job_id) {
                return true;
            }
            arm_mixed(&poll, sim, client, update_pct);
            false
        });
    });
}
