//! §3.1 power anchors — the calibration table behind every Watt reported.
//!
//! Paper: node 22–26 W active / 2.5 W standby; switch 20 W; minimal
//! configuration ≈ 65 W (no drives) / 70–75 W (with drives); full cluster
//! 260–280 W.

use wattdb_common::{NodeId, SimTime};
use wattdb_core::{Cluster, ClusterConfig};
use wattdb_energy::{proportionality_index, UtilPower};

fn cluster_power(active: u16, utilization_hint: &str) -> f64 {
    let nodes: Vec<NodeId> = (0..active).map(NodeId).collect();
    let cl = Cluster::new(
        ClusterConfig {
            nodes: 10,
            buffer_pages: 64,
            ..Default::default()
        },
        &nodes,
    );
    let mut c = cl.borrow_mut();
    let _ = utilization_hint;
    c.sample_power(SimTime::from_secs(1)).0
}

fn main() {
    println!("Power calibration — §3.1 anchors");
    println!(
        "{:<42} {:>10} {:>14}",
        "configuration", "model W", "paper W"
    );
    let minimal = cluster_power(1, "idle");
    println!(
        "{:<42} {:>10.1} {:>14}",
        "1 active node + 9 standby + switch + drives", minimal, "~70-75"
    );
    let two = cluster_power(2, "idle");
    println!(
        "{:<42} {:>10.1} {:>14}",
        "2 active nodes (initial experiment state)", two, "-"
    );
    let full_idle = cluster_power(10, "idle");
    println!(
        "{:<42} {:>10.1} {:>14}",
        "10 active nodes, idle", full_idle, "-"
    );
    // Full utilization: idle→max adds 4 W per node.
    let full_load = full_idle + 10.0 * 4.0;
    println!(
        "{:<42} {:>10.1} {:>14}",
        "10 active nodes, full utilization", full_load, "~260-280 +drives"
    );

    // Energy proportionality of the node-deactivating cluster vs. one
    // always-on configuration (the paper's §1 motivation).
    let steps: Vec<UtilPower> = (0..=10u16)
        .map(|n| {
            let p = if n == 0 {
                cluster_power(1, "idle")
            } else {
                cluster_power(n, "busy") + n as f64 * 4.0
            };
            UtilPower {
                utilization: n as f64 / 10.0,
                power: wattdb_common::Watts(p),
            }
        })
        .collect();
    let always_on: Vec<UtilPower> = (0..=10u16)
        .map(|n| UtilPower {
            utilization: n as f64 / 10.0,
            power: wattdb_common::Watts(full_idle + n as f64 * 4.0),
        })
        .collect();
    println!(
        "\nenergy-proportionality index: dynamic cluster {:.3} vs always-on {:.3}",
        proportionality_index(&steps),
        proportionality_index(&always_on)
    );
}
