//! Planner shootout — fraction vs. heat-aware rebalance planning under a
//! skewed (hot-range) TPC-C workload, an advancing-hotspot phase
//! comparing historical-heat against drift-projected planning, and a
//! mixed-operator phase comparing count-based against cost-based heat.
//!
//! Stationary phase: 85 % of the clients hammer warehouse 0, which
//! occupies the *bottom* of the single data node's key space. The legacy
//! fraction heuristic shaves the *top* half of the key-ordered segments,
//! shipping cold data while the hotspot stays put; the heat-aware planner
//! moves the segments the workload actually touches.
//!
//! Advancing phase: the hot client population warms warehouse 0, then
//! re-homes to warehouse 1 just before the thresholds arm (TPC-C's
//! insert-advancing front). Historical heat points at the warehouse the
//! front already left; the drift layer projects heat along its velocity
//! so the planner ships where the heat is *going*.
//!
//! Mixed-operator phase: point-read-hot clients on warehouse 0 share the
//! node with periodic scan+aggregation queries over another warehouse.
//! Count-based heat sees only access frequency and ships the point
//! segments, leaving every scan cycle burning on the source; cost-based
//! heat prices the operators and ships the scan *work*, so the CPU load
//! genuinely splits. Compared: bytes shipped, heat relocated,
//! post-rebalance max node CPU, and the hottest node's share of heat.
//!
//! The full summary is also written to `BENCH_planner.json` so CI can
//! upload the perf trajectory as a machine-readable artifact.

use wattdb_bench::{
    run_drain_under_replication, run_drift_shootout, run_failover_recovery, run_failover_shootout,
    run_mixed_shootout, run_planner_shootout, run_timeline_capture, run_transient_shootout,
    shootout_json, BenchJsonRow, DriftShootout, FailoverShootout, MixedShootout, PlannerShootout,
    PlannerShootoutRow, TransientShootout,
};
use wattdb_common::SimDuration;
use wattdb_core::Planner;

fn row(label: &str, r: &PlannerShootoutRow) {
    println!(
        "{label:>12} {:>6} {:>10} {:>12.1} {:>11.1} {:>13.1}% {:>15.1}%",
        r.segments_moved,
        r.bytes_moved,
        r.heat_planned,
        r.heat_moved,
        r.post_max_cpu * 100.0,
        r.post_max_heat_share * 100.0,
    );
}

fn header(first_col: &str) {
    println!(
        "{first_col:>12} {:>6} {:>10} {:>12} {:>11} {:>14} {:>16}",
        "segs", "bytes", "heat planned", "heat moved", "post max cpu", "post heat share"
    );
}

fn main() {
    let mut json = Vec::new();

    println!("Planner shootout — skewed (hot-range) TPC-C, autopilot scale-out");
    header("planner");
    let frac = run_planner_shootout(PlannerShootout {
        planner: Planner::Fraction,
        ..Default::default()
    });
    row(frac.planner.label(), &frac);
    let heat = run_planner_shootout(PlannerShootout {
        planner: Planner::HeatAware,
        ..Default::default()
    });
    row(heat.planner.label(), &heat);
    json.push(BenchJsonRow {
        phase: "stationary",
        variant: "fraction".into(),
        row: frac,
        extra: String::new(),
    });
    json.push(BenchJsonRow {
        phase: "stationary",
        variant: "heat-aware".into(),
        row: heat,
        extra: String::new(),
    });

    let verdict = if heat.post_max_cpu < frac.post_max_cpu && heat.bytes_moved <= frac.bytes_moved {
        "heat-aware wins: lower post-rebalance max CPU for no more bytes"
    } else if heat.post_max_heat_share < frac.post_max_heat_share {
        "heat-aware wins on heat balance"
    } else {
        "no separation at this configuration"
    };
    println!("\n{verdict}");

    println!("\nAdvancing hotspot — the hot warehouse just moved on, heat-aware planner");
    header("heat input");
    let historical = run_drift_shootout(DriftShootout {
        horizon: SimDuration::ZERO,
        ..Default::default()
    });
    row("historical", &historical);
    let projected = run_drift_shootout(DriftShootout::default());
    row("projected", &projected);
    json.push(BenchJsonRow {
        phase: "advancing",
        variant: "historical".into(),
        row: historical,
        extra: String::new(),
    });
    json.push(BenchJsonRow {
        phase: "advancing",
        variant: "projected".into(),
        row: projected,
        extra: String::new(),
    });
    let verdict = if projected.post_max_cpu < historical.post_max_cpu
        && projected.bytes_moved <= historical.bytes_moved
    {
        "projected wins: lower post-rebalance max CPU for no more bytes"
    } else if projected.post_max_heat_share < historical.post_max_heat_share {
        "projected wins on heat balance"
    } else {
        "no separation at this configuration"
    };
    println!("\n{verdict}");

    let mixed_cfg = MixedShootout::default();
    println!(
        "\nMixed operators — point reads on warehouse 0, scans on warehouses {}..{}",
        mixed_cfg.scan_lo, mixed_cfg.scan_hi
    );
    header("heat signal");
    let count = run_mixed_shootout(MixedShootout {
        cost_based: false,
        ..mixed_cfg
    });
    row("count-heat", &count);
    let cost = run_mixed_shootout(mixed_cfg);
    row("cost-heat", &cost);
    json.push(BenchJsonRow {
        phase: "mixed",
        variant: "count-heat".into(),
        row: count,
        extra: String::new(),
    });
    json.push(BenchJsonRow {
        phase: "mixed",
        variant: "cost-heat".into(),
        row: cost,
        extra: String::new(),
    });
    println!("\nTransient skew — the hot node flaps; helpers vs segment-shipping");
    header("response");
    let shipping = run_transient_shootout(TransientShootout {
        helpers: false,
        ..Default::default()
    });
    row("ship-segments", &shipping.row);
    let helped = run_transient_shootout(TransientShootout::default());
    row("helpers", &helped.row);
    json.push(BenchJsonRow {
        phase: "transient",
        variant: "segment-shipping".into(),
        row: shipping.row,
        extra: String::new(),
    });
    json.push(BenchJsonRow {
        phase: "transient",
        variant: "helpers".into(),
        row: helped.row,
        extra: String::new(),
    });

    println!("\nReplication — hot reads fanned out across follower copies");
    header("replicas");
    let base = run_failover_shootout(FailoverShootout {
        factor: 0,
        ..Default::default()
    });
    row("off", &base.row);
    let rep = run_failover_shootout(FailoverShootout::default());
    row("factor-1", &rep.row);
    json.push(BenchJsonRow {
        phase: "failover",
        variant: "no-replicas".into(),
        row: base.row,
        extra: format!(
            ", \"replica_reads\": {}, \"replica_shipped_bytes\": {}, \"completed\": {}",
            base.replica_reads, base.replica_shipped_bytes, base.completed
        ),
    });
    json.push(BenchJsonRow {
        phase: "failover",
        variant: "replicated".into(),
        row: rep.row,
        extra: format!(
            ", \"replica_reads\": {}, \"replica_shipped_bytes\": {}, \"completed\": {}",
            rep.replica_reads, rep.replica_shipped_bytes, rep.completed
        ),
    });
    let recovery = run_failover_recovery(FailoverShootout::default());
    println!(
        "\nNode kill: {} orphaned segments re-led and factor restored in {:.1}s \
         ({} B re-replicated)",
        recovery.orphaned, recovery.recovery_secs, recovery.rereplication_bytes,
    );
    json.push(BenchJsonRow {
        phase: "failover",
        variant: "node-kill".into(),
        row: PlannerShootoutRow {
            planner: wattdb_core::Planner::HeatAware,
            rebalanced: recovery.recovered,
            bytes_moved: recovery.rereplication_bytes,
            segments_moved: recovery.orphaned as u64,
            heat_planned: 0.0,
            heat_moved: 0.0,
            post_max_cpu: 0.0,
            post_max_heat_share: 0.0,
        },
        extra: format!(
            ", \"recovery_secs\": {:.1}, \"rereplication_bytes\": {}, \"orphaned\": {}",
            recovery.recovery_secs, recovery.rereplication_bytes, recovery.orphaned
        ),
    });
    let drain = run_drain_under_replication(FailoverShootout::default());
    println!(
        "Replica-aware drain: node suspended in {:.1}s, {} follower copies re-homed \
         ({} B shipped), {} segments under-replicated after settle",
        drain.drain_secs, drain.rehomed_copies, drain.rereplication_bytes, drain.under_replicated,
    );
    json.push(BenchJsonRow {
        phase: "failover",
        variant: "drain-under-replication".into(),
        row: PlannerShootoutRow {
            planner: wattdb_core::Planner::HeatAware,
            rebalanced: drain.drained,
            bytes_moved: drain.rereplication_bytes,
            segments_moved: drain.rehomed_copies as u64,
            heat_planned: 0.0,
            heat_moved: 0.0,
            post_max_cpu: 0.0,
            post_max_heat_share: 0.0,
        },
        extra: format!(
            ", \"drain_secs\": {:.1}, \"rehomed_copies\": {}, \"under_replicated\": {}, \
             \"invariants_ok\": {}",
            drain.drain_secs, drain.rehomed_copies, drain.under_replicated, drain.invariants_ok
        ),
    });

    // Write the artifact BEFORE the acceptance gates, and land it at the
    // repository root whatever CWD cargo ran the bench with: a failing
    // gate is exactly the run whose numbers CI must still upload.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_planner.json");
    let json_text = shootout_json(&json);
    std::fs::write(&path, &json_text).expect("write BENCH_planner.json");
    println!("\nwrote {}", path.display());

    // Acceptance gates for the replica-aware drain: the node powered
    // down, not a single segment was left under the replication factor,
    // and the replica map held its invariants throughout.
    assert!(
        drain.drained,
        "autopilot never drained the idle replicated node"
    );
    assert_eq!(
        drain.under_replicated, 0,
        "drain left segments under the replication factor"
    );
    assert!(
        drain.invariants_ok,
        "replica-map invariants violated after the drain"
    );

    // Telemetry capture: re-run the stationary scale-out with replication
    // and export the full control-plane timeline (spans, window samples,
    // decision records) as the second machine-readable artifact. The
    // schema gate lives in `wattdb-telemetry`'s `schema_validate` test,
    // which parses this file line for line when present.
    let timeline = run_timeline_capture(PlannerShootout::default());
    let timeline_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_timeline.jsonl");
    std::fs::write(&timeline_path, &timeline).expect("write BENCH_timeline.jsonl");
    println!("wrote {}", timeline_path.display());
    assert!(
        timeline.contains("\"kind\": \"sample\"") && timeline.contains("energy.wh_per_txn"),
        "the timeline must carry window samples with Wh-per-committed-txn"
    );
    assert!(
        timeline.contains("\"kind\": \"decision\"") && timeline.contains("\"kind\": \"span\""),
        "the timeline must carry decision records and closed spans"
    );

    // Acceptance gates, most fundamental first.
    assert!(
        frac.rebalanced && heat.rebalanced,
        "both stationary runs must rebalance"
    );
    assert!(
        historical.rebalanced && projected.rebalanced,
        "both drift runs must rebalance"
    );
    assert!(
        count.rebalanced && cost.rebalanced,
        "both mixed runs must rebalance"
    );
    // The tentpole's acceptance criterion: pricing the operators realizes
    // a strictly better post-rebalance CPU balance for no extra bytes.
    assert!(
        cost.post_max_cpu < count.post_max_cpu,
        "cost-based heat must realize lower post-rebalance max CPU: {:.1}% vs {:.1}%",
        cost.post_max_cpu * 100.0,
        count.post_max_cpu * 100.0
    );
    assert!(
        cost.bytes_moved <= count.bytes_moved,
        "cost-based heat must not ship more bytes: {} vs {}",
        cost.bytes_moved,
        count.bytes_moved
    );
    println!("\ncost-heat wins: lower post-rebalance max CPU for no more bytes");

    // Transient phase: every skew fire must have shipped under the
    // shipping policy, none under helpers-first — and helpers must win
    // on bytes at comparable post-rebalance max CPU.
    assert!(
        shipping.row.rebalanced && shipping.row.bytes_moved > 0,
        "the shipping policy must have rebalanced the transient skew"
    );
    assert_eq!(
        shipping.helper_attaches, 0,
        "helper escalation disabled must never attach"
    );
    assert!(
        helped.helper_attaches > 0,
        "the helpers policy must have attached helpers"
    );
    assert!(
        helped.helper_detaches > 0,
        "helpers must actually detach when a flap's skew subsides — \
         a wedged subsidence predicate keeps them powered forever"
    );
    assert_eq!(
        helped.row.bytes_moved, 0,
        "helpers-first must ship zero segment bytes, shipped {}",
        helped.row.bytes_moved
    );
    assert!(
        helped.row.post_max_cpu <= shipping.row.post_max_cpu + 0.10,
        "helpers must hold a comparable post-rebalance max CPU: {:.1}% vs {:.1}%",
        helped.row.post_max_cpu * 100.0,
        shipping.row.post_max_cpu * 100.0
    );
    println!(
        "\nhelpers win the transient phase: 0 B shipped (vs {} B) at {:.1}% vs {:.1}% max CPU \
         ({} attaches, {} detaches)",
        shipping.row.bytes_moved,
        helped.row.post_max_cpu * 100.0,
        shipping.row.post_max_cpu * 100.0,
        helped.helper_attaches,
        helped.helper_detaches,
    );

    // Replication phase: fanning the hot reads over a follower must
    // realize a strictly lower max CPU, for a wire cost bounded by the
    // WAL itself (each flushed record ships at most once per follower).
    assert!(
        rep.replica_reads > 0,
        "the replicated run must serve reads from followers"
    );
    assert!(
        rep.row.post_max_cpu < base.row.post_max_cpu,
        "read fan-out must lower the hot node's CPU: {:.1}% vs {:.1}%",
        rep.row.post_max_cpu * 100.0,
        base.row.post_max_cpu * 100.0
    );
    assert!(
        rep.replica_shipped_bytes > 0 && rep.replica_shipped_bytes <= rep.wal_flushed_bytes,
        "replica shipping must stay within the WAL bound: {} B shipped, {} B flushed",
        rep.replica_shipped_bytes,
        rep.wal_flushed_bytes
    );
    assert!(
        recovery.recovered,
        "the node kill must recover inside the horizon ({} orphaned)",
        recovery.orphaned
    );
    assert!(
        recovery.orphaned > 0 && recovery.rereplication_bytes > 0,
        "recovery must promote orphans and re-replicate"
    );
    println!(
        "\nreplicas win the read fan-out: {:.1}% vs {:.1}% max CPU for {} B of WAL shipping \
         ({} follower reads); node kill recovered in {:.1}s",
        rep.row.post_max_cpu * 100.0,
        base.row.post_max_cpu * 100.0,
        rep.replica_shipped_bytes,
        rep.replica_reads,
        recovery.recovery_secs,
    );
}
