//! Planner shootout — fraction vs. heat-aware rebalance planning under a
//! skewed (hot-range) TPC-C workload, plus an advancing-hotspot phase
//! comparing historical-heat against drift-projected planning.
//!
//! Stationary phase: 85 % of the clients hammer warehouse 0, which
//! occupies the *bottom* of the single data node's key space. The legacy
//! fraction heuristic shaves the *top* half of the key-ordered segments,
//! shipping cold data while the hotspot stays put; the heat-aware planner
//! moves the segments the workload actually touches.
//!
//! Advancing phase: the hot client population warms warehouse 0, then
//! re-homes to warehouse 1 just before the thresholds arm (TPC-C's
//! insert-advancing front). Historical heat points at the warehouse the
//! front already left; the drift layer projects heat along its velocity
//! so the planner ships where the heat is *going*. Compared: bytes
//! shipped, heat relocated, post-rebalance max node CPU, and the hottest
//! node's share of total heat.

use wattdb_bench::{
    run_drift_shootout, run_planner_shootout, DriftShootout, PlannerShootout, PlannerShootoutRow,
};
use wattdb_common::SimDuration;
use wattdb_core::Planner;

fn row(label: &str, r: &PlannerShootoutRow) {
    println!(
        "{label:>12} {:>6} {:>10} {:>12.1} {:>11.1} {:>13.1}% {:>15.1}%",
        r.segments_moved,
        r.bytes_moved,
        r.heat_planned,
        r.heat_moved,
        r.post_max_cpu * 100.0,
        r.post_max_heat_share * 100.0,
    );
}

fn main() {
    println!("Planner shootout — skewed (hot-range) TPC-C, autopilot scale-out");
    println!(
        "{:>12} {:>6} {:>10} {:>12} {:>11} {:>14} {:>16}",
        "planner", "segs", "bytes", "heat planned", "heat moved", "post max cpu", "post heat share"
    );
    let frac = run_planner_shootout(PlannerShootout {
        planner: Planner::Fraction,
        ..Default::default()
    });
    row(frac.planner.label(), &frac);
    let heat = run_planner_shootout(PlannerShootout {
        planner: Planner::HeatAware,
        ..Default::default()
    });
    row(heat.planner.label(), &heat);

    assert!(
        frac.rebalanced && heat.rebalanced,
        "both runs must rebalance"
    );
    let verdict = if heat.post_max_cpu < frac.post_max_cpu && heat.bytes_moved <= frac.bytes_moved {
        "heat-aware wins: lower post-rebalance max CPU for no more bytes"
    } else if heat.post_max_heat_share < frac.post_max_heat_share {
        "heat-aware wins on heat balance"
    } else {
        "no separation at this configuration"
    };
    println!("\n{verdict}");

    println!("\nAdvancing hotspot — the hot warehouse just moved on, heat-aware planner");
    println!(
        "{:>12} {:>6} {:>10} {:>12} {:>11} {:>14} {:>16}",
        "heat input",
        "segs",
        "bytes",
        "heat planned",
        "heat moved",
        "post max cpu",
        "post heat share"
    );
    let historical = run_drift_shootout(DriftShootout {
        horizon: SimDuration::ZERO,
        ..Default::default()
    });
    row("historical", &historical);
    let projected = run_drift_shootout(DriftShootout::default());
    row("projected", &projected);
    assert!(
        historical.rebalanced && projected.rebalanced,
        "both drift runs must rebalance"
    );
    let verdict = if projected.post_max_cpu < historical.post_max_cpu
        && projected.bytes_moved <= historical.bytes_moved
    {
        "projected wins: lower post-rebalance max CPU for no more bytes"
    } else if projected.post_max_heat_share < historical.post_max_heat_share {
        "projected wins on heat balance"
    } else {
        "no separation at this configuration"
    };
    println!("\n{verdict}");
}
