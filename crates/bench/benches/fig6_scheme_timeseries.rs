//! Fig. 6 — "Benchmark results for various partitioning schemes under a
//! TPC-C query mix": throughput, response time, power, and energy per
//! query over time, for physical / logical / physiological partitioning.
//!
//! At t = 0 the cluster is instructed to move 50 % of the data from the
//! two loaded nodes to two freshly powered nodes. Paper shape: all schemes
//! dip at t 0; physical never recovers its old level (ownership stays
//! behind); logical dips deepest then overtakes once enough records moved;
//! physiological recovers fastest and ends best.

use wattdb_bench::{print_series, run_scheme_experiment, SchemeExperiment};
use wattdb_core::cluster::Scheme;

fn main() {
    println!("Fig. 6 — partitioning schemes under a TPC-C mix (rebalance at t=0)\n");
    for scheme in [Scheme::Physical, Scheme::Logical, Scheme::Physiological] {
        let run = run_scheme_experiment(SchemeExperiment {
            scheme,
            ..Default::default()
        });
        print_series(scheme.label(), &run);
    }
}
