//! Energy-proportionality scorecard — the paper's headline claim as a
//! gated experiment.
//!
//! Three trace-driven workloads ({diurnal sine, flash crowd, tenant
//! mix}) each run twice on the same 4-node deployment at the same seed:
//! once under the elasticity autopilot and once statically provisioned
//! (every node powered from t = 0, autopilot off). Each run's exported
//! telemetry timeline is graded by `wattdb_energy::scorecard` against
//! the rated peak of the deployment, and the full 3×2 matrix is written
//! to `BENCH_energy.json` for CI to validate and upload.
//!
//! Acceptance gates (checked after the artifact is written):
//!
//! * every cell commits transactions and samples windows;
//! * on the diurnal trace the autopilot's proportionality index
//!   (rated) strictly beats the static baseline's;
//! * the autopilot's worst-window p95 stays within [`P95_BOUND`]× the
//!   static baseline's on the diurnal trace. Elasticity is not free:
//!   while a scale-out rebalance is in flight the cluster runs
//!   saturated and transactions queue for seconds, so the worst-window
//!   p95 lands whole log₂ buckets above the static baseline's (the
//!   measured penalty is ~7 buckets, ≈128×). The bound is a regression
//!   backstop one bucket above that, not a latency SLO — tuning the
//!   policy to be eager enough to avoid the crunch was measured to
//!   erase most of the proportionality win without leaving the
//!   multi-second bucket.

use wattdb_common::{CostParams, NodeId, SimDuration, SimTime};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;
use wattdb_core::ClientBatching;
use wattdb_energy::{score_jsonl, PhaseSpan, Scorecard};
use wattdb_tpcc::{DiurnalConfig, FlashCrowdConfig, LoadTrace, TenantLoad, TenantSpec};

/// Mean think time across every cell: the trace scales offered load by
/// resizing the modeled population, not by changing client tempo.
const THINK: SimDuration = SimDuration::from_secs(2);
/// Shared seed — autopilot and static cells of a trace differ only in
/// provisioning policy.
const SEED: u64 = 42;
/// Documented ceiling on the autopilot's p95 penalty vs. static on the
/// diurnal trace: eight log₂ response buckets (one bucket = 2×), one
/// above the measured ~7-bucket scale-out-crunch penalty. A regression
/// backstop, not a latency SLO.
const P95_BOUND: f64 = 256.0;
/// Post-trace drain before exporting, so in-flight work completes.
const DRAIN: SimDuration = SimDuration::from_secs(5);

struct Cell {
    trace: &'static str,
    policy: &'static str,
    card: Scorecard,
}

/// Heavier per-operation CPU (the full SQL-layer work on wimpy Atom
/// cores, same idiom as the autopilot round-trip test) so the client
/// load actually saturates nodes and the CPU-threshold policy has a
/// signal to act on.
fn heavy_costs() -> CostParams {
    let mut costs = CostParams::default();
    costs.index_node_visit = costs.index_node_visit * 40;
    costs.record_read = costs.record_read * 40;
    costs.record_write = costs.record_write * 40;
    costs.log_append = costs.log_append * 40;
    costs.buffer_hit = costs.buffer_hit * 40;
    costs
}

fn diurnal() -> LoadTrace {
    LoadTrace::diurnal(DiurnalConfig {
        min_clients: 40,
        max_clients: 800,
        period: SimDuration::from_secs(120),
        phase: 0.0,
        step: SimDuration::from_secs(5),
        horizon: SimDuration::from_secs(240),
        tenant: TenantSpec::default(),
    })
}

fn flash_crowd() -> LoadTrace {
    LoadTrace::flash_crowd(FlashCrowdConfig {
        baseline: 80,
        extra: 720,
        start: SimDuration::from_secs(60),
        ramp: SimDuration::from_secs(20),
        hold: SimDuration::from_secs(60),
        decay: SimDuration::from_secs(40),
        step: SimDuration::from_secs(5),
        horizon: SimDuration::from_secs(240),
        tenant: TenantSpec::default(),
    })
}

fn tenant_mix() -> LoadTrace {
    let third = 2.0 * std::f64::consts::PI / 3.0;
    let tenants: Vec<TenantLoad> = (0..3)
        .map(|i| TenantLoad {
            min_clients: 20,
            max_clients: 280,
            phase: i as f64 * third,
            spec: TenantSpec {
                hot_fraction: 0.7,
                hot_first: 2 * i,
                hot_warehouses: 2,
            },
        })
        .collect();
    LoadTrace::tenant_mix(
        SimDuration::from_secs(120),
        SimDuration::from_secs(5),
        SimDuration::from_secs(240),
        &tenants,
    )
}

fn run_cell(trace_name: &'static str, trace: &LoadTrace, autopilot: bool) -> Cell {
    let initial: &[NodeId] = if autopilot {
        &[NodeId(0), NodeId(1)]
    } else {
        &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
    };
    let mut db = WattDb::builder()
        .nodes(4)
        .scheme(Scheme::Physiological)
        .warehouses(8)
        .density(0.02)
        .segment_pages(8)
        .costs(heavy_costs())
        .seed(SEED)
        .initial_data_nodes(initial)
        .client_batching(ClientBatching::Pooled)
        .monitoring(SimDuration::from_secs(5))
        .autopilot(autopilot)
        .telemetry(true)
        .build();
    db.start_traced_oltp(trace.clone(), THINK);
    db.run_for(trace.horizon());
    db.stop_clients();
    db.run_for(DRAIN);
    let rated = db.rated_peak_watts();
    let phases: Vec<PhaseSpan> = trace
        .phase_spans()
        .into_iter()
        .map(|(label, start, end)| {
            PhaseSpan::new(label, SimTime::ZERO + start, SimTime::ZERO + end)
        })
        .collect();
    let card = score_jsonl(&db.export_timeline_string(), &phases, rated)
        .expect("own timeline export scores");
    let policy = if autopilot { "autopilot" } else { "static" };
    println!(
        "{trace_name:>10} {policy:>9}: prop(rated)={:.3} prop(obs)={:.3} mean={:.1}W \
         peak={:.1}W committed={} wh/txn={:.5} p95_ceiling={:.0}ms nodes={:?}",
        card.proportionality_rated,
        card.proportionality_observed,
        card.mean_watts,
        card.peak_watts,
        card.committed,
        card.wh_per_txn,
        card.p95_ceiling_ms,
        card.nodes_powered,
    );
    Cell {
        trace: trace_name,
        policy,
        card,
    }
}

fn json(cells: &[Cell]) -> String {
    let mut out = String::from("{\n  \"bench\": \"energy_scorecard\",\n");
    out.push_str(&format!(
        "  \"seed\": {SEED},\n  \"p95_bound\": {P95_BOUND:.1},\n  \"cells\": [\n"
    ));
    for (i, cell) in cells.iter().enumerate() {
        let c = &cell.card;
        out.push_str(&format!(
            "    {{\"trace\": \"{}\", \"policy\": \"{}\", \"windows\": {}, \
             \"proportionality_rated\": {:.4}, \"proportionality_observed\": {:.4}, \
             \"mean_watts\": {:.2}, \"peak_watts\": {:.2}, \"rated_watts\": {:.2}, \
             \"committed_txns\": {}, \"wh_per_txn\": {:.6}, \"p95_ceiling_ms\": {:.1}, \
             \"nodes_powered\": [",
            cell.trace,
            cell.policy,
            c.windows,
            c.proportionality_rated,
            c.proportionality_observed,
            c.mean_watts,
            c.peak_watts,
            c.rated_watts,
            c.committed,
            c.wh_per_txn,
            c.p95_ceiling_ms,
        ));
        for (j, (nodes, windows)) in c.nodes_powered.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{nodes}, {windows}]"));
        }
        out.push_str("], \"phases\": [");
        for (j, p) in c.phases.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"label\": \"{}\", \"windows\": {}, \"mean_watts\": {:.2}, \
                 \"committed_txns\": {}, \"wh_per_txn\": {:.6}}}",
                p.label, p.windows, p.mean_watts, p.committed, p.wh_per_txn,
            ));
        }
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn find<'a>(cells: &'a [Cell], trace: &str, policy: &str) -> &'a Cell {
    cells
        .iter()
        .find(|c| c.trace == trace && c.policy == policy)
        .expect("matrix cell present")
}

fn main() {
    println!("Energy scorecard — {{diurnal, flash-crowd, tenant-mix}} x {{autopilot, static}}");
    let traces: [(&'static str, LoadTrace); 3] = [
        ("diurnal", diurnal()),
        ("flash-crowd", flash_crowd()),
        ("tenant-mix", tenant_mix()),
    ];
    let mut cells = Vec::with_capacity(6);
    for (name, trace) in &traces {
        cells.push(run_cell(name, trace, true));
        cells.push(run_cell(name, trace, false));
    }

    // Write the artifact BEFORE the acceptance gates (CI uploads even a
    // failing run's numbers), at the repo root whatever CWD ran us.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_energy.json");
    std::fs::write(&path, json(&cells)).expect("write BENCH_energy.json");
    println!("wrote {}", path.display());

    // Acceptance gates.
    assert_eq!(cells.len(), 6, "full 3x2 matrix present");
    for c in &cells {
        assert!(
            c.card.windows > 0 && c.card.committed > 0,
            "{} / {} cell did no work",
            c.trace,
            c.policy
        );
    }
    let auto = find(&cells, "diurnal", "autopilot");
    let stat = find(&cells, "diurnal", "static");
    assert!(
        auto.card.proportionality_rated > stat.card.proportionality_rated,
        "autopilot proportionality {:.4} must strictly beat static {:.4} on the diurnal trace",
        auto.card.proportionality_rated,
        stat.card.proportionality_rated
    );
    let p95_static = stat.card.p95_ceiling_ms.max(1.0);
    assert!(
        auto.card.p95_ceiling_ms <= P95_BOUND * p95_static,
        "autopilot p95 ceiling {:.0} ms exceeds {P95_BOUND}x the static baseline's {:.0} ms",
        auto.card.p95_ceiling_ms,
        stat.card.p95_ceiling_ms
    );
    println!(
        "gates: diurnal proportionality autopilot {:.3} > static {:.3}; \
         p95 {:.0} ms <= {P95_BOUND}x {:.0} ms",
        auto.card.proportionality_rated,
        stat.card.proportionality_rated,
        auto.card.p95_ceiling_ms,
        stat.card.p95_ceiling_ms
    );
}
