//! Fig. 2 — "Offloading queries, throughput".
//!
//! Concurrent scan+sort queries with the sort either colocated with the
//! data (L SORT/GROUP) or offloaded to a second node (R SORT/GROUP). The
//! paper's shape: local wins at low concurrency (no network), offloading
//! wins once the data node's CPU and buffer saturate.

use wattdb_bench::fig2_throughput;

fn main() {
    const ROWS: u64 = 5_000;
    println!("Fig. 2 — offloading blocking operators (scan+sort, {ROWS} rows/query)");
    println!(
        "{:>12} {:>16} {:>16} {:>8}",
        "concurrent", "local qps", "offloaded qps", "winner"
    );
    for n in [1u64, 10, 100, 1000] {
        let local = fig2_throughput(n, false, ROWS);
        let remote = fig2_throughput(n, true, ROWS);
        let winner = if local >= remote { "local" } else { "remote" };
        println!("{n:>12} {local:>16.2} {remote:>16.2} {winner:>8}");
    }
}
