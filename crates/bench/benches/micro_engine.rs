//! Criterion micro-benchmarks for the engine's core data structures:
//! B+-tree, slotted page, lock manager, MVCC read path, buffer pool.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use wattdb_common::{Key, KeyRange, PageId, SegmentId, TableId, TxnId};
use wattdb_index::{BPlusTree, SegmentIndex};
use wattdb_storage::{BufferPool, PageStore, Record, SlottedPage};
use wattdb_txn::mvcc::{self, Snapshot};
use wattdb_txn::{LockManager, LockMode, LockTarget};

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.bench_function("insert_10k_scattered", |b| {
        b.iter_batched(
            BPlusTree::<u64>::new,
            |mut t| {
                for i in 0..10_000u64 {
                    t.insert(Key((i * 2_654_435_761) % 1_000_003), i);
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    let mut tree = BPlusTree::new();
    for i in 0..100_000u64 {
        tree.insert(Key(i), i);
    }
    g.bench_function("point_lookup_100k", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 54_321) % 100_000;
            std::hint::black_box(tree.get(Key(k)).0)
        })
    });
    g.bench_function("range_scan_1k_of_100k", |b| {
        b.iter(|| std::hint::black_box(tree.range(KeyRange::new(Key(40_000), Key(41_000)))))
    });
    g.finish();
}

fn bench_page(c: &mut Criterion) {
    let mut g = c.benchmark_group("slotted_page");
    g.bench_function("insert_until_full", |b| {
        b.iter_batched(
            SlottedPage::new,
            |mut p| {
                while p.fits(64) {
                    p.insert(b"payload.", 64).unwrap();
                }
                p
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock_manager");
    g.bench_function("acquire_release_hierarchy", |b| {
        let mut lm = LockManager::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let txn = TxnId(t);
            lm.acquire(txn, LockTarget::Table(TableId(1)), LockMode::IX);
            lm.acquire(
                txn,
                LockTarget::Record(TableId(1), Key(t % 1000)),
                LockMode::X,
            );
            lm.release_all(txn)
        })
    });
    g.finish();
}

fn bench_mvcc(c: &mut Criterion) {
    let mut g = c.benchmark_group("mvcc");
    let seg = SegmentId(1);
    let mut store = PageStore::new();
    store.add_segment(seg);
    let mut idx = SegmentIndex::new(seg, KeyRange::all());
    for i in 0..10_000u64 {
        let rec = Record::new(Key(i), 1, 64, vec![0; 8]);
        let (rid, _) = store.insert_record(seg, &rec, u32::MAX).unwrap();
        idx.insert(Key(i), rid);
    }
    g.bench_function("snapshot_read_10k", |b| {
        let snap = Snapshot {
            ts: 100,
            txn: TxnId(99),
        };
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7_919) % 10_000;
            std::hint::black_box(mvcc::read(&idx, &store, Key(k), snap).unwrap())
        })
    });
    g.finish();
}

fn bench_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer_pool");
    g.bench_function("fetch_hit", |b| {
        let mut bp = BufferPool::new(1024);
        for i in 0..1024u32 {
            bp.fetch_pin(PageId::new(SegmentId(1), i));
            bp.unpin(PageId::new(SegmentId(1), i), false);
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 37) % 1024;
            let p = PageId::new(SegmentId(1), i);
            let f = bp.fetch_pin(p);
            bp.unpin(p, false);
            std::hint::black_box(f)
        })
    });
    g.bench_function("fetch_miss_evict", |b| {
        let mut bp = BufferPool::new(256);
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            let p = PageId::new(SegmentId(1), i);
            let f = bp.fetch_pin(p);
            bp.unpin(p, false);
            std::hint::black_box(f)
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_btree, bench_page, bench_locks, bench_mvcc, bench_buffer
);
criterion_main!(benches);
