//! Fig. 1 — "Micro-benchmark testing record throughput".
//!
//! Paper series (records/second): local TBSCAN ≈ 40 000; + local PROJECT
//! ≈ 34 000; remote PROJECT single-record < 1 000; remote PROJECT
//! vectorized ≈ 24 000; + remote BUFFER ≈ 30 000.

use wattdb_bench::{fig1_configs, fig1_throughput};

fn main() {
    const ROWS: u64 = 20_000;
    println!("Fig. 1 — record throughput micro-benchmark ({ROWS} records)");
    println!("{:<45} {:>12}", "configuration", "records/sec");
    for cfg in fig1_configs() {
        let tput = fig1_throughput(&cfg, ROWS);
        println!("{:<45} {:>12.0}", cfg.label, tput);
    }
}
