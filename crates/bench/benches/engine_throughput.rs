//! Engine throughput — what one simulated second costs in wall-clock
//! time, across the client-population ladder and both client modes.
//!
//! The hot-path batching work (aggregated arrivals, timer-wheel kernel,
//! lazy heat decay) exists to make huge modeled populations cheap. This
//! bench proves it: a {1×, 10×, 100×} × {per-client, pooled} matrix over
//! the same TPC-C deployment, reporting events/sec, committed (modeled)
//! txns/sec, and wall-clock-per-sim-second per cell, written to
//! `BENCH_throughput.json` for CI to validate and upload.
//!
//! The 100× per-client cell is run as a short measurement slice — the
//! point of the pooled mode is precisely that a full per-client run at
//! that scale is not worth anyone's wall clock — while the pooled 100×
//! cell completes the full horizon.

use std::time::Instant;

use wattdb_common::{NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;
use wattdb_core::ClientBatching;
use wattdb_tpcc::carrier_split;

/// Mean think time, fixed across every cell: the population ladder scales
/// the *offered load* (n / think), which is what the engine pays for.
const THINK: SimDuration = SimDuration::from_secs(10);
/// Full measurement horizon in simulated seconds.
const FULL_SIM_SECS: u64 = 30;
/// Measurement slice for the infeasible per-client 100× cell.
const SLICE_SIM_SECS: u64 = 1;
/// Warm-up before the measured window, in simulated seconds.
const WARMUP_SIM_SECS: u64 = 2;

struct Cell {
    scale: &'static str,
    mode: &'static str,
    modeled: u32,
    carriers: u32,
    weight: u64,
    sim_secs: f64,
    wall_secs: f64,
    events: u64,
    committed: u64,
    full_run: bool,
}

impl Cell {
    fn events_per_wall_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(1e-9)
    }
    fn txns_per_wall_sec(&self) -> f64 {
        self.committed as f64 / self.wall_secs.max(1e-9)
    }
    fn wall_per_sim_sec(&self) -> f64 {
        self.wall_secs / self.sim_secs.max(1e-9)
    }
}

fn build(batching: ClientBatching) -> WattDb {
    WattDb::builder()
        .nodes(6)
        .scheme(Scheme::Physiological)
        .warehouses(8)
        .density(0.05)
        .segment_pages(16)
        .seed(11)
        .initial_data_nodes(&[NodeId(0), NodeId(1), NodeId(2)])
        .client_batching(batching)
        .build()
}

fn run_cell(
    scale: &'static str,
    n: u32,
    pooled: bool,
    warm_ms: u64,
    sim_secs: u64,
    full_run: bool,
) -> Cell {
    let batching = if pooled {
        ClientBatching::Pooled
    } else {
        ClientBatching::PerClient
    };
    let mut db = build(batching);
    let (carriers, weight) = if pooled { carrier_split(n) } else { (n, 1) };
    db.start_oltp(n, THINK);
    assert_eq!(db.pooled_clients(), pooled, "forced mode must stick");
    // Warm-up outside the measurement: dataset pages fault in, the first
    // arrivals stagger out. The infeasible slice cell keeps this short —
    // even its warm-up costs real wall time.
    db.run_for(SimDuration::from_millis(warm_ms));
    let (events0, committed0) = (db.events_executed(), db.completed());
    let t0 = Instant::now();
    db.run_for(SimDuration::from_secs(sim_secs));
    let wall_secs = t0.elapsed().as_secs_f64();
    let cell = Cell {
        scale,
        mode: if pooled { "pooled" } else { "per-client" },
        modeled: n,
        carriers,
        weight,
        sim_secs: sim_secs as f64,
        wall_secs,
        events: db.events_executed() - events0,
        committed: db.completed() - committed0,
        full_run,
    };
    println!(
        "{:>4} {:>10} n={:<7} carriers={:<5} w={:<3} sim={:>3.0}s wall={:>7.3}s \
         {:>12.0} ev/s {:>10.0} txn/s {:>8.4} wall-s/sim-s",
        cell.scale,
        cell.mode,
        cell.modeled,
        cell.carriers,
        cell.weight,
        cell.sim_secs,
        cell.wall_secs,
        cell.events_per_wall_sec(),
        cell.txns_per_wall_sec(),
        cell.wall_per_sim_sec(),
    );
    cell
}

fn json(cells: &[Cell], speedup: f64) -> String {
    let mut out = String::from("{\n  \"bench\": \"engine_throughput\",\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scale\": \"{}\", \"mode\": \"{}\", \"modeled_clients\": {}, \
             \"carriers\": {}, \"weight\": {}, \"sim_secs\": {:.1}, \"wall_secs\": {:.4}, \
             \"events\": {}, \"committed_txns\": {}, \"events_per_wall_sec\": {:.1}, \
             \"committed_txns_per_wall_sec\": {:.1}, \"wall_per_sim_sec\": {:.5}, \
             \"full_run\": {}}}{}\n",
            c.scale,
            c.mode,
            c.modeled,
            c.carriers,
            c.weight,
            c.sim_secs,
            c.wall_secs,
            c.events,
            c.committed,
            c.events_per_wall_sec(),
            c.txns_per_wall_sec(),
            c.wall_per_sim_sec(),
            c.full_run,
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"speedup_pooled100x_vs_perclient10x_txns_per_wall_sec\": {speedup:.2}\n}}\n"
    ));
    out
}

fn main() {
    println!("Engine throughput — client-population ladder, per-client vs pooled");
    let warm = WARMUP_SIM_SECS * 1000;
    let cells = vec![
        run_cell("1x", 1_000, false, warm, FULL_SIM_SECS, true),
        run_cell("1x", 1_000, true, warm, FULL_SIM_SECS, true),
        run_cell("10x", 10_000, false, warm, FULL_SIM_SECS, true),
        run_cell("10x", 10_000, true, warm, FULL_SIM_SECS, true),
        // 100×: per-client runs a short slice (a full run is the problem
        // this PR removes); pooled completes the full horizon.
        run_cell("100x", 100_000, false, 500, SLICE_SIM_SECS, false),
        run_cell("100x", 100_000, true, warm, FULL_SIM_SECS, true),
    ];

    let pc10 = cells
        .iter()
        .find(|c| c.scale == "10x" && c.mode == "per-client")
        .unwrap();
    let pooled100 = cells
        .iter()
        .find(|c| c.scale == "100x" && c.mode == "pooled")
        .unwrap();
    let speedup = pooled100.txns_per_wall_sec() / pc10.txns_per_wall_sec().max(1e-9);
    println!(
        "\ncommitted txns/wall-sec: pooled@100x {:.0} vs per-client@10x {:.0} — {speedup:.1}x",
        pooled100.txns_per_wall_sec(),
        pc10.txns_per_wall_sec(),
    );

    // Write the artifact BEFORE the acceptance gates (CI uploads even a
    // failing run's numbers), at the repo root whatever CWD ran us.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_throughput.json");
    std::fs::write(&path, json(&cells, speedup)).expect("write BENCH_throughput.json");
    println!("wrote {}", path.display());

    // Acceptance gates.
    assert_eq!(cells.len(), 6, "all matrix cells present");
    assert!(
        pooled100.full_run && pooled100.committed > 0,
        "pooled must complete the full 100x horizon with work done"
    );
    assert!(
        cells.iter().all(|c| c.committed > 0),
        "every cell commits transactions"
    );
    assert!(
        speedup >= 10.0,
        "pooled@100x must deliver >=10x committed txns per wall-second \
         over per-client@10x, got {speedup:.1}x"
    );
}
