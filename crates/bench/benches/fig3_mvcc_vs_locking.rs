//! Fig. 3 — "MVCC vs MGL-RX: performance and storage space consumption of
//! workloads with different amount of updates while moving records".
//!
//! The paper reports MVCC throughput 15 % higher at read-only up to ~90 %
//! higher for pure writers, at the cost of higher storage (version chains)
//! vs. locking's pending-change lists.

use wattdb_bench::fig3_run;
use wattdb_txn::CcMode;

fn main() {
    println!("Fig. 3 — MVCC vs MGL-RX while moving 50% of the records");
    println!(
        "{:>10} {:>14} {:>14} {:>9} {:>12} {:>12}",
        "update %", "MVCC TA/min", "MGL TA/min", "MVCC/MGL", "MVCC space", "MGL space"
    );
    for pct in [0u32, 20, 40, 60, 80, 100] {
        let mvcc = fig3_run(pct, CcMode::Mvcc);
        let lock = fig3_run(pct, CcMode::LockingRx);
        println!(
            "{:>10} {:>14.0} {:>14.0} {:>9.2} {:>11.0}% {:>11.0}%",
            pct,
            mvcc.ta_per_minute,
            lock.ta_per_minute,
            mvcc.ta_per_minute / lock.ta_per_minute.max(1e-9),
            mvcc.storage_ratio * 100.0,
            lock.storage_ratio * 100.0,
        );
    }
}
