//! Ablation — segment size (the unit of movement).
//!
//! The paper fixes segments at 32 MB / 4096 pages. Smaller segments give
//! finer-grained moves (shorter per-segment write stalls) but more of
//! them, plus larger top indexes.

use wattdb_common::{NodeId, SimDuration};
use wattdb_core::api::WattDb;
use wattdb_core::cluster::Scheme;

fn main() {
    println!("Ablation — segment size vs. physiological rebalance");
    println!(
        "{:>14} {:>10} {:>14} {:>16}",
        "segment pages", "segments", "moved segs", "rebalance (s)"
    );
    for pages in [8u32, 16, 64, 256] {
        let mut db = WattDb::builder()
            .nodes(6)
            .scheme(Scheme::Physiological)
            .warehouses(4)
            .density(0.02)
            .io_scale(300)
            .segment_pages(pages)
            .seed(11)
            .initial_data_nodes(&[NodeId(0), NodeId(1)])
            .build();
        db.start_oltp(8, SimDuration::from_millis(100));
        db.run_for(SimDuration::from_secs(10));
        let segments = db.segment_count();
        db.rebalance(0.5, &[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
        for _ in 0..200 {
            db.run_for(SimDuration::from_secs(5));
            if !db.rebalancing() {
                break;
            }
        }
        db.stop_clients();
        let report = db.last_rebalance();
        match report {
            Some(r) => println!(
                "{pages:>14} {segments:>10} {:>14} {:>16.1}",
                r.segments_moved,
                r.finished.since(r.started).as_secs_f64()
            ),
            None => println!(
                "{pages:>14} {segments:>10} {:>14} {:>16}",
                "-", "unfinished"
            ),
        }
    }
}
