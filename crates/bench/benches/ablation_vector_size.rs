//! Ablation — volcano batch (vector) size for a remote operator boundary.
//!
//! §3.3 argues vectorization rescues remote placement; this sweep shows
//! the diminishing returns curve from single-record to 4096-record calls
//!.

use wattdb_bench::{fig1_throughput, Fig1Config};

fn main() {
    const ROWS: u64 = 20_000;
    println!("Ablation — vector size at a remote projection boundary");
    println!("{:>10} {:>14}", "batch", "records/sec");
    for batch in [1u64, 4, 16, 64, 128, 512, 1024, 4096] {
        let cfg = Fig1Config {
            label: "sweep",
            batch,
            remote: true,
            project: true,
            buffered: false,
        };
        println!("{batch:>10} {:>14.0}", fig1_throughput(&cfg, ROWS));
    }
}
