//! Fig. 8 — "Improving the benchmark results for physiological
//! partitioning": plain physiological rebalancing vs. rebalancing with two
//! helper nodes attached for log shipping and rDMA buffer extension.
//!
//! Paper shape: helpers raise power draw during the window but improve
//! response times and throughput; energy per query worsens — performance
//! is bought with energy, and the helpers are turned off afterwards.

use wattdb_bench::{print_series, run_scheme_experiment, SchemeExperiment};
use wattdb_core::cluster::Scheme;

fn main() {
    println!("Fig. 8 — physiological vs physiological + helper nodes\n");
    let plain = run_scheme_experiment(SchemeExperiment {
        scheme: Scheme::Physiological,
        ..Default::default()
    });
    print_series("physiological", &plain);
    let helped = run_scheme_experiment(SchemeExperiment {
        scheme: Scheme::Physiological,
        helpers: true,
        ..Default::default()
    });
    print_series("physiological + helper", &helped);
}
