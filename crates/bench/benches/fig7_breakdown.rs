//! Fig. 7 — "Impact factors on query runtime when rebalancing".
//!
//! Mean per-query time by component (logging, latching, locking, network
//! I/O, disk I/O, other) in three situations: normal operation, while
//! rebalancing, and rebalancing improved (helper nodes). Paper findings:
//! disk I/O and locking grow most while rebalancing; network time stays
//! nearly unchanged; logging takes significantly longer; helpers claw much
//! of it back.

use wattdb_bench::{print_breakdown, run_scheme_experiment, SchemeExperiment};
use wattdb_core::cluster::Scheme;
use wattdb_core::metrics::Phase;

fn main() {
    println!("Fig. 7 — impact factors on query runtime when rebalancing\n");
    let plain = run_scheme_experiment(SchemeExperiment {
        scheme: Scheme::Physiological,
        ..Default::default()
    });
    print_breakdown("normal operation", &plain.db, Phase::Normal);
    print_breakdown("while rebalancing", &plain.db, Phase::Rebalancing);
    let improved = run_scheme_experiment(SchemeExperiment {
        scheme: Scheme::Physiological,
        helpers: true,
        ..Default::default()
    });
    print_breakdown(
        "rebalancing improved",
        &improved.db,
        Phase::RebalancingImproved,
    );
}
