//! placeholder
