//! WattDB-RS umbrella crate.
//!
//! Re-exports every subsystem under one roof so applications can depend on
//! a single crate. The system-level integration tests (the repo-root
//! `tests/`) and the runnable examples (repo-root `examples/`) are wired
//! into this crate's manifest.
//!
//! ```
//! use wattdb_integration::prelude::*;
//!
//! let mut db = WattDb::builder()
//!     .nodes(4)
//!     .warehouses(2)
//!     .density(0.01)
//!     .initial_data_nodes(&[NodeId(0), NodeId(1)])
//!     .build();
//! db.start_oltp(4, SimDuration::from_millis(100));
//! db.run_for(SimDuration::from_secs(5));
//! assert!(db.completed() > 0);
//! ```

pub use wattdb_common as common;
pub use wattdb_core as core;
pub use wattdb_energy as energy;
pub use wattdb_index as index;
pub use wattdb_net as net;
pub use wattdb_query as query;
pub use wattdb_sim as sim;
pub use wattdb_storage as storage;
pub use wattdb_tpcc as tpcc;
pub use wattdb_txn as txn;
pub use wattdb_wal as wal;

/// The names almost every embedding needs.
pub mod prelude {
    pub use wattdb_common::{NodeId, SimDuration, SimTime};
    pub use wattdb_core::api::{ClusterStatus, NodeStatus, WattDb, WattDbBuilder};
    pub use wattdb_core::autopilot::{AutoPilotConfig, ControlEvent, Outcome};
    pub use wattdb_core::cluster::Scheme;
    pub use wattdb_core::policy::{Decision, PolicyConfig};
}
