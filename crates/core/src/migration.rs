//! The migration engine: physical, logical, and physiological
//! repartitioning (§4 of the paper).
//!
//! * **Physical** (§4.1): whole segments are copied to another node's disk
//!   under a short segment latch. Logical ownership does not change, so
//!   subsequent accesses from the owner pay a remote page fetch — the
//!   paper's reason physical partitioning "is not usable for a dynamic
//!   cluster".
//! * **Logical** (§4.2): records in a key range are deleted at the source
//!   and inserted at the target inside system transactions, batch by
//!   batch; ownership (and the router) moves with each batch. Scan I/O and
//!   record locking make this the slowest but fully general scheme.
//! * **Physiological** (§4.3): whole segments move *with their primary-key
//!   indexes*; only the two partitions' top indexes and the master's dual
//!   pointers are updated. The §4.3 protocol is followed step by step:
//!   master updated first, read lock on the source segment (waits out
//!   updaters, blocks new writers, never blocks readers under MVCC), bulk
//!   copy at raw device speed, ownership switch, redirect window, cleanup.
//!
//! Bulk I/O volumes are multiplied by `cfg.io_scale` so the scaled-down
//! dataset produces the paper's 100 GB-class transfer times (see
//! [`crate::api::WattDbBuilder::io_scale`]).

use std::collections::VecDeque;

use wattdb_common::{
    ByteSize, Key, KeyRange, NodeId, SegmentId, SimDuration, SimTime, TableId, TxnId,
};
use wattdb_planner::Planner;
use wattdb_sim::{EventFn, Sim};
use wattdb_tpcc::TpccTable;
use wattdb_txn::{LockAcquire, LockMode, LockTarget, TxnKind};
use wattdb_wal::LogPayload;

use crate::cluster::{Cluster, ClusterRc, Scheme};
use crate::executor::{resume_grants, Waiter};

/// One planned segment move.
#[derive(Debug, Clone, Copy)]
pub struct SegmentMove {
    /// Moving segment.
    pub seg: SegmentId,
    /// Table it belongs to.
    pub table: TableId,
    /// Covered key range.
    pub range: KeyRange,
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
}

impl From<&wattdb_planner::PlannedMove> for SegmentMove {
    fn from(m: &wattdb_planner::PlannedMove) -> Self {
        SegmentMove {
            seg: m.seg,
            table: m.table,
            range: m.range,
            from: m.from,
            to: m.to,
        }
    }
}

/// One planned logical range move (per table, per source).
#[derive(Debug, Clone, Copy)]
pub struct RangeMove {
    /// Table.
    pub table: TableId,
    /// Key range whose records move.
    pub range: KeyRange,
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
}

/// Per-source migration chain state.
pub struct MoverChain {
    /// Chain id (used as the lock-waiter token).
    pub id: u64,
    /// Pending segment moves (physical/physiological).
    pub segments: VecDeque<SegmentMove>,
    /// Pending range moves (logical).
    pub ranges: VecDeque<RangeMove>,
    /// Cursor within the current logical range.
    pub cursor: Option<Key>,
    /// The system transaction currently held, if any.
    pub txn: Option<TxnId>,
    /// The segment currently locked/copied, if any.
    pub current: Option<SegmentMove>,
    /// Done flag.
    pub done: bool,
}

/// Cluster-wide migration controller.
pub struct MoveController {
    /// Scheme driving this rebalance.
    pub scheme: Scheme,
    /// Planner that produced the plan being executed.
    pub planner: Planner,
    /// Chains by id.
    pub chains: Vec<MoverChain>,
    /// Start time.
    pub started: SimTime,
    /// Completion time, when finished.
    pub finished: Option<SimTime>,
    /// Segments moved.
    pub segments_moved: u64,
    /// Records moved (logical).
    pub records_moved: u64,
    /// Bytes shipped (after io_scale).
    pub bytes_moved: u64,
    /// Access heat the plan intended to relocate (decayed, at plan time).
    pub heat_planned: f64,
    /// Access heat actually relocated so far (decayed, at move time).
    pub heat_moved: f64,
    /// Tracing span covering this rebalance, closed by `maybe_finish`.
    pub span: Option<wattdb_telemetry::SpanId>,
    /// Child span covering the targets' power-on + boot, closed when the
    /// first chain starts moving.
    pub power_span: Option<wattdb_telemetry::SpanId>,
}

impl MoveController {
    /// True once every chain has drained.
    pub fn all_done(&self) -> bool {
        self.chains.iter().all(|c| c.done)
    }

    /// Drop every *pending* move that sources from or targets `node` — the
    /// failover path's way of keeping a dead node out of the remaining
    /// plan. A move already in flight is left alone here;
    /// `segment_copy_done`'s failed-node guard voids it when the copy
    /// completes against a corpse.
    pub fn drop_node(&mut self, node: NodeId) {
        for ch in &mut self.chains {
            ch.segments.retain(|m| m.from != node && m.to != node);
            ch.ranges.retain(|m| m.from != node && m.to != node);
        }
    }
}

/// Plan which segments leave each source: the upper `fraction` of each
/// (table, source) partition's key-ordered segments, paired with targets
/// round-robin.
pub fn plan_segment_moves(
    c: &Cluster,
    fraction: f64,
    sources: &[NodeId],
    targets: &[NodeId],
) -> Vec<SegmentMove> {
    let mut moves = Vec::new();
    for (i, &src) in sources.iter().enumerate() {
        let to = targets[i % targets.len()];
        for part in c.partitions.values().filter(|p| p.node == src) {
            let segs = part.top.segments();
            if segs.is_empty() {
                continue;
            }
            let keep = ((segs.len() as f64) * (1.0 - fraction)).round() as usize;
            for (seg, range) in segs.into_iter().skip(keep) {
                moves.push(SegmentMove {
                    seg,
                    table: part.table,
                    range,
                    from: src,
                    to,
                });
            }
        }
    }
    moves
}

/// Plan logical range moves: the upper `fraction` *of the records* of each
/// (table, source) partition. The cut point is found by walking the
/// partition's segments in key order and accumulating their record counts
/// — cutting the raw key-space envelope instead would be meaningless,
/// since edge partitions extend to the key-space limits.
pub fn plan_range_moves(
    c: &Cluster,
    fraction: f64,
    sources: &[NodeId],
    targets: &[NodeId],
) -> Vec<RangeMove> {
    let mut moves = Vec::new();
    for (i, &src) in sources.iter().enumerate() {
        let to = targets[i % targets.len()];
        for part in c.partitions.values().filter(|p| p.node == src) {
            let segs = part.top.segments();
            if segs.is_empty() {
                continue;
            }
            let total: u64 = segs
                .iter()
                .map(|(s, _)| c.seg_dir.get(*s).map(|m| m.records).unwrap_or(0))
                .sum();
            if total == 0 {
                continue;
            }
            let keep = ((total as f64) * (1.0 - fraction)) as u64;
            let mut cum = 0u64;
            let mut cut = None;
            for (s, range) in &segs {
                if cum >= keep {
                    cut = Some(range.start);
                    break;
                }
                cum += c.seg_dir.get(*s).map(|m| m.records).unwrap_or(0);
            }
            let Some(cut) = cut else {
                continue;
            };
            let end = segs.last().expect("non-empty").1.end;
            let range = KeyRange::new(cut, end);
            if !range.is_empty() {
                moves.push(RangeMove {
                    table: part.table,
                    range,
                    from: src,
                    to,
                });
            }
        }
    }
    moves
}

/// Start a rebalance moving `fraction` of each source's data to `targets`
/// using the legacy fraction heuristic. Targets are powered on; copies
/// start after a boot delay.
pub fn start_rebalance(
    cl: &ClusterRc,
    sim: &mut Sim,
    fraction: f64,
    sources: &[NodeId],
    targets: &[NodeId],
) {
    let scheme = cl.borrow().cfg.scheme;
    let chains: Vec<MoverChain> = {
        let c = cl.borrow();
        match scheme {
            Scheme::Physical | Scheme::Physiological => {
                let all = plan_segment_moves(&c, fraction, sources, targets);
                chains_for_segments(sources, &all)
            }
            Scheme::Logical => {
                let all = plan_range_moves(&c, fraction, sources, targets);
                sources
                    .iter()
                    .enumerate()
                    .map(|(i, &src)| MoverChain {
                        id: i as u64,
                        segments: VecDeque::new(),
                        ranges: all.iter().filter(|m| m.from == src).copied().collect(),
                        cursor: None,
                        txn: None,
                        current: None,
                        done: false,
                    })
                    .collect()
            }
        }
    };
    launch(cl, sim, Planner::Fraction, chains, targets);
}

/// Start a rebalance executing externally planned segment moves (the
/// heat-aware planner's output, or any scripted plan). Requires a segment
/// scheme — logical repartitioning moves key ranges, not segments.
pub fn start_rebalance_planned(
    cl: &ClusterRc,
    sim: &mut Sim,
    planner: Planner,
    moves: Vec<SegmentMove>,
    targets: &[NodeId],
) {
    let scheme = cl.borrow().cfg.scheme;
    assert!(
        scheme != Scheme::Logical,
        "planned segment moves need a segment scheme (physical/physiological)"
    );
    let mut sources: Vec<NodeId> = moves.iter().map(|m| m.from).collect();
    sources.sort_unstable();
    sources.dedup();
    let chains = chains_for_segments(&sources, &moves);
    launch(cl, sim, planner, chains, targets);
}

/// One mover chain per source, carrying that source's share of the moves.
fn chains_for_segments(sources: &[NodeId], moves: &[SegmentMove]) -> Vec<MoverChain> {
    sources
        .iter()
        .enumerate()
        .map(|(i, &src)| MoverChain {
            id: i as u64,
            segments: moves.iter().filter(|m| m.from == src).copied().collect(),
            ranges: VecDeque::new(),
            cursor: None,
            txn: None,
            current: None,
            done: false,
        })
        .collect()
}

/// Power targets, install the controller, and schedule the chains after
/// the boot delay. A launch with nothing to move, or while another
/// rebalance is in flight, is a no-op: installing a chainless controller
/// would leave `rebalancing()` true forever (no step ever reaches
/// `maybe_finish`), and overwriting a live controller would let the old
/// plan's scheduled steps index into the new one's chains.
fn launch(
    cl: &ClusterRc,
    sim: &mut Sim,
    planner: Planner,
    chains: Vec<MoverChain>,
    targets: &[NodeId],
) {
    if chains.is_empty() || cl.borrow().mover.is_some() {
        return;
    }
    let n = chains.len();
    {
        let mut c = cl.borrow_mut();
        // Targets coming up from standby get a "power-up" child span; the
        // ones already active boot nothing.
        let powered: Vec<NodeId> = targets
            .iter()
            .copied()
            .filter(|&t| c.nodes[t.raw() as usize].state == wattdb_energy::NodeState::Standby)
            .collect();
        for &t in targets {
            c.power_on(t);
        }
        let now = sim.now();
        // What the plan intends to relocate, valued at plan time.
        let heat_planned: f64 = chains
            .iter()
            .flat_map(|ch| ch.segments.iter())
            .map(|m| c.heat.heat_of(m.seg, now).value())
            .sum();
        let sources: Vec<String> = chains
            .iter()
            .flat_map(|ch| {
                ch.segments
                    .iter()
                    .map(|m| m.from)
                    .chain(ch.ranges.iter().map(|m| m.from))
            })
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .map(|n| n.to_string())
            .collect();
        let scheme_label = format!("{:?}", c.cfg.scheme);
        let span = c.telemetry.start_span(
            "rebalance",
            now,
            vec![
                ("scheme".into(), scheme_label.into()),
                ("planner".into(), format!("{planner:?}").into()),
                ("heat_planned".into(), heat_planned.into()),
                ("chains".into(), n.into()),
                ("sources".into(), sources.into()),
                (
                    "targets".into(),
                    targets
                        .iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .into(),
                ),
            ],
        );
        let power_span = if powered.is_empty() {
            None
        } else {
            let ps = c.telemetry.spans.start_child("power-up", now, Some(span));
            c.telemetry.spans.set_attr(
                ps,
                "nodes",
                powered
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .into(),
            );
            Some(ps)
        };
        c.mover = Some(MoveController {
            scheme: c.cfg.scheme,
            planner,
            chains,
            started: now,
            finished: None,
            segments_moved: 0,
            records_moved: 0,
            bytes_moved: 0,
            heat_planned,
            heat_moved: 0.0,
            span: Some(span),
            power_span,
        });
    }
    // Boot delay for the freshly powered targets.
    for id in 0..n as u64 {
        let handle = cl.clone();
        sim.after(SimDuration::from_secs(5), move |sim| {
            next_step(&handle, sim, id)
        });
    }
}

/// Resume a mover chain parked on a lock.
pub fn resume_mover(cl: &ClusterRc, sim: &mut Sim, chain: u64) {
    let scheme = cl.borrow().mover.as_ref().map(|m| m.scheme);
    match scheme {
        Some(Scheme::Logical) => logical_batch_locked(cl, sim, chain),
        Some(_) => segment_lock_granted(cl, sim, chain),
        None => {}
    }
}

fn next_step(cl: &ClusterRc, sim: &mut Sim, chain: u64) {
    let scheme = {
        let mut c = cl.borrow_mut();
        let c = &mut *c;
        match &mut c.mover {
            Some(m) => {
                // First chain to start moving marks boot completion for
                // the freshly powered targets.
                if let Some(ps) = m.power_span.take() {
                    c.telemetry.spans.end(ps, sim.now());
                }
                m.scheme
            }
            None => return,
        }
    };
    match scheme {
        Scheme::Physical | Scheme::Physiological => next_segment_move(cl, sim, chain),
        Scheme::Logical => next_logical_batch(cl, sim, chain),
    }
}

// ---------------------------------------------------------------- segments

fn next_segment_move(cl: &ClusterRc, sim: &mut Sim, chain: u64) {
    let mv = {
        let mut c = cl.borrow_mut();
        let scheme = c.cfg.scheme;
        let m = c.mover.as_mut().expect("mover active");
        let Some(mv) = m.chains[chain as usize].segments.pop_front() else {
            m.chains[chain as usize].done = true;
            drop(c);
            try_finish(cl, sim);
            return;
        };
        m.chains[chain as usize].current = Some(mv);
        // §4.3 step 1: the master is updated first, keeping both pointers —
        // only under physiological partitioning (physical never changes
        // logical ownership).
        if scheme == Scheme::Physiological {
            let c = &mut *c;
            let target_pid = c.partition_on(mv.table, mv.to);
            c.router
                .begin_move(mv.table, mv.range, target_pid, mv.to)
                .expect("routable move");
        }
        mv
    };
    // §4.3 step 2: read-lock the segment; pre-existing updaters must commit
    // first. Readers are unaffected (MVCC) or share the lock (MGL: IS).
    let granted = {
        let mut c = cl.borrow_mut();
        let c = &mut *c;
        let txn = c.txn.begin(TxnKind::System);
        let m = c.mover.as_mut().expect("mover active");
        m.chains[chain as usize].txn = Some(txn);
        match c
            .txn
            .locks
            .acquire(txn, LockTarget::Segment(mv.seg), LockMode::S)
        {
            LockAcquire::Granted => true,
            LockAcquire::Waiting => {
                c.lock_waiters.insert(txn, Waiter::Mover(chain));
                false
            }
            LockAcquire::Deadlock => {
                // Movers only hold one lock; a deadlock here means a user
                // upgrade cycle — retry shortly.
                let grants = c
                    .txn
                    .abort(txn, &mut c.indexes, &mut c.store)
                    .unwrap_or_default();
                let m = c.mover.as_mut().expect("mover active");
                m.chains[chain as usize].segments.push_front(mv);
                m.chains[chain as usize].txn = None;
                drop(grants);
                let handle = cl.clone();
                sim.after(SimDuration::from_millis(20), move |sim| {
                    next_segment_move(&handle, sim, chain)
                });
                return;
            }
        }
    };
    if granted {
        segment_lock_granted(cl, sim, chain);
    }
}

fn segment_lock_granted(cl: &ClusterRc, sim: &mut Sim, chain: u64) {
    // §4.3 step 3: flush dirty pages (checkpoint semantics), then copy the
    // segment at raw device speed: source disk read and wire transfer
    // pipelined (join), destination write overlapped with receive.
    let (mv, bytes, src_disk_idx) = {
        let mut c = cl.borrow_mut();
        let c = &mut *c;
        let m = c.mover.as_mut().expect("mover active");
        let mv = m.chains[chain as usize].current.expect("current move");
        let meta = c.seg_dir.get(mv.seg).expect("segment meta");
        let footprint = meta
            .disk_footprint()
            .as_u64()
            .max(wattdb_storage::PAGE_SIZE as u64);
        let bytes = footprint * c.cfg.io_scale;
        m.bytes_moved += bytes;
        // Log the move bracket on the source's WAL.
        c.nodes[mv.from.raw() as usize].log.append(
            TxnId::NONE,
            LogPayload::SegmentMoveStart {
                segment: mv.seg,
                to_node: mv.to.raw(),
            },
        );
        // Dirty pages of the segment flush before the copy.
        let dirty: Vec<_> = c.nodes[mv.from.raw() as usize]
            .buffer
            .dirty_pages()
            .into_iter()
            .filter(|p| p.segment == mv.seg)
            .collect();
        for p in &dirty {
            c.nodes[mv.from.raw() as usize].buffer.mark_clean(*p);
        }
        (mv, bytes, meta.disk.index)
    };
    // Join: disk read ∥ network ship; completion when both finish.
    use std::cell::Cell;
    use std::rc::Rc;
    let remaining = Rc::new(Cell::new(2u8));
    let handle = cl.clone();
    let make_arm = |cl: &ClusterRc| -> EventFn {
        let remaining = remaining.clone();
        let handle = cl.clone();
        Box::new(move |sim: &mut Sim| {
            remaining.set(remaining.get() - 1);
            if remaining.get() == 0 {
                segment_copy_done(&handle, sim, chain);
            }
        })
    };
    {
        let mut c = cl.borrow_mut();
        let arm1 = make_arm(&handle);
        c.nodes[mv.from.raw() as usize].disks[src_disk_idx as usize].bulk_transfer(
            sim,
            ByteSize::bytes(bytes),
            arm1,
        );
    }
    {
        let c = cl.borrow();
        let arm2 = make_arm(&handle);
        c.net
            .send(sim, mv.from, mv.to, ByteSize::bytes(bytes), arm2);
    }
}

fn segment_copy_done(cl: &ClusterRc, sim: &mut Sim, chain: u64) {
    let mut follower_evicted = false;
    let grants = {
        let mut c = cl.borrow_mut();
        let c = &mut *c;
        let scheme = c.cfg.scheme;
        let now = sim.now();
        let m = c.mover.as_mut().expect("mover active");
        let mv = m.chains[chain as usize].current.take().expect("current");
        let txn = m.chains[chain as usize].txn.take().expect("mover txn");
        if c.failed.contains(&mv.from) || c.failed.contains(&mv.to) {
            // An endpoint died mid-copy: the copy's result is void. The
            // master's dual pointer rolls back (physiological only — the
            // other schemes never touched routing) and placement stays
            // put; failover re-covers ownership separately. The lock
            // releases so parked writers resume against the survivors.
            if scheme == Scheme::Physiological {
                c.router.abort_move(mv.table, mv.range).ok();
            }
            let (_, grants) = c.txn.commit(txn, &mut c.store).expect("system commit");
            grants
        } else {
            m.segments_moved += 1;
            m.heat_moved += c.heat.heat_of(mv.seg, now).value();
            let mover_span = m.span;
            match scheme {
                Scheme::Physiological => {
                    // §4.3 step 4: ownership switch — detach from the source's
                    // top index, attach to the target's; the per-segment PK
                    // index travels untouched. Then the master drops the old
                    // pointer.
                    let src_pid = c
                        .partitions
                        .values()
                        .find(|p| p.table == mv.table && p.node == mv.from)
                        .map(|p| p.id)
                        .expect("source partition");
                    let dst_pid = c.partition_on(mv.table, mv.to);
                    c.partitions
                        .get_mut(&src_pid)
                        .expect("src")
                        .top
                        .detach(mv.seg)
                        .expect("attached");
                    c.partitions
                        .get_mut(&dst_pid)
                        .expect("dst")
                        .top
                        .attach(mv.seg, mv.range)
                        .expect("tiles");
                    // Storage follows ownership (shared nothing): place on the
                    // target's SSD.
                    let n_disks = c.nodes[mv.to.raw() as usize].disks.len();
                    let disk_idx = if n_disks > 1 {
                        1 + (mv.seg.raw() as usize % (n_disks - 1))
                    } else {
                        0
                    };
                    c.seg_dir
                        .relocate(
                            mv.seg,
                            mv.to,
                            wattdb_common::DiskId::new(mv.to, disk_idx as u8),
                        )
                        .expect("relocate");
                    c.router
                        .complete_move(mv.table, mv.range)
                        .expect("complete move");
                    // Old buffered pages are dropped at the source.
                    c.nodes[mv.from.raw() as usize].buffer.evict_segment(mv.seg);
                    // Leadership follows ownership: the replica map tracks the
                    // move, the new leader's log becomes the segment's
                    // staleness reference, and shipping cursors re-wire to the
                    // new leader. A destination that held one of the segment's
                    // follower copies consumes it by becoming leader — the
                    // copy leaves the follower set *explicitly* and a backfill
                    // restores the factor instead of silently halving it.
                    if c.cfg.replication.enabled() && c.replicas.get(mv.seg).is_some() {
                        if c.replicas.followers_of(mv.seg).contains(&mv.to) {
                            c.replicas.remove_follower(mv.seg, mv.to);
                            follower_evicted = true;
                            if let Some(span) = mover_span {
                                c.telemetry.spans.add_event(
                                    span,
                                    now,
                                    "follower-evicted",
                                    vec![
                                        (
                                            "segment".into(),
                                            wattdb_telemetry::AttrValue::U64(mv.seg.raw()),
                                        ),
                                        ("node".into(), mv.to.to_string().into()),
                                    ],
                                );
                            }
                        }
                        c.replicas.set_leader(mv.seg, mv.to);
                        let lsn = c.nodes[mv.to.raw() as usize].log.last_lsn();
                        c.seg_last_write.insert(mv.seg, lsn);
                        c.sync_replica_cursors();
                    }
                }
                Scheme::Physical => {
                    // §4.1: only the physical placement changes; ownership and
                    // routing stay at the source. Future accesses pay the wire.
                    let n_disks = c.nodes[mv.to.raw() as usize].disks.len();
                    let disk_idx = if n_disks > 1 {
                        1 + (mv.seg.raw() as usize % (n_disks - 1))
                    } else {
                        0
                    };
                    c.seg_dir
                        .relocate(
                            mv.seg,
                            mv.to,
                            wattdb_common::DiskId::new(mv.to, disk_idx as u8),
                        )
                        .expect("relocate");
                    c.nodes[mv.from.raw() as usize].buffer.evict_segment(mv.seg);
                }
                Scheme::Logical => unreachable!("segment moves not used logically"),
            }
            c.nodes[mv.from.raw() as usize]
                .log
                .append(TxnId::NONE, LogPayload::SegmentMoveEnd { segment: mv.seg });
            // Release the segment lock: queued writers resume, redirected to
            // the new owner by routing on their next op.
            let (_, grants) = c.txn.commit(txn, &mut c.store).expect("system commit");
            grants
        }
    };
    resume_grants(cl, sim, grants);
    // The consumed copy left the segment under factor: backfill through
    // the shared re-replication machinery, unless copies are already on
    // the wire (then the autopilot's background-repair pass — the single
    // reconciliation point — picks up whatever remains short).
    if follower_evicted && cl.borrow().rereplication_inflight == 0 {
        crate::failover::schedule_rereplication(cl, sim);
    }
    next_segment_move(cl, sim, chain);
}

// ----------------------------------------------------------------- logical

fn next_logical_batch(cl: &ClusterRc, sim: &mut Sim, chain: u64) {
    // Pick the batch: up to `migration_batch` keys starting at the cursor.
    let planned = {
        let mut c = cl.borrow_mut();
        let c = &mut *c;
        let batch_size = c.cfg.migration_batch;
        loop {
            let (rm, cursor) = {
                let m = c.mover.as_mut().expect("mover active");
                let ch = &mut m.chains[chain as usize];
                match ch.ranges.front().copied() {
                    None => {
                        ch.done = true;
                        break None;
                    }
                    Some(rm) => (rm, ch.cursor.unwrap_or(rm.range.start)),
                }
            };
            // Collect keys from the source partition's segments.
            let src_part = c
                .partitions
                .values()
                .find(|p| p.table == rm.table && p.node == rm.from)
                .expect("source partition");
            let scan_range = KeyRange::new(cursor, rm.range.end);
            let mut keys: Vec<Key> = Vec::with_capacity(batch_size);
            'outer: for (seg, seg_range) in src_part.top.prune(scan_range) {
                let lo = seg_range.start.max(cursor);
                for (k, _) in c.indexes[&seg].range_scan(KeyRange::new(lo, rm.range.end)) {
                    keys.push(k);
                    if keys.len() >= batch_size {
                        break 'outer;
                    }
                }
            }
            if keys.is_empty() {
                // Range drained: commit any held range transaction (MGL-RX
                // releases its pending-change locks here), collapse routing,
                // move on.
                let leftover = {
                    let m = c.mover.as_mut().expect("mover active");
                    m.chains[chain as usize].txn.take()
                };
                if let Some(txn) = leftover {
                    let _ = c.txn.commit(txn, &mut c.store);
                }
                finish_logical_range(c, rm);
                let m = c.mover.as_mut().expect("mover active");
                let ch = &mut m.chains[chain as usize];
                ch.ranges.pop_front();
                ch.cursor = None;
                continue;
            }
            let last = *keys.last().expect("non-empty");
            let batch_end = if keys.len() < batch_size {
                rm.range.end
            } else {
                Key(last.raw() + 1)
            };
            let batch_range = KeyRange::new(cursor, batch_end);
            let m = c.mover.as_mut().expect("mover active");
            m.chains[chain as usize].cursor = Some(batch_end);
            break Some((rm, batch_range, keys));
        }
    };
    let Some((rm, batch_range, keys)) = planned else {
        try_finish(cl, sim);
        return;
    };
    // Master first: dual pointers for the batch range.
    {
        let mut c = cl.borrow_mut();
        let c = &mut *c;
        let dst_pid = c.partition_on(rm.table, rm.to);
        c.router
            .begin_move(rm.table, batch_range, dst_pid, rm.to)
            .expect("routable");
        // Under MGL-RX one system transaction spans the whole range move:
        // its locks (and before-images, the "pending changes") are held
        // until the move finishes (§3.5/Fig. 3). Under MVCC each batch
        // commits promptly so versions stamp and readers advance.
        let existing = c
            .mover
            .as_ref()
            .and_then(|m| m.chains[chain as usize].txn)
            .filter(|_| c.txn.mode() == wattdb_txn::CcMode::LockingRx);
        let txn = existing.unwrap_or_else(|| c.txn.begin(TxnKind::System));
        let m = c.mover.as_mut().expect("mover");
        m.chains[chain as usize].txn = Some(txn);
        m.chains[chain as usize].current = Some(SegmentMove {
            seg: SegmentId(u64::MAX),
            table: rm.table,
            range: batch_range,
            from: rm.from,
            to: rm.to,
        });
        m.records_moved += keys.len() as u64;
        // Stash keys for the apply step.
        c.pending_logical_keys = keys;
    }
    logical_acquire_locks(cl, sim, chain);
}

/// Acquire X locks on every key of the pending batch; park on conflict.
fn logical_batch_locked(cl: &ClusterRc, sim: &mut Sim, chain: u64) {
    logical_acquire_locks(cl, sim, chain)
}

fn logical_acquire_locks(cl: &ClusterRc, sim: &mut Sim, chain: u64) {
    enum Outcome {
        Ready,
        Parked,
        Deadlock,
    }
    let outcome = {
        let mut c = cl.borrow_mut();
        let c = &mut *c;
        let m = c.mover.as_ref().expect("mover");
        let txn = m.chains[chain as usize].txn.expect("txn");
        let mv = m.chains[chain as usize].current.expect("current");
        // §3.5: under MVCC the mover needs no record locks — readers use
        // old versions and writers version on top; only the MGL-RX
        // baseline X-locks the batch (its "pending changes" cost, Fig. 3).
        let keys = if c.txn.mode() == wattdb_txn::CcMode::Mvcc {
            Vec::new()
        } else {
            c.pending_logical_keys.clone()
        };
        let mut out = Outcome::Ready;
        for k in keys {
            match c
                .txn
                .locks
                .acquire(txn, LockTarget::Record(mv.table, k), LockMode::X)
            {
                LockAcquire::Granted => continue,
                LockAcquire::Waiting => {
                    c.lock_waiters.insert(txn, Waiter::Mover(chain));
                    out = Outcome::Parked;
                    break;
                }
                LockAcquire::Deadlock => {
                    out = Outcome::Deadlock;
                    break;
                }
            }
        }
        match out {
            Outcome::Deadlock => {
                let grants = c
                    .txn
                    .abort(txn, &mut c.indexes, &mut c.store)
                    .unwrap_or_default();
                c.lock_waiters.remove(&txn);
                // Rewind the batch: routing + cursor.
                let m = c.mover.as_mut().expect("mover");
                let mv = m.chains[chain as usize].current.take().expect("current");
                m.chains[chain as usize].txn = None;
                m.chains[chain as usize].cursor = Some(mv.range.start);
                c.router.abort_move(mv.table, mv.range).ok();
                drop(grants);
                Outcome::Deadlock
            }
            o => o,
        }
    };
    match outcome {
        Outcome::Ready => logical_copy_records(cl, sim, chain),
        Outcome::Parked => {}
        Outcome::Deadlock => {
            let handle = cl.clone();
            sim.after(SimDuration::from_millis(20), move |sim| {
                next_logical_batch(&handle, sim, chain)
            });
        }
    }
}

fn logical_copy_records(cl: &ClusterRc, sim: &mut Sim, chain: u64) {
    // Charge the batch's hardware demands, then apply the record moves.
    let (mv, scan_bytes, ship_bytes, src_disk, cpu) = {
        let mut c = cl.borrow_mut();
        let c = &mut *c;
        let m = c.mover.as_ref().expect("mover");
        let mv = m.chains[chain as usize].current.expect("current");
        let keys = &c.pending_logical_keys;
        // Pages touched while hunting the records (scattered): one page per
        // record, scaled.
        let pages = keys.len() as u64;
        let scan_bytes = pages * wattdb_storage::PAGE_SIZE as u64 * c.cfg.io_scale / 8;
        let width: u64 = 128; // mixed-table average row image
        let ship_bytes = keys.len() as u64 * width * c.cfg.io_scale;
        let cpu = c.cfg.costs.scan_per_record * keys.len() as u64 * 2;
        let meta_disk = c
            .seg_dir
            .on_node(mv.from)
            .next()
            .map(|s| s.disk.index)
            .unwrap_or(1);
        let mm = c.mover.as_mut().expect("mover");
        mm.bytes_moved += ship_bytes;
        (mv, scan_bytes, ship_bytes, meta_disk, cpu)
    };
    let handle = cl.clone();
    // Chain: scan I/O → CPU → wire → apply.
    let after_wire: EventFn = Box::new(move |sim| logical_apply_batch(&handle, sim, chain));
    let handle2 = cl.clone();
    let after_cpu: EventFn = Box::new(move |sim| {
        let c = handle2.borrow();
        c.net
            .send(sim, mv.from, mv.to, ByteSize::bytes(ship_bytes), after_wire);
    });
    let handle3 = cl.clone();
    let after_scan: EventFn = Box::new(move |sim| {
        let cpu_res = handle3.borrow().nodes[mv.from.raw() as usize].cpu.clone();
        wattdb_sim::Resource::submit(&cpu_res, sim, cpu, after_cpu);
    });
    {
        let mut c = cl.borrow_mut();
        c.nodes[mv.from.raw() as usize].disks[src_disk as usize].bulk_transfer(
            sim,
            ByteSize::bytes(scan_bytes),
            after_scan,
        );
    }
}

fn logical_apply_batch(cl: &ClusterRc, sim: &mut Sim, chain: u64) {
    let grants = {
        let mut c = cl.borrow_mut();
        let c = &mut *c;
        let m = c.mover.as_mut().expect("mover");
        let mv = m.chains[chain as usize].current.take().expect("current");
        let txn = m.chains[chain as usize].txn.take().expect("txn");
        let keys = std::mem::take(&mut c.pending_logical_keys);
        // Target segment covering exactly this batch range.
        let dst_pid = c.partition_on(mv.table, mv.to);
        let dst_seg = c
            .open_segment(mv.table, mv.to, dst_pid, mv.range)
            .expect("fresh segment tiles");
        let src_pid = c
            .partitions
            .values()
            .find(|p| p.table == mv.table && p.node == mv.from)
            .map(|p| p.id)
            .expect("source partition");
        for k in keys {
            // Read current image at the source, tombstone it, re-create at
            // the target — all inside the system transaction.
            let src_seg = match c.partitions[&src_pid].top.segment_for(k) {
                Some(s) => s,
                None => continue,
            };
            let rec = {
                let idx = c.indexes.get(&src_seg).expect("index");
                match c.txn.read(txn, idx, &c.store, k) {
                    Ok(Some(r)) => r,
                    _ => continue,
                }
            };
            {
                let idx = c.indexes.get_mut(&src_seg).expect("index");
                let _ = c.txn.delete(txn, idx, &mut c.store, u32::MAX, k);
            }
            {
                let idx = c.indexes.get_mut(&dst_seg).expect("index");
                let _ = c.txn.insert(
                    txn,
                    idx,
                    &mut c.store,
                    u32::MAX,
                    k,
                    rec.logical_width,
                    rec.payload,
                );
            }
            // WAL on both ends.
            c.nodes[mv.from.raw() as usize].log.append(
                txn,
                LogPayload::Delete {
                    segment: src_seg,
                    before: vec![0; rec.logical_width as usize + 32],
                },
            );
            c.nodes[mv.to.raw() as usize].log.append(
                txn,
                LogPayload::Insert {
                    segment: dst_seg,
                    after: vec![0; rec.logical_width as usize + 32],
                },
            );
        }
        // Hand the batch range's ownership to the target.
        c.router
            .complete_move(mv.table, mv.range)
            .expect("complete");
        // Range end? (The last batch's range extends to the move's end.)
        let range_done = c
            .mover
            .as_ref()
            .and_then(|m| m.chains[chain as usize].ranges.front())
            .map(|rm| mv.range.end >= rm.range.end)
            .unwrap_or(true);
        if c.txn.mode() == wattdb_txn::CcMode::LockingRx && !range_done {
            // Keep the system transaction (locks + pending changes) open.
            let m = c.mover.as_mut().expect("mover");
            m.chains[chain as usize].txn = Some(txn);
            Vec::new()
        } else {
            let (_, grants) = c.txn.commit(txn, &mut c.store).expect("system commit");
            grants
        }
    };
    resume_grants(cl, sim, grants);
    // Commit durability: flush both logs as a bulk write, then continue.
    let handle = cl.clone();
    sim.after(SimDuration::from_millis(2), move |sim| {
        next_logical_batch(&handle, sim, chain)
    });
}

/// After a logical range drains, collapse the remaining routing so future
/// inserts in the moved range land at the target.
fn finish_logical_range(c: &mut Cluster, rm: RangeMove) {
    // Any leftover routing entries still marked moving are completed.
    let _ = c.router.complete_move(rm.table, rm.range);
    let _ = c.router.coalesce(rm.table);
}

fn try_finish(cl: &ClusterRc, sim: &mut Sim) {
    let mut c = cl.borrow_mut();
    let c = &mut *c;
    maybe_finish(c, sim.now());
}

fn maybe_finish(c: &mut Cluster, now: SimTime) {
    let done = c.mover.as_ref().map(|m| m.all_done()).unwrap_or(false);
    if !done {
        return;
    }
    if let Some(m) = c.mover.as_mut() {
        m.finished = Some(now);
    }
    let stats = c.mover.take().expect("mover");
    let report = RebalanceReport {
        scheme: stats.scheme,
        planner: stats.planner,
        started: stats.started,
        finished: now,
        segments_moved: stats.segments_moved,
        records_moved: stats.records_moved,
        bytes_moved: stats.bytes_moved,
        heat_planned: stats.heat_planned,
        heat_moved: stats.heat_moved,
    };
    c.last_rebalance = Some(report);
    c.metrics.record_rebalance(report);
    // Close the rebalance span with the realized counters next to the
    // planned ones set at launch.
    if let Some(ps) = stats.power_span {
        c.telemetry.spans.end(ps, now);
    }
    if let Some(span) = stats.span {
        c.telemetry
            .spans
            .set_attr(span, "segments_moved", report.segments_moved.into());
        c.telemetry
            .spans
            .set_attr(span, "records_moved", report.records_moved.into());
        c.telemetry
            .spans
            .set_attr(span, "bytes_moved", report.bytes_moved.into());
        c.telemetry
            .spans
            .set_attr(span, "heat_moved", report.heat_moved.into());
        c.telemetry.spans.end(span, now);
    }
    // Scripted helpers detach (Fig. 8: "after rebalancing, the additional
    // nodes should be turned off again"). Helpers the elasticity policy
    // attached for transient skew are deliberately NOT released here: an
    // unrelated scale-out or drain finishing must not tear down a
    // response whose skew still persists — those detach only via
    // `Decision::DetachHelpers` on subsidence.
    detach_scripted_helpers(c, now);
}

/// Summary of the last completed rebalance.
#[derive(Debug, Clone, Copy)]
pub struct RebalanceReport {
    /// Scheme used.
    pub scheme: Scheme,
    /// Planner that produced the executed plan.
    pub planner: Planner,
    /// Start time.
    pub started: SimTime,
    /// Completion time.
    pub finished: SimTime,
    /// Segments moved.
    pub segments_moved: u64,
    /// Records moved (logical only).
    pub records_moved: u64,
    /// Bytes shipped (post io_scale).
    pub bytes_moved: u64,
    /// Heat the plan intended to relocate (decayed, valued at plan time;
    /// zero under logical repartitioning, which moves ranges not
    /// segments).
    pub heat_planned: f64,
    /// Heat actually relocated (decayed, valued as each segment moved).
    pub heat_moved: f64,
}

/// Net-traffic counters captured when the first helper of a response
/// attaches: the baseline against which realized relief is measured.
#[derive(Debug, Clone, Copy)]
pub struct HelperBaseline {
    /// Attach time of the first helper in the response.
    pub at: SimTime,
    /// Predicted net-traffic relief, summed over the response's attaches.
    pub predicted: f64,
    /// Cumulative helper-shipped log bytes across all nodes at attach.
    pub shipped_bytes: u64,
    /// Cumulative remote-buffer hits across all nodes at attach.
    pub remote_hits: u64,
}

/// Predicted-vs-realized relief for a completed helper response — the
/// helper-side analogue of [`RebalanceReport`]'s planned-vs-moved heat
/// accounting. Emitted when the last helper detaches.
#[derive(Debug, Clone)]
pub struct HelperReport {
    /// When the response's first helper attached.
    pub attached: SimTime,
    /// Predicted net-traffic relief recorded at attach time.
    pub predicted: f64,
    /// Log bytes actually shipped to helpers while attached.
    pub shipped_bytes: u64,
    /// Reads served out of helper DRAM (remote-buffer hits) while
    /// attached.
    pub remote_hits: u64,
    /// The helpers released at the end of the response.
    pub helpers: Vec<NodeId>,
}

/// Attach helper nodes for the improved physiological run (Fig. 8): each
/// source ships its log to a helper and extends its buffer pool into the
/// helper's DRAM. The manual entry point pairs `sources[i]` with
/// `helpers[i % helpers.len()]` — the legacy mapping scripted experiments
/// rely on; planner-chosen attachments go through
/// [`attach_helper_plan`].
pub fn attach_helpers(cl: &ClusterRc, sim: &mut Sim, sources: &[NodeId], helpers: &[NodeId]) {
    if helpers.is_empty() {
        return;
    }
    let pairs: Vec<(NodeId, NodeId)> = sources
        .iter()
        .enumerate()
        .map(|(i, &src)| (src, helpers[i % helpers.len()]))
        .collect();
    // Every *listed* helper powers on and is tracked, paired or not — the
    // legacy manual contract. A manual list is a scripted Fig. 8 run:
    // the helpers detach when the accompanying rebalance completes.
    attach_helper_pairs(&mut cl.borrow_mut(), helpers, &pairs, 0.0, true, sim.now());
}

/// Attach a planner-produced [`wattdb_planner::HelperPlan`]: one helper
/// per assignment, with the plan's predicted net-traffic relief recorded
/// for the control log. `scripted` marks the helpers as belonging to a
/// scripted Fig. 8 rebalance — they auto-detach when the in-flight
/// rebalance completes; policy-attached helpers (`scripted: false`) stay
/// until [`Decision::DetachHelpers`](crate::policy::Decision) releases
/// them on skew subsidence. Returns false (and attaches nothing) on an
/// empty plan.
pub fn attach_helper_plan(
    cl: &ClusterRc,
    sim: &mut Sim,
    plan: &wattdb_planner::HelperPlan,
    scripted: bool,
) -> bool {
    if plan.is_empty() {
        return false;
    }
    let helpers = plan.helpers();
    let pairs: Vec<(NodeId, NodeId)> = plan
        .assignments
        .iter()
        .map(|a| (a.source, a.helper))
        .collect();
    attach_helper_pairs(
        &mut cl.borrow_mut(),
        &helpers,
        &pairs,
        plan.predicted_relief,
        scripted,
        sim.now(),
    );
    // The span keeps the planner's full candidate ranking: the exported
    // timeline can show why each helper won over the alternatives.
    {
        let mut c = cl.borrow_mut();
        let c = &mut *c;
        if let Some(span) = c.helper_span {
            if !plan.ranking.is_empty() {
                c.telemetry
                    .spans
                    .set_attr(span, "candidate_ranking", plan.ranking.clone().into());
            }
        }
    }
    true
}

/// Shared attach path: power `helpers` on (remembering which were standby,
/// so detach can power exactly those back off), wire each pair's log
/// shipping and remote buffer extension, and record the helper set. A
/// source whose helper is *reassigned* here first detaches its old
/// shipping cursor — leaving it would accumulate an unbounded unshipped
/// backlog for a follower nobody ever drains again.
fn attach_helper_pairs(
    c: &mut Cluster,
    helpers: &[NodeId],
    pairs: &[(NodeId, NodeId)],
    relief: f64,
    scripted: bool,
    now: SimTime,
) {
    use wattdb_energy::NodeState;
    let remote_pages = c.cfg.buffer_pages;
    // Relief accounting: the first attach of a response snapshots the
    // shipped-bytes and remote-hit counters; later attaches while helpers
    // remain wired fold their prediction into the same response.
    match &mut c.helper_baseline {
        None => {
            c.helper_baseline = Some(HelperBaseline {
                at: now,
                predicted: relief,
                shipped_bytes: c.nodes.iter().map(|n| n.shipper.shipped_bytes()).sum(),
                remote_hits: c.nodes.iter().map(|n| n.buffer.stats().remote_hits).sum(),
            });
            // The response's span opens with its first attach and closes
            // when the last helper detaches.
            let span = c.telemetry.start_span(
                "helpers",
                now,
                vec![
                    ("predicted_relief_mbps".into(), relief.into()),
                    ("scripted".into(), scripted.into()),
                ],
            );
            c.helper_span = Some(span);
        }
        Some(b) => {
            b.predicted += relief;
            if let Some(span) = c.helper_span {
                c.telemetry
                    .spans
                    .set_attr(span, "predicted_relief_mbps", b.predicted.into());
            }
        }
    }
    if let Some(span) = c.helper_span {
        for &(src, h) in pairs {
            c.telemetry.spans.add_event(
                span,
                now,
                "attach",
                vec![
                    ("source".into(), src.to_string().into()),
                    ("helper".into(), h.to_string().into()),
                ],
            );
        }
    }
    for &h in helpers {
        if c.nodes[h.raw() as usize].state == NodeState::Standby && !c.helpers_powered.contains(&h)
        {
            c.helpers_powered.push(h);
        }
        c.power_on(h);
        if !c.helpers_active.contains(&h) {
            c.helpers_active.push(h);
        }
        if scripted && !c.helpers_scripted.contains(&h) {
            c.helpers_scripted.push(h);
        }
    }
    for &(src, h) in pairs {
        let node = &mut c.nodes[src.raw() as usize];
        if let Some(old) = node.helper {
            if old != h {
                node.shipper.detach(old);
            }
        }
        node.helper = Some(h);
        node.buffer.set_remote_capacity(remote_pages);
        let log_ref = &node.log;
        node.shipper.attach(h, log_ref);
    }
    c.helper_relief = relief;
}

/// Detach the given helpers: their sources fall back to local log flushes
/// and plain buffer pools, shipping cursors are cleared — including any
/// stale cursor left by a mid-flight helper reassignment — and every
/// detached helper left with no segments to serve suspends to standby
/// (one holding data stays active). Returns the helpers detached.
fn detach_helper_set(c: &mut Cluster, set: &[NodeId], now: SimTime) -> Vec<NodeId> {
    let mut detached = Vec::new();
    c.helpers_active.retain(|h| {
        let keep = !set.contains(h);
        if !keep {
            detached.push(*h);
        }
        keep
    });
    c.helpers_powered.retain(|h| !detached.contains(h));
    c.helpers_scripted.retain(|h| !detached.contains(h));
    if let Some(span) = c.helper_span {
        for &h in &detached {
            c.telemetry.spans.add_event(
                span,
                now,
                "detach",
                vec![("helper".into(), h.to_string().into())],
            );
        }
    }
    if c.helpers_active.is_empty() {
        c.helper_relief = 0.0;
        // The response is over: realized relief is whatever the helpers
        // absorbed since the baseline — log bytes they persisted plus
        // reads their DRAM answered.
        if let Some(b) = c.helper_baseline.take() {
            let shipped: u64 = c.nodes.iter().map(|n| n.shipper.shipped_bytes()).sum();
            let hits: u64 = c.nodes.iter().map(|n| n.buffer.stats().remote_hits).sum();
            let report = HelperReport {
                attached: b.at,
                predicted: b.predicted,
                shipped_bytes: shipped.saturating_sub(b.shipped_bytes),
                remote_hits: hits.saturating_sub(b.remote_hits),
                helpers: detached.clone(),
            };
            if let Some(span) = c.helper_span.take() {
                // Realized relief in MB/s: bytes the helpers absorbed over
                // the time they were wired.
                let dt = now.since(b.at).as_secs_f64();
                let realized = if dt > 0.0 {
                    report.shipped_bytes as f64 / dt / 1e6
                } else {
                    0.0
                };
                let spans = &mut c.telemetry.spans;
                spans.set_attr(span, "realized_relief_mbps", realized.into());
                spans.set_attr(span, "shipped_bytes", report.shipped_bytes.into());
                spans.set_attr(span, "remote_hits", report.remote_hits.into());
                spans.set_attr(
                    span,
                    "helpers",
                    report
                        .helpers
                        .iter()
                        .map(|h| h.to_string())
                        .collect::<Vec<_>>()
                        .into(),
                );
                spans.end(span, now);
            }
            c.last_helper_report = Some(report);
        }
    }
    for &h in &detached {
        for n in &mut c.nodes {
            if n.helper == Some(h) {
                n.helper = None;
                n.buffer.set_remote_capacity(0);
            }
            // Cursors clear unconditionally: a node whose helper was
            // reassigned mid-flight still carries a cursor for the old
            // helper even though `n.helper` no longer names it.
            n.shipper.detach(h);
        }
    }
    for &h in &detached {
        // A detached helper with nothing left to serve suspends: the
        // duty-powered standbys return to standby, and so does an active
        // node that was drained empty *during* its duty — leaving it up
        // would idle it at full power with no code path left to suspend
        // it. A helper holding segments (it was serving data at attach
        // time, or became a rebalance target meanwhile) stays up; the
        // master never suspends.
        if h != NodeId(0)
            && c.seg_dir.on_node(h).next().is_none()
            && c.replicas.followed_by(h).is_empty()
            && c.nodes[h.raw() as usize].state == wattdb_energy::NodeState::Active
        {
            c.power_off(h);
        }
    }
    detached
}

/// `detach_helper_set` over every attached helper, scripted or not.
pub fn detach_all_helpers(c: &mut Cluster, now: SimTime) -> Vec<NodeId> {
    let all = c.helpers_active.clone();
    detach_helper_set(c, &all, now)
}

/// Detach only the helpers a scripted rebalance attached (the
/// migration-completion release); policy-attached helpers stay wired.
fn detach_scripted_helpers(c: &mut Cluster, now: SimTime) -> Vec<NodeId> {
    let set = std::mem::take(&mut c.helpers_scripted);
    detach_helper_set(c, &set, now)
}

/// [`detach_all_helpers`] over the shared handle (the facade's
/// release-everything entry point).
pub fn detach_helpers(cl: &ClusterRc, now: SimTime) -> Vec<NodeId> {
    detach_all_helpers(&mut cl.borrow_mut(), now)
}

/// Detach exactly the named helpers over the shared handle — the
/// policy-side detach on skew subsidence, which must release only the
/// set the policy attached and leave a concurrently scripted Fig. 8
/// set to its own migration-completion lifecycle.
pub fn detach_named_helpers(cl: &ClusterRc, set: &[NodeId], now: SimTime) -> Vec<NodeId> {
    detach_helper_set(&mut cl.borrow_mut(), set, now)
}

/// Is a rebalance still running?
pub fn rebalancing(cl: &ClusterRc) -> bool {
    cl.borrow().mover.is_some()
}

/// Every node that is a source or target of the in-flight rebalance:
/// pending and current segment moves plus pending logical range moves.
/// Empty when no rebalance is running. Scale-in must never drain one of
/// these nodes — the segment directory understates what they will hold
/// until the moves land.
pub fn nodes_in_flight(c: &Cluster) -> std::collections::BTreeSet<NodeId> {
    let mut busy = std::collections::BTreeSet::new();
    let Some(m) = &c.mover else {
        return busy;
    };
    for chain in &m.chains {
        for mv in chain.segments.iter().chain(chain.current.iter()) {
            busy.insert(mv.from);
            busy.insert(mv.to);
        }
        for rm in &chain.ranges {
            busy.insert(rm.from);
            busy.insert(rm.to);
        }
    }
    busy
}

/// Convenience for TPC-C experiments: move `fraction` of every TPC-C table.
pub fn tpcc_tables() -> Vec<TableId> {
    TpccTable::ALL.iter().map(|t| t.table_id()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use wattdb_energy::NodeState;

    fn cluster(loaded: bool) -> ClusterRc {
        let cl = Cluster::new(
            ClusterConfig {
                nodes: 4,
                segment_pages: 16,
                buffer_pages: 256,
                ..Default::default()
            },
            &[NodeId(0), NodeId(1)],
        );
        if loaded {
            cl.borrow_mut()
                .load_tpcc(
                    wattdb_tpcc::TpccConfig {
                        warehouses: 2,
                        density: 0.01,
                        payload_bytes: 8,
                        seed: 7,
                    },
                    &[NodeId(0), NodeId(1)],
                )
                .unwrap();
        }
        cl
    }

    #[test]
    fn helper_reassignment_leaves_no_stale_cursor() {
        let cl = cluster(false);
        let mut sim = Sim::new();
        attach_helpers(&cl, &mut sim, &[NodeId(0)], &[NodeId(2)]);
        {
            let c = cl.borrow();
            assert_eq!(c.nodes[0].helper, Some(NodeId(2)));
            assert_eq!(c.nodes[0].shipper.followers(), vec![NodeId(2)]);
        }
        // Mid-flight reassignment 0→3: the cursor for helper 2 must go
        // with it, or node 0 accumulates an unshipped backlog for a
        // follower nobody drains.
        attach_helpers(&cl, &mut sim, &[NodeId(0)], &[NodeId(3)]);
        {
            let c = cl.borrow();
            assert_eq!(c.nodes[0].helper, Some(NodeId(3)));
            assert_eq!(
                c.nodes[0].shipper.followers(),
                vec![NodeId(3)],
                "stale cursor for the reassigned helper survived"
            );
            // Both helpers are tracked until the full detach.
            assert_eq!(c.helpers_active, vec![NodeId(2), NodeId(3)]);
        }
        let detached = detach_helpers(&cl, sim.now());
        assert_eq!(detached, vec![NodeId(2), NodeId(3)]);
        let c = cl.borrow();
        assert_eq!(c.nodes[0].helper, None);
        assert!(c.nodes[0].shipper.followers().is_empty());
        assert!(c.helpers_active.is_empty());
        assert!(c.helpers_powered.is_empty());
        // Both helpers were standbys powered on for the duty: both return.
        assert_eq!(c.nodes[2].state, NodeState::Standby);
        assert_eq!(c.nodes[3].state, NodeState::Standby);
    }

    #[test]
    fn detach_clears_cursors_no_helper_field_names_anymore() {
        // The detach path must clear cursors *unconditionally*: a cursor
        // whose helper no node's `helper` field names anymore (the stale
        // state older code paths could leave) still goes away.
        let cl = cluster(false);
        let mut sim = Sim::new();
        attach_helpers(&cl, &mut sim, &[NodeId(0)], &[NodeId(2)]);
        {
            // Simulate the stale state directly: the helper field moved on
            // but the cursor was left behind.
            let mut c = cl.borrow_mut();
            c.nodes[0].helper = Some(NodeId(3));
            c.helpers_active = vec![NodeId(2), NodeId(3)];
            assert_eq!(c.nodes[0].shipper.followers(), vec![NodeId(2)]);
        }
        detach_helpers(&cl, sim.now());
        let c = cl.borrow();
        assert!(
            c.nodes[0].shipper.followers().is_empty(),
            "stale cursor survived the detach"
        );
        assert_eq!(c.nodes[0].helper, None);
    }

    #[test]
    fn detach_returns_only_duty_powered_helpers_to_standby() {
        // Helper 1 was already active serving data; helper 2 was a
        // standby powered on for the duty. Detach suspends only node 2 —
        // powering off a data-holding node would violate §4's invariant
        // (and used to panic).
        let cl = cluster(true);
        let mut sim = Sim::new();
        attach_helpers(&cl, &mut sim, &[NodeId(0)], &[NodeId(1), NodeId(2)]);
        // Pair a second source so both helpers serve someone.
        attach_helpers(&cl, &mut sim, &[NodeId(1)], &[NodeId(2)]);
        {
            let c = cl.borrow();
            assert_eq!(c.helpers_powered, vec![NodeId(2)], "only the standby");
        }
        detach_helpers(&cl, sim.now());
        let c = cl.borrow();
        assert_eq!(c.nodes[1].state, NodeState::Active, "data node stays up");
        assert_eq!(c.nodes[2].state, NodeState::Standby);
        assert!(c.helpers_active.is_empty());
    }

    #[test]
    fn detach_suspends_an_empty_active_helper() {
        // A helper that was active-but-empty at attach time (so never in
        // `helpers_powered`) has nothing left to serve after detach:
        // leaving it up would idle a segmentless node at full power with
        // no remaining code path to suspend it — the same fate awaits an
        // active data helper drained empty mid-duty by a scale-in.
        let cl = cluster(false);
        let mut sim = Sim::new();
        attach_helpers(&cl, &mut sim, &[NodeId(0)], &[NodeId(1)]);
        assert!(
            cl.borrow().helpers_powered.is_empty(),
            "node 1 was already active, not duty-powered"
        );
        detach_helpers(&cl, sim.now());
        let c = cl.borrow();
        assert_eq!(
            c.nodes[1].state,
            NodeState::Standby,
            "an empty ex-helper must not stay powered"
        );
    }

    #[test]
    fn policy_helpers_ride_out_unrelated_migration_completion() {
        // A completing migration releases only the helpers a *scripted*
        // Fig. 8 rebalance attached. Helpers the elasticity policy wired
        // up for transient skew answer a hotspot that outlives any one
        // migration: tearing them down with an unrelated drain or
        // scale-out would force churn (cooldown + patience must
        // re-accumulate before they come back).
        let cl = Cluster::new(
            ClusterConfig {
                nodes: 6,
                segment_pages: 16,
                buffer_pages: 256,
                ..Default::default()
            },
            &[NodeId(0), NodeId(1)],
        );
        cl.borrow_mut()
            .load_tpcc(
                wattdb_tpcc::TpccConfig {
                    warehouses: 2,
                    density: 0.01,
                    payload_bytes: 8,
                    seed: 7,
                },
                &[NodeId(0), NodeId(1)],
            )
            .unwrap();
        let mut sim = Sim::new();
        // Policy attach (scripted: false): node 4 helps node 0.
        let plan = wattdb_planner::HelperPlan {
            assignments: vec![wattdb_planner::HelperAssignment {
                source: NodeId(0),
                helper: NodeId(4),
                net_heat: 1.0,
            }],
            predicted_relief: 1.0,
            ranking: Vec::new(),
        };
        assert!(attach_helper_plan(&cl, &mut sim, &plan, false));
        // Scripted attach alongside: node 5 helps node 1 for the
        // rebalance below.
        attach_helpers(&cl, &mut sim, &[NodeId(1)], &[NodeId(5)]);
        assert_eq!(cl.borrow().helpers_scripted, vec![NodeId(5)]);
        start_rebalance(&cl, &mut sim, 0.5, &[NodeId(1)], &[NodeId(2)]);
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(600));
        {
            let c = cl.borrow();
            assert!(c.mover.is_none(), "rebalance completed");
            // The scripted helper went with the completion...
            assert_eq!(c.nodes[1].helper, None);
            assert_eq!(c.nodes[5].state, NodeState::Standby);
            // ...while the policy helper is still wired.
            assert_eq!(c.helpers_active, vec![NodeId(4)]);
            assert_eq!(c.nodes[0].helper, Some(NodeId(4)));
            assert_eq!(c.nodes[0].shipper.followers(), vec![NodeId(4)]);
            assert!(c.helpers_scripted.is_empty());
        }
        // The policy-side release still lets go of everything.
        assert_eq!(detach_helpers(&cl, sim.now()), vec![NodeId(4)]);
        let c = cl.borrow();
        assert!(c.helpers_active.is_empty());
        assert_eq!(c.nodes[0].helper, None);
        assert_eq!(c.nodes[4].state, NodeState::Standby);
    }
}
