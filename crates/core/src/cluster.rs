//! The WattDB cluster: nodes, partitions, catalog, power, and loading.
//!
//! This is the stateful heart of the reproduction. A [`Cluster`] owns the
//! per-node runtimes (CPU/disk resources, buffer pool, WAL), the storage
//! and index layers, the transaction manager, the master's routing table,
//! and the experiment metrics. The executor ([`crate::executor`]) and the
//! migration engine ([`crate::migration`]) drive it through the
//! discrete-event simulator.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use wattdb_common::config::DiskKind;
use wattdb_common::{
    ByteSize, CostModel, CostParams, DetRng, DiskId, DriftConfig, HardwareSpec, HeatConfig, Key,
    KeyRange, Lsn, NetworkSpec, NodeId, PartitionId, PowerSpec, ReplicaConfig, Result, SegmentId,
    SimDuration, SimTime, TableId, Watts,
};
use wattdb_energy::{EnergyMeter, NodeState, PowerModel};
use wattdb_index::{GlobalRouter, SegmentIndex, TopIndex};
use wattdb_net::Network;
use wattdb_replica::ReplicaMap;
use wattdb_sim::{Resource, ResourceHandle, Sim, UtilizationProbe};
use wattdb_storage::{BufferPool, PageStore, Record, SegmentDirectory, SimDisk, PAGE_SIZE};
use wattdb_tpcc::{
    carrier_split, Client, ClientBatching, ClientConfig, ClientPool, GenRow, LoadTrace, TpccConfig,
    TpccTable, TpccWorkload, MAX_CARRIERS,
};
use wattdb_txn::{CcMode, IndexMap, TxnManager};
use wattdb_wal::{LogManager, LogShipper};

use crate::executor::TxnJob;
use crate::heat::HeatTable;
use crate::metrics::{Metrics, Phase};
use crate::migration::MoveController;

/// The repartitioning scheme in force (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// §4.1: move segments between disks/nodes; logical ownership stays.
    Physical,
    /// §4.2: move records between key-range partitions via transactions.
    Logical,
    /// §4.3: move segments carrying their own PK indexes; ownership moves.
    Physiological,
}

impl Scheme {
    /// Display label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Physical => "physical",
            Scheme::Logical => "logical",
            Scheme::Physiological => "physiological",
        }
    }
}

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Total nodes (paper: 10). Node 0 is the master.
    pub nodes: u16,
    /// Per-node hardware.
    pub hardware: HardwareSpec,
    /// Power model parameters.
    pub power: PowerSpec,
    /// Interconnect parameters.
    pub network: NetworkSpec,
    /// CPU cost calibration.
    pub costs: CostParams,
    /// Concurrency control (MVCC unless benchmarking the MGL-RX baseline).
    pub cc_mode: CcMode,
    /// Repartitioning scheme.
    pub scheme: Scheme,
    /// Pages per segment (paper: 4096; experiments default smaller so the
    /// scaled dataset still spans many segments).
    pub segment_pages: u32,
    /// Buffer-pool frames per node. The paper's data:memory ratio is
    /// ~10:1; loaders pick this from the dataset size when zero.
    pub buffer_pages: usize,
    /// Bulk-I/O scale: segment copies and migration scans charge
    /// `bytes × io_scale` so a memory-friendly dataset produces the I/O
    /// volume of the paper's 100 GB deployment (see
    /// [`crate::api::WattDbBuilder::io_scale`]).
    pub io_scale: u64,
    /// Records per logical-partitioning move batch.
    pub migration_batch: usize,
    /// Group-commit window.
    pub group_commit: SimDuration,
    /// Metric bucket width.
    pub bucket: SimDuration,
    /// Per-segment heat tracking (decay half-life and access weights).
    pub heat: HeatConfig,
    /// Scalarization of per-access cost vectors into heat. `Some` (the
    /// default) makes heat **cost-based** — every access weighs its
    /// actual CPU/page/network demand; `None` disables cost tracing and
    /// heat falls back to the flat per-access weights in `heat`
    /// (the legacy weighted-count signal, bit-for-bit).
    pub cost_model: Option<CostModel>,
    /// Heat-drift tracking: velocity EWMA horizon and the projection
    /// horizon the planner plans against (zero horizon = historical heat).
    pub drift: DriftConfig,
    /// Per-segment replication: follower count, read fan-out policy.
    pub replication: ReplicaConfig,
    /// Per-client think timers vs. the pooled aggregated arrival process
    /// (see [`wattdb_tpcc::ClientBatching`]; `Auto` pools above
    /// [`wattdb_tpcc::POOL_AUTO_THRESHOLD`] modeled clients).
    pub client_batching: ClientBatching,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 10,
            hardware: HardwareSpec::default(),
            power: PowerSpec::default(),
            network: NetworkSpec::default(),
            costs: CostParams::default(),
            cc_mode: CcMode::Mvcc,
            scheme: Scheme::Physiological,
            segment_pages: 64,
            buffer_pages: 0,
            io_scale: 1,
            migration_batch: 64,
            group_commit: SimDuration::from_millis(2),
            bucket: SimDuration::from_secs(10),
            heat: HeatConfig::default(),
            cost_model: Some(CostModel::default()),
            drift: DriftConfig::default(),
            replication: ReplicaConfig::default(),
            client_batching: ClientBatching::default(),
            seed: 42,
        }
    }
}

/// Per-node runtime state.
pub struct NodeRuntime {
    /// Node id.
    pub id: NodeId,
    /// Power state.
    pub state: NodeState,
    /// CPU cores as a queueing resource.
    pub cpu: ResourceHandle,
    /// Attached drives (0 = HDD for WAL + data, 1.. = SSDs for data).
    pub disks: Vec<SimDisk>,
    /// Buffer pool (created at load time when sized automatically).
    pub buffer: BufferPool,
    /// Write-ahead log.
    pub log: LogManager,
    /// Log shipping cursors (helper mode).
    pub shipper: LogShipper,
    /// Log shipping cursors feeding this node's **replica followers**.
    /// Kept separate from `shipper`: helper detach clears helper cursors
    /// on every node unconditionally, and must never destroy replication
    /// state when a node is both helper and replica leader.
    pub replica_shipper: LogShipper,
    /// Ship log flushes to this helper instead of local disk.
    pub helper: Option<NodeId>,
    /// Probe for power sampling windows.
    pub power_probe: UtilizationProbe,
    /// Probe for monitoring windows (independent of power sampling).
    pub monitor_probe: UtilizationProbe,
    /// Probe for facade status snapshots (independent of both, so
    /// [`crate::api::WattDb::status`] never disturbs the control loop).
    pub status_probe: UtilizationProbe,
    /// Per-drive monitoring probes, persisted across windows so
    /// [`crate::monitor::sample_node`] reports true windowed disk
    /// utilization (one probe per entry in `disks`).
    pub disk_probes: Vec<UtilizationProbe>,
    /// Persistent monitoring probe for NIC egress, windowed like the CPU
    /// probe.
    pub net_probe: UtilizationProbe,
    /// Replica-shipping bytes at the last monitoring sample — the window
    /// baseline behind `NodeReport::replica_ship_tx`.
    pub ship_probe_base: u64,
    /// When the replica-shipping baseline was last taken (window start).
    pub ship_probe_at: SimTime,
    /// This node's follower-served reads at the last monitoring sample
    /// (window baseline for the read fan-out share).
    pub fanout_reads_base: u64,
    /// Cluster-wide routed-read total at the last monitoring sample (the
    /// fan-out share's denominator baseline; each node keeps its own
    /// copy because samples are taken per node).
    pub fanout_total_base: u64,
}

impl NodeRuntime {
    fn new(id: NodeId, hw: &HardwareSpec, buffer_pages: usize) -> Self {
        let n_disks = hw.disks.len();
        Self {
            id,
            state: NodeState::Standby,
            cpu: Resource::new(format!("{id}-cpu"), hw.cpu_cores),
            disks: hw
                .disks
                .iter()
                .enumerate()
                .map(|(i, spec)| SimDisk::new(DiskId::new(id, i as u8), *spec))
                .collect(),
            buffer: BufferPool::new(buffer_pages.max(64)),
            log: LogManager::new(),
            shipper: LogShipper::new(),
            replica_shipper: LogShipper::new(),
            helper: None,
            power_probe: UtilizationProbe::new(),
            monitor_probe: UtilizationProbe::new(),
            status_probe: UtilizationProbe::new(),
            disk_probes: (0..n_disks).map(|_| UtilizationProbe::new()).collect(),
            net_probe: UtilizationProbe::new(),
            ship_probe_base: 0,
            ship_probe_at: SimTime::ZERO,
            fanout_reads_base: 0,
            fanout_total_base: 0,
        }
    }
}

/// A partition: one table's presence on one node, owning a set of segments
/// through its top index (Fig. 4 / §4.3).
#[derive(Debug)]
pub struct Partition {
    /// Partition id.
    pub id: PartitionId,
    /// Owning table.
    pub table: TableId,
    /// Node evaluating queries for this partition.
    pub node: NodeId,
    /// Key-range → segment top index.
    pub top: TopIndex,
}

/// Shared handle to the cluster.
pub type ClusterRc = Rc<RefCell<Cluster>>;

/// The whole simulated WattDB deployment.
pub struct Cluster {
    /// Configuration.
    pub cfg: ClusterConfig,
    /// Per-node runtimes, indexed by `NodeId::raw()`.
    pub nodes: Vec<NodeRuntime>,
    /// Interconnect.
    pub net: Network,
    /// All page data.
    pub store: PageStore,
    /// Segment catalog.
    pub seg_dir: SegmentDirectory,
    /// Per-segment PK indexes.
    pub indexes: IndexMap,
    /// Partitions by id.
    pub partitions: HashMap<PartitionId, Partition>,
    /// Master's routing table.
    pub router: GlobalRouter,
    /// Transactions.
    pub txn: TxnManager,
    /// OLTP clients. In pooled mode these are the *carrier* clients of
    /// [`Cluster::pool`], each standing in for `pool.weight()` modeled
    /// clients.
    pub clients: Vec<Client>,
    /// Aggregated client arrival process (`Some` when the last spawn ran
    /// pooled): one repeater drives batched Binomial arrivals over the
    /// carriers instead of one think timer per client.
    pub pool: Option<ClientPool>,
    /// Transaction generator (shared key high-water marks).
    pub workload: Option<TpccWorkload>,
    /// In-flight executor jobs.
    pub jobs: HashMap<u64, TxnJob>,
    /// Lock waiter → job/mover mapping.
    pub lock_waiters: HashMap<wattdb_common::TxnId, crate::executor::Waiter>,
    /// Pending group commits per node.
    pub commit_queues: HashMap<NodeId, Vec<u64>>,
    /// Nodes with a flush scheduled.
    pub flush_scheduled: std::collections::HashSet<NodeId>,
    /// Migration controller (present while rebalancing).
    pub mover: Option<MoveController>,
    /// Key batch staged by the logical mover.
    pub pending_logical_keys: Vec<Key>,
    /// Summary of the last completed rebalance.
    pub last_rebalance: Option<crate::migration::RebalanceReport>,
    /// Per-segment access heat (the planner's workload signal).
    pub heat: HeatTable,
    /// Per-segment heat velocity (where the workload is *going*; fed by
    /// the monitoring loop, consumed by projected-heat planning).
    pub drift: crate::heat::DriftTracker,
    /// Metrics.
    pub metrics: Metrics,
    /// Power/energy meter.
    pub meter: EnergyMeter,
    /// Power model.
    pub power_model: PowerModel,
    /// Experiment randomness.
    pub rng: DetRng,
    /// Next job id.
    pub next_job: u64,
    /// Next partition id.
    pub next_partition: u64,
    /// Stop flag: clients cease submitting.
    pub stopped: bool,
    /// When false, finished jobs do not auto-schedule the client's next
    /// standard-mix transaction (custom driver loops take over).
    pub auto_resubmit: bool,
    /// Helper nodes currently attached (Fig. 8).
    pub helpers_active: Vec<NodeId>,
    /// The subset of `helpers_active` that was powered on *for* helper
    /// duty (standbys at attach time): these return to standby on detach,
    /// while a helper that was already serving data stays active.
    pub helpers_powered: Vec<NodeId>,
    /// The subset of `helpers_active` attached by a *scripted* rebalance
    /// path (`rebalance_with_helpers`, or a facade-attached plan): these
    /// auto-detach when the in-flight rebalance completes (Fig. 8).
    /// Helpers the elasticity policy attached for transient skew are NOT
    /// in this set — they ride out unrelated migrations and are released
    /// only by `Decision::DetachHelpers` when the skew subsides.
    pub helpers_scripted: Vec<NodeId>,
    /// Predicted net/remote-traffic relief of the helper plan currently
    /// attached (zero for manual attachments and when no helper runs).
    pub helper_relief: f64,
    /// Shipped-bytes / remote-buffer-hit baselines captured when the
    /// current helper set attached (consumed by the detach-time
    /// predicted-vs-realized relief report).
    pub helper_baseline: Option<crate::migration::HelperBaseline>,
    /// Predicted-vs-realized relief of the last fully detached helper set.
    pub last_helper_report: Option<crate::migration::HelperReport>,
    /// Per-segment leader/follower placement (empty while
    /// `cfg.replication.factor == 0`).
    pub replicas: ReplicaMap,
    /// Nodes killed by fault injection: out of every planning pool, never
    /// returned to service.
    pub failed: std::collections::BTreeSet<NodeId>,
    /// Nodes an applied scale-in is currently emptying. Replica placement
    /// (bootstrap, background repair, drain re-homes) must never put a
    /// follower copy on a draining node — it is about to suspend. Cleared
    /// when the drain's nodes suspend (or the node fails first).
    pub draining: std::collections::BTreeSet<NodeId>,
    /// Reads served by follower replicas, per serving node (lifetime; the
    /// per-node split of `replica_reads`). The monitoring loop windows
    /// this into each node's read fan-out share.
    pub replica_reads_by: std::collections::BTreeMap<NodeId, u64>,
    /// Last windowed NIC egress utilization per node, persisted by the
    /// monitoring loop. Planners read this instead of sampling: the
    /// probes are stateful window samplers and an ad-hoc sample would
    /// disturb the monitoring windows.
    pub net_util: Vec<f64>,
    /// Per-segment LSN of the last write, in the leader's log space — the
    /// catch-up bar a follower must clear before serving that segment's
    /// reads.
    pub seg_last_write: HashMap<SegmentId, Lsn>,
    /// Per-segment round-robin cursor over read-eligible replicas.
    pub replica_rr: HashMap<SegmentId, usize>,
    /// Reads served by follower replicas (lifetime).
    pub replica_reads: u64,
    /// Bytes shipped to seed replacement followers after a loss (lifetime).
    pub rereplication_bytes: u64,
    /// Re-replication copies currently on the wire. The autopilot holds
    /// its background factor repair while any are in flight, then
    /// re-plans whatever is still under-replicated (copies voided by a
    /// mid-flight death or leadership move).
    pub rereplication_inflight: usize,
    /// Read-routing resolutions that passed every replica gate (leader
    /// current, heat above floor) — the denominator of the follower
    /// read fan-out share next to `replica_reads`.
    pub replica_read_total: u64,
    /// Last heat-weighted read-routing weight per pool host, refreshed
    /// by the executor whenever it rotates a read (exported as the
    /// `replica.route_weight.*` telemetry gauges).
    pub replica_route_weights: std::collections::BTreeMap<NodeId, u64>,
    /// Control-plane flight recorder: tracing spans, per-window metric
    /// samples, and the autopilot decision timeline. Always on; every
    /// ring inside is bounded.
    pub telemetry: wattdb_telemetry::Telemetry,
    /// Span of the failover in progress (detection → promotion → factor
    /// restored), if one is being worked.
    pub failover_span: Option<wattdb_telemetry::SpanId>,
    /// Span of the helper deployment currently attached, if any.
    pub helper_span: Option<wattdb_telemetry::SpanId>,
    /// Span of the scale-in power transition in flight (drain applied,
    /// nodes not yet suspended), if any.
    pub powerdown_span: Option<wattdb_telemetry::SpanId>,
}

impl Cluster {
    /// Build a cluster; all nodes start in standby except those in
    /// `initially_active`.
    pub fn new(cfg: ClusterConfig, initially_active: &[NodeId]) -> ClusterRc {
        let nodes = (0..cfg.nodes)
            .map(|i| {
                let mut n = NodeRuntime::new(NodeId(i), &cfg.hardware, cfg.buffer_pages);
                if initially_active.contains(&NodeId(i)) {
                    n.state = NodeState::Active;
                }
                n
            })
            .collect();
        let net = Network::new(cfg.nodes as usize, cfg.network);
        let net_util = vec![0.0; cfg.nodes as usize];
        let rng = DetRng::new(cfg.seed);
        let metrics = Metrics::new(SimTime::ZERO, cfg.bucket);
        let power_model = PowerModel::new(cfg.power);
        let cc = cfg.cc_mode;
        let heat = HeatTable::with_cost_model(cfg.heat, cfg.cost_model);
        let drift = crate::heat::DriftTracker::new(cfg.drift);
        Rc::new(RefCell::new(Cluster {
            cfg,
            nodes,
            net,
            store: PageStore::new(),
            seg_dir: SegmentDirectory::new(),
            indexes: IndexMap::new(),
            partitions: HashMap::new(),
            router: GlobalRouter::new(),
            txn: TxnManager::new(cc),
            clients: Vec::new(),
            pool: None,
            workload: None,
            jobs: HashMap::new(),
            lock_waiters: HashMap::new(),
            commit_queues: HashMap::new(),
            flush_scheduled: std::collections::HashSet::new(),
            mover: None,
            pending_logical_keys: Vec::new(),
            last_rebalance: None,
            heat,
            drift,
            metrics,
            meter: EnergyMeter::new(SimTime::ZERO),
            power_model,
            rng,
            next_job: 1,
            next_partition: 1,
            stopped: false,
            auto_resubmit: true,
            helpers_active: Vec::new(),
            helpers_powered: Vec::new(),
            helpers_scripted: Vec::new(),
            helper_relief: 0.0,
            helper_baseline: None,
            last_helper_report: None,
            replicas: ReplicaMap::new(),
            failed: std::collections::BTreeSet::new(),
            draining: std::collections::BTreeSet::new(),
            replica_reads_by: std::collections::BTreeMap::new(),
            net_util,
            seg_last_write: HashMap::new(),
            replica_rr: HashMap::new(),
            replica_reads: 0,
            rereplication_bytes: 0,
            rereplication_inflight: 0,
            replica_read_total: 0,
            replica_route_weights: std::collections::BTreeMap::new(),
            telemetry: wattdb_telemetry::Telemetry::new(),
            failover_span: None,
            helper_span: None,
            powerdown_span: None,
        }))
    }

    /// Nodes currently active.
    pub fn active_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Active)
            .map(|n| n.id)
            .collect()
    }

    /// Power on a node (instantaneous state flip; boot latency is modelled
    /// by the caller scheduling work later).
    pub fn power_on(&mut self, node: NodeId) {
        self.nodes[node.raw() as usize].state = NodeState::Active;
    }

    /// Power a node down to standby. Panics if it still stores segments
    /// ("nodes still having data on disk must not shut down", §4) — and,
    /// since followers extend "data on disk", if it still hosts follower
    /// copies: suspending a live follower host silently drops redundancy.
    pub fn power_off(&mut self, node: NodeId) {
        assert!(
            self.seg_dir.on_node(node).next().is_none(),
            "cannot power off {node}: segments present"
        );
        assert!(
            self.replicas.followed_by(node).is_empty(),
            "cannot power off {node}: follower copies present"
        );
        self.nodes[node.raw() as usize].state = NodeState::Standby;
        self.draining.remove(&node);
    }

    /// Fault injection: kill `node` mid-anything. The node drops out of
    /// every planning pool, its helper entanglements are severed, and any
    /// queued migration moves touching it are cancelled. Unlike
    /// [`Cluster::power_off`] this deliberately bypasses the
    /// "no segments on disk" invariant — that is the whole point of a
    /// failure: the segments it led are orphaned until the autopilot
    /// promotes their most-caught-up followers. The dead node's own
    /// replica shipping cursors are *kept* — promotion reads them to find
    /// the follower that loses the least committed history.
    pub fn fail_node(&mut self, node: NodeId) {
        if !self.failed.insert(node) {
            return;
        }
        self.nodes[node.raw() as usize].state = NodeState::Standby;
        self.nodes[node.raw() as usize].helper = None;
        for n in &mut self.nodes {
            if n.helper == Some(node) {
                n.helper = None;
            }
            // Helper cursors pointing at the dead node are garbage; its
            // *replica* cursors on surviving leaders stay until the
            // failover decision rewrites the map.
            n.shipper.detach(node);
        }
        self.helpers_active.retain(|&h| h != node);
        self.helpers_powered.retain(|&h| h != node);
        self.helpers_scripted.retain(|&h| h != node);
        self.draining.remove(&node);
        if let Some(m) = &mut self.mover {
            m.drop_node(node);
        }
    }

    /// True if the node has been killed by fault injection.
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed.contains(&node)
    }

    /// Build the initial replica map: every segment gets
    /// `cfg.replication.factor` followers placed by the planner (coldest
    /// healthy nodes first, never the leader's node), and each leader's
    /// replica shipping cursors are attached. No-op with replication off.
    pub fn bootstrap_replicas(&mut self, now: SimTime) {
        if !self.cfg.replication.enabled() {
            return;
        }
        let plan = crate::heat::plan_replicas(self, now);
        for p in &plan.placements {
            match self.replicas.get(p.seg) {
                None => self.replicas.set(p.seg, p.leader, p.followers.clone()),
                Some(_) => {
                    for &f in &p.followers {
                        self.replicas.add_follower(p.seg, f);
                    }
                }
            }
        }
        self.sync_replica_cursors();
    }

    /// Reconcile every node's replica shipping cursors with the replica
    /// map: each leader ships to exactly the union of its segments'
    /// follower sets. Attach is idempotent (a fresh cursor starts at the
    /// leader's log end), detach drops cursors the map no longer wants.
    /// Call after any replica-map mutation.
    pub fn sync_replica_cursors(&mut self) {
        let mut desired: Vec<std::collections::BTreeSet<NodeId>> =
            vec![std::collections::BTreeSet::new(); self.nodes.len()];
        for (_, set) in self.replicas.iter() {
            for &f in &set.followers {
                desired[set.leader.raw() as usize].insert(f);
            }
        }
        for (node, wanted) in self.nodes.iter_mut().zip(&desired) {
            let NodeRuntime {
                log,
                replica_shipper,
                ..
            } = node;
            for f in replica_shipper.followers() {
                if !wanted.contains(&f) {
                    replica_shipper.detach(f);
                }
            }
            for &f in wanted {
                replica_shipper.attach(f, log);
            }
        }
    }

    /// Total bytes shipped to replica followers across all leaders — the
    /// wire cost of read fan-out and durability, distinct from helper
    /// log shipping.
    pub fn replica_shipped_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.replica_shipper.shipped_bytes())
            .sum()
    }

    /// Check the replica-map placement invariant: every referenced node is
    /// a powered, non-draining active (a node in `failed` is exempt while
    /// its failover is pending — the map still names it until promotion
    /// rewrites it), and no leader appears in its own follower set.
    /// Returns the first violation as a message, `None` when clean.
    pub fn check_replica_invariants(&self) -> Option<String> {
        for (seg, set) in self.replicas.iter() {
            if set.followers.contains(&set.leader) {
                return Some(format!(
                    "{seg}: leader {} in its own follower set",
                    set.leader
                ));
            }
            for &n in std::iter::once(&set.leader).chain(set.followers.iter()) {
                if self.failed.contains(&n) {
                    continue; // failover pending: promotion will rewrite the map
                }
                if self.nodes[n.raw() as usize].state != NodeState::Active {
                    return Some(format!("{seg}: references suspended node {n}"));
                }
            }
            for &f in &set.followers {
                if self.draining.contains(&f) {
                    return Some(format!("{seg}: follower {f} is draining"));
                }
            }
        }
        None
    }

    /// Debug-mode assertion wrapper over
    /// [`Cluster::check_replica_invariants`] — the autopilot calls this
    /// after every applied decision.
    pub fn debug_assert_replica_invariants(&self) {
        if cfg!(debug_assertions) {
            if let Some(violation) = self.check_replica_invariants() {
                panic!("replica-map invariant violated: {violation}");
            }
        }
    }

    /// Current operating phase (Fig. 7 attribution).
    pub fn phase(&self) -> Phase {
        match (&self.mover, self.helpers_active.is_empty()) {
            (None, _) => Phase::Normal,
            (Some(_), true) => Phase::Rebalancing,
            (Some(_), false) => Phase::RebalancingImproved,
        }
    }

    /// Mint a partition for `table` on `node`.
    pub fn create_partition(&mut self, table: TableId, node: NodeId) -> PartitionId {
        let id = PartitionId(self.next_partition);
        self.next_partition += 1;
        self.partitions.insert(
            id,
            Partition {
                id,
                table,
                node,
                top: TopIndex::new(),
            },
        );
        id
    }

    /// The partition of `table` on `node`, creating it on demand (used by
    /// migrations targeting fresh nodes).
    pub fn partition_on(&mut self, table: TableId, node: NodeId) -> PartitionId {
        if let Some(p) = self
            .partitions
            .values()
            .find(|p| p.table == table && p.node == node)
        {
            return p.id;
        }
        self.create_partition(table, node)
    }

    /// Instantaneous total cluster power, given per-node CPU utilizations
    /// sampled over the last window.
    pub fn sample_power(&mut self, now: SimTime) -> Watts {
        let mut total = self.power_model.switch_power();
        for i in 0..self.nodes.len() {
            let state = self.nodes[i].state;
            let cpu = self.nodes[i].cpu.clone();
            let util = self.nodes[i].power_probe.sample(&cpu, now);
            total += self.power_model.node_power(state, util);
            for d in 0..self.nodes[i].disks.len() {
                let kind: DiskKind = self.nodes[i].disks[d].kind();
                total += self.power_model.disk_power(kind, state);
            }
        }
        total
    }

    /// Bulk-load a generated TPC-C row into the right partition/segment,
    /// creating segments that tile each partition's key range on the fly.
    fn load_row(
        &mut self,
        row: &GenRow,
        loaded_segments: &mut HashMap<(TableId, NodeId), SegmentId>,
    ) -> Result<()> {
        let table = row.table.table_id();
        let route = self.router.route(table, row.key)?;
        let node = route.primary.node;
        let partition = route.primary.partition;
        let seg_key = (table, node);
        let seg = match loaded_segments.get(&seg_key) {
            Some(&seg) if self.segment_has_room(seg, row) => seg,
            _ => {
                // Close the previous fill segment's range and open a new one
                // starting at this key.
                let part_range = self.partition_entry_range(table, row.key)?;
                if let Some(&prev) = loaded_segments.get(&seg_key) {
                    self.close_fill_segment(prev, row.key)?;
                }
                let start = match loaded_segments.get(&seg_key) {
                    Some(_) => row.key,
                    None => part_range.start,
                };
                let seg = self.open_segment(
                    table,
                    node,
                    partition,
                    KeyRange::new(start, part_range.end),
                )?;
                loaded_segments.insert(seg_key, seg);
                seg
            }
        };
        let rec = Record::new(row.key, 1, row.width, row.payload.clone());
        let (rid, allocated) = self.store.insert_record(seg, &rec, u32::MAX)?;
        if allocated {
            let meta = self.seg_dir.get_mut(seg)?;
            meta.allocated_pages += 1;
            let disk = meta.disk;
            self.nodes[disk.node.raw() as usize].disks[disk.index as usize]
                .reserve(ByteSize::bytes(PAGE_SIZE as u64));
        }
        let meta = self.seg_dir.get_mut(seg)?;
        meta.records += 1;
        meta.logical_bytes += ByteSize::bytes(rec.logical_footprint() as u64);
        self.indexes
            .get_mut(&seg)
            .expect("segment index exists")
            .insert(row.key, rid);
        Ok(())
    }

    fn segment_has_room(&self, seg: SegmentId, _row: &GenRow) -> bool {
        let meta = self.seg_dir.get(seg).expect("segment exists");
        (self.store.page_count(seg) as u32) < self.cfg.segment_pages
            || self
                .store
                .logical_bytes(seg)
                .map(|b| b < meta.capacity().as_u64())
                .unwrap_or(false)
    }

    fn partition_entry_range(&self, table: TableId, key: Key) -> Result<KeyRange> {
        let entries = self
            .router
            .prune(table, KeyRange::new(key, Key(key.raw() + 1)))?;
        Ok(entries
            .first()
            .map(|e| e.range)
            .unwrap_or_else(KeyRange::all))
    }

    fn close_fill_segment(&mut self, seg: SegmentId, next_start: Key) -> Result<()> {
        // Narrow the previous fill segment's range to end where the next
        // one begins, keeping the partition's top index tiling exact.
        let meta = self.seg_dir.get(seg)?;
        let old_range = meta.key_range.expect("fill segments have ranges");
        let table = meta.table;
        let node = meta.node;
        if next_start >= old_range.end || next_start <= old_range.start {
            return Ok(());
        }
        let new_range = KeyRange::new(old_range.start, next_start);
        let pid = self.partition_on(table, node);
        let part = self.partitions.get_mut(&pid).expect("partition exists");
        part.top.detach(seg)?;
        part.top.attach(seg, new_range)?;
        self.seg_dir.get_mut(seg)?.key_range = Some(new_range);
        self.indexes
            .get_mut(&seg)
            .expect("index exists")
            .set_range(new_range);
        Ok(())
    }

    /// Create an empty segment covering `range` on `node`, attached to
    /// `partition`'s top index.
    pub fn open_segment(
        &mut self,
        table: TableId,
        node: NodeId,
        partition: PartitionId,
        range: KeyRange,
    ) -> Result<SegmentId> {
        // Data segments go on the SSDs round-robin (disk 1..); the HDD
        // (disk 0) carries the WAL, as in the testbed layout.
        let n_disks = self.nodes[node.raw() as usize].disks.len();
        let disk_idx = if n_disks > 1 {
            1 + (self.seg_dir.len() % (n_disks - 1))
        } else {
            0
        };
        let disk = DiskId::new(node, disk_idx as u8);
        let seg = self
            .seg_dir
            .create(table, node, disk, Some(range), self.cfg.segment_pages);
        self.store.add_segment(seg);
        self.indexes.insert(seg, SegmentIndex::new(seg, range));
        let part = self.partitions.get_mut(&partition).expect("partition");
        part.top.attach(seg, range)?;
        Ok(seg)
    }

    /// Load the TPC-C dataset, range-partitioned by warehouse across
    /// `data_nodes`. Also sizes buffer pools to ~1/10 of the per-node data
    /// when `cfg.buffer_pages == 0`, matching the paper's data:memory
    /// ratio.
    pub fn load_tpcc(&mut self, tpcc: TpccConfig, data_nodes: &[NodeId]) -> Result<()> {
        assert!(!data_nodes.is_empty());
        let w = tpcc.warehouses;
        let chunks = KeyRange::chunks(
            wattdb_tpcc::wkey(0, 0, 0),
            wattdb_tpcc::wkey(w, 0, 0),
            data_nodes.len(),
        );
        // Align chunk boundaries to warehouse boundaries.
        let per = (w as usize).div_ceil(data_nodes.len()) as u32;
        let mut ranges = Vec::new();
        for (i, _) in data_nodes.iter().enumerate() {
            let lo = (i as u32) * per;
            let hi = ((i as u32 + 1) * per).min(w);
            if lo < hi {
                ranges.push(wattdb_tpcc::warehouse_range(lo, hi));
            }
        }
        drop(chunks);
        // Register tables and initial routing.
        for t in TpccTable::ALL {
            let table = t.table_id();
            self.router.create_table(table);
            for (i, node) in data_nodes.iter().enumerate() {
                if i >= ranges.len() {
                    break;
                }
                let pid = self.partition_on(table, *node);
                // Extend the edge partitions to cover the full key space so
                // out-of-range probes (ITEM spreading etc.) still route.
                let mut r = ranges[i];
                if i == 0 {
                    r.start = Key::MIN;
                }
                if i == ranges.len() - 1 {
                    r.end = Key::MAX;
                }
                self.router.assign(table, r, pid, *node)?;
            }
        }
        // Generate and load rows warehouse by warehouse (keys ascend within
        // each warehouse, so fill segments stay range-contiguous).
        let mut fill: HashMap<(TableId, NodeId), SegmentId> = HashMap::new();
        for wh in 0..w {
            let mut rows = wattdb_tpcc::warehouse_rows(&tpcc, wh);
            rows.sort_by_key(|r| (r.table.table_id(), r.key));
            for row in &rows {
                self.load_row(row, &mut fill)?;
            }
        }
        let mut items = wattdb_tpcc::item_rows(&tpcc);
        items.sort_by_key(|r| r.key);
        // ITEM rows are scattered across the warehouse-major space; load
        // them individually (each creates/extends segments as needed).
        let mut item_fill: HashMap<(TableId, NodeId), SegmentId> = HashMap::new();
        for row in &items {
            self.load_row(row, &mut item_fill)?;
        }
        self.workload = Some(TpccWorkload::new(tpcc));
        // Auto-size buffer pools: data bytes per node / 10 (paper ratio).
        if self.cfg.buffer_pages == 0 {
            let logical = tpcc.logical_dataset_bytes();
            let per_node = logical / data_nodes.len() as u64;
            let pages = ((per_node / 10) / PAGE_SIZE as u64).max(64) as usize;
            self.cfg.buffer_pages = pages;
            for n in &mut self.nodes {
                n.buffer = BufferPool::new(pages);
            }
        }
        Ok(())
    }

    /// Spawn `n` closed-loop clients. Above the pooling threshold (or
    /// when forced by [`ClusterConfig::client_batching`]) the modeled
    /// population is folded onto at most [`wattdb_tpcc::MAX_CARRIERS`]
    /// carrier clients driven by one aggregated arrival process.
    pub fn spawn_clients(&mut self, n: u32, client_cfg: ClientConfig) {
        let w = self
            .workload
            .as_ref()
            .map(|wl| wl.config().warehouses)
            .unwrap_or(1);
        let (spawn_n, _) = self.prepare_spawn(n, client_cfg.think_time);
        self.clients = wattdb_tpcc::spawn_clients(spawn_n, w, client_cfg, &self.rng);
    }

    /// Spawn `n` closed-loop clients with a hot-range skew: `hot_fraction`
    /// of them homed inside the first `hot_warehouses` warehouses. Pools
    /// like [`Cluster::spawn_clients`]; the carriers inherit the same
    /// hot-fraction homing rule, so the modeled skew is preserved.
    pub fn spawn_clients_skewed(
        &mut self,
        n: u32,
        client_cfg: ClientConfig,
        hot_fraction: f64,
        hot_warehouses: u32,
    ) {
        let w = self
            .workload
            .as_ref()
            .map(|wl| wl.config().warehouses)
            .unwrap_or(1);
        let (spawn_n, _) = self.prepare_spawn(n, client_cfg.think_time);
        self.clients = wattdb_tpcc::spawn_clients_skewed(
            spawn_n,
            w,
            client_cfg,
            &self.rng,
            hot_fraction,
            hot_warehouses,
        );
    }

    /// Spawn the carrier population for a [`LoadTrace`]: one carrier
    /// group per tenant, sized for the tenant's trace peak and homed by
    /// its hot-warehouse rule, all driven by one pooled arrival process
    /// whose per-group targets the trace's breakpoints resize (see
    /// [`crate::executor::schedule_trace`]). Trace runs are always
    /// pooled — resizing is O(groups) per breakpoint instead of a spawn
    /// storm — regardless of [`ClusterConfig::client_batching`].
    pub fn spawn_traced_clients(&mut self, trace: &LoadTrace, client_cfg: ClientConfig) {
        let tenants = trace.tenants();
        assert!(
            !tenants.is_empty() && !trace.points().is_empty(),
            "a load trace needs at least one tenant and one breakpoint"
        );
        let w = self
            .workload
            .as_ref()
            .map(|wl| wl.config().warehouses)
            .unwrap_or(1)
            .max(1);
        // Carrier budget split evenly across tenants; per-tenant weight
        // folds the tenant's peak onto its share, so the activation
        // granularity is one weight's worth of modeled clients.
        let budget = (MAX_CARRIERS / tenants.len() as u32).max(1);
        let mut specs: Vec<(u32, u64)> = Vec::with_capacity(tenants.len());
        let mut clients = Vec::new();
        for (ti, tenant) in tenants.iter().enumerate() {
            let peak = trace.tenant_peak(ti).max(1);
            let weight = peak.div_ceil(budget as u64).max(1);
            let carriers = (peak.div_ceil(weight) as u32).max(1);
            specs.push((carriers, weight));
            let hot_w = tenant.hot_warehouses.clamp(1, w);
            let hot_n = (carriers as f64 * tenant.hot_fraction.clamp(0.0, 1.0)).round() as u32;
            for j in 0..carriers {
                let home = if j < hot_n {
                    (tenant.hot_first + (j % hot_w)) % w
                } else {
                    j % w
                };
                let id = wattdb_common::ClientId(clients.len() as u32);
                clients.push(Client::new(id, home, client_cfg, &self.rng));
            }
        }
        let mut pool =
            ClientPool::new_grouped(&specs, client_cfg.think_time, self.rng.derive(0xC11E_47B0));
        let first = &trace.points()[0];
        for (g, &target) in first.targets.iter().enumerate() {
            pool.set_target(g, target);
        }
        self.pool = Some(pool);
        self.clients = clients;
    }

    /// Decide pooled vs. per-client for a spawn of `n` modeled clients:
    /// sets up [`Cluster::pool`] (or clears it) and returns the carrier
    /// count to materialize plus the per-carrier weight.
    fn prepare_spawn(&mut self, n: u32, think: SimDuration) -> (u32, u64) {
        if self.cfg.client_batching.pooled(n) {
            let (carriers, weight) = carrier_split(n);
            self.pool = Some(ClientPool::new(
                carriers,
                weight,
                n as u64,
                think,
                self.rng.derive(0xC11E_47B0),
            ));
            (carriers, weight)
        } else {
            self.pool = None;
            (n, 1)
        }
    }

    /// Vacuum every segment at the current GC horizon: reclaims committed
    /// superseded versions and old tombstones. Returns versions reclaimed.
    pub fn vacuum_all(&mut self) -> usize {
        let horizon = self.txn.gc_horizon();
        let mut reclaimed = 0;
        for idx in self.indexes.values_mut() {
            reclaimed += wattdb_txn::mvcc::vacuum(idx, &mut self.store, horizon).unwrap_or(0);
        }
        reclaimed
    }

    /// Total stored record versions and live keys (Fig. 3 storage line).
    pub fn version_stats(&self) -> (usize, usize) {
        let mut versions = 0;
        let mut live = 0;
        for (seg, idx) in &self.indexes {
            let _ = seg;
            if let Ok((v, l)) = wattdb_txn::mvcc::version_stats(idx, &self.store) {
                versions += v;
                live += l;
            }
        }
        (versions, live)
    }

    /// Start the periodic power sampler (1 s cadence).
    pub fn start_power_sampler(cl: &ClusterRc, sim: &mut Sim) {
        let handle = cl.clone();
        wattdb_sim::Repeater::every(sim, SimDuration::from_secs(1), move |sim| {
            let mut c = handle.borrow_mut();
            let now = sim.now();
            let p = c.sample_power(now);
            let q = c.metrics.take_completions();
            c.meter.sample(now, p, q);
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ClusterConfig {
        ClusterConfig {
            nodes: 4,
            segment_pages: 16,
            buffer_pages: 256,
            ..Default::default()
        }
    }

    fn tpcc_cfg() -> TpccConfig {
        TpccConfig {
            warehouses: 4,
            density: 0.01,
            payload_bytes: 8,
            seed: 7,
        }
    }

    #[test]
    fn load_routes_all_tables() {
        let cl = Cluster::new(small_cfg(), &[NodeId(0), NodeId(1)]);
        let mut c = cl.borrow_mut();
        c.load_tpcc(tpcc_cfg(), &[NodeId(0), NodeId(1)]).unwrap();
        // Every table routes every warehouse's keys.
        for t in TpccTable::ALL {
            let table = t.table_id();
            let r0 = c
                .router
                .route(table, wattdb_tpcc::keys::warehouse(0))
                .unwrap();
            let r3 = c
                .router
                .route(table, wattdb_tpcc::keys::warehouse(3))
                .unwrap();
            assert_eq!(r0.primary.node, NodeId(0));
            assert_eq!(r3.primary.node, NodeId(1));
        }
        assert!(c.seg_dir.len() > 4, "several segments created");
    }

    #[test]
    fn loaded_records_are_readable() {
        let cl = Cluster::new(small_cfg(), &[NodeId(0), NodeId(1)]);
        let mut c = cl.borrow_mut();
        c.load_tpcc(tpcc_cfg(), &[NodeId(0), NodeId(1)]).unwrap();
        // Look up a customer through router → partition → top → index.
        let key = wattdb_tpcc::keys::customer(1, 3, 5);
        let table = TpccTable::Customer.table_id();
        let route = c.router.route(table, key).unwrap();
        let part = c
            .partitions
            .values()
            .find(|p| p.id == route.primary.partition)
            .unwrap();
        let seg = part.top.segment_for(key).expect("segment covers key");
        let idx = &c.indexes[&seg];
        let (rid, _) = idx.get(key);
        let rec = c.store.read_record(rid.expect("customer loaded")).unwrap();
        assert_eq!(rec.key, key);
        assert_eq!(rec.logical_width, TpccTable::Customer.row_width());
    }

    #[test]
    fn segments_tile_partition_ranges() {
        let cl = Cluster::new(small_cfg(), &[NodeId(0), NodeId(1)]);
        let mut c = cl.borrow_mut();
        c.load_tpcc(tpcc_cfg(), &[NodeId(0), NodeId(1)]).unwrap();
        for part in c.partitions.values() {
            let segs = part.top.segments();
            if segs.is_empty() {
                continue;
            }
            for w in segs.windows(2) {
                assert_eq!(w[0].1.end, w[1].1.start, "contiguous tiling");
            }
        }
    }

    #[test]
    fn power_envelope_minimal_vs_loaded() {
        let cl = Cluster::new(small_cfg(), &[NodeId(0)]);
        let mut c = cl.borrow_mut();
        // 1 active of 4 + switch + drives.
        let p = c.sample_power(SimTime::from_secs(1)).0;
        // 22 (idle) + 3×2.5 + 20 (switch) + 9 (drives) = 58.5.
        assert!((55.0..62.0).contains(&p), "{p}");
        c.power_on(NodeId(1));
        c.power_on(NodeId(2));
        let p2 = c.sample_power(SimTime::from_secs(2)).0;
        assert!(p2 > p + 30.0, "two more active nodes: {p2}");
    }

    #[test]
    fn power_off_requires_empty_node() {
        let cl = Cluster::new(small_cfg(), &[NodeId(0), NodeId(1)]);
        let mut c = cl.borrow_mut();
        c.load_tpcc(tpcc_cfg(), &[NodeId(0), NodeId(1)]).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.power_off(NodeId(1));
        }));
        assert!(result.is_err(), "node with segments must not power off");
    }

    #[test]
    fn partition_on_is_idempotent() {
        let cl = Cluster::new(small_cfg(), &[NodeId(0)]);
        let mut c = cl.borrow_mut();
        let a = c.partition_on(TableId(1), NodeId(2));
        let b = c.partition_on(TableId(1), NodeId(2));
        let other = c.partition_on(TableId(2), NodeId(2));
        assert_eq!(a, b);
        assert_ne!(a, other);
    }
}
