//! Per-segment heat tracking: the data the heat-aware planner plans from.
//!
//! Every executor access resolves to a segment; the [`HeatTable`] charges
//! that segment an increment on top of an exponentially decayed running
//! total — an EWMA in simulated time. Decay is applied lazily at
//! touch/read time, so idle segments cost nothing to age.
//!
//! **What one access is worth** depends on the configured signal:
//!
//! * **Cost-based** (the default, [`CostModel`] present): the access's
//!   actual hardware demand — a [`CostVector`] of core CPU time, buffer
//!   page touches, and interconnect bytes, the same currency as
//!   `wattdb_query`'s `CostTrace` — is scalarized into heat. A CPU-heavy
//!   scan/aggregation weighs what it costs; a cheap point read weighs
//!   what *it* costs. This is the query-cost-estimated planning of Arsov
//!   et al.: the planner balances *work*, not access counts.
//! * **Count-based** (cost tracing off, `CostModel` absent): the original
//!   flat per-access-kind weights (reads, writes, and remote page fetches
//!   weigh differently, see [`HeatConfig`]) — byte-for-byte the legacy
//!   behaviour.
//!
//! Heat is keyed by [`SegmentId`] and therefore *travels with the segment*
//! across physiological moves: after a rebalance the target node's rolled-
//! up heat immediately reflects its new load, which is exactly what the
//! next planning round needs.
//!
//! The [`drift`] submodule layers heat *velocity* on top: an EWMA of
//! per-window heat deltas that lets the planner plan against projected
//! heat — where the workload is going, not where it was (moving TPC-C
//! insert hotspots). [`plan_scale_out`] and [`plan_drain`] consume the
//! projected view whenever the cluster's drift horizon is non-zero, and
//! accumulate/project cost-heat exactly as they did count-heat.

use wattdb_common::{
    CostModel, CostVector, Heat, HeatConfig, NodeId, SegmentId, SimDuration, SimTime, TableId,
};
use wattdb_storage::SegmentDirectory;

pub mod drift;

pub use drift::{DriftTracker, SegmentDrift, SegmentDriftStat};

/// What kind of record operation an access was (drives the flat-weight
/// fallback and the lifetime counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A point/range read.
    Read,
    /// An update/insert/delete.
    Write,
}

/// One segment's tracked heat, raw access counters, and accumulated cost.
#[derive(Debug, Clone, Copy)]
pub struct SegmentHeat {
    /// Decayed heat as of `last_touch`.
    pub heat: Heat,
    /// Local + remote read accesses (undecayed lifetime count).
    pub reads: u64,
    /// Write accesses (undecayed lifetime count).
    pub writes: u64,
    /// Accesses that needed a remote page fetch (undecayed lifetime count).
    pub remote_fetches: u64,
    /// Analytic scans executed over the segment (undecayed lifetime count).
    pub scans: u64,
    /// Undecayed lifetime hardware demand charged to the segment (zero
    /// when running count-based).
    pub cost: CostVector,
    /// When `heat` was last brought current.
    pub last_touch: SimTime,
}

/// A per-segment heat snapshot row, joined with catalog placement (what
/// [`crate::api::WattDb::heat`] returns).
#[derive(Debug, Clone, Copy)]
pub struct SegmentHeatStat {
    /// Segment id.
    pub seg: SegmentId,
    /// Owning table.
    pub table: TableId,
    /// Node storing the segment.
    pub node: NodeId,
    /// Decayed heat at snapshot time.
    pub heat: f64,
    /// Lifetime read accesses.
    pub reads: u64,
    /// Lifetime write accesses.
    pub writes: u64,
    /// Lifetime remote page fetches.
    pub remote_fetches: u64,
    /// Lifetime analytic scans.
    pub scans: u64,
    /// Lifetime hardware demand (zero when running count-based).
    pub cost: CostVector,
    /// Disk footprint in bytes (before `io_scale`).
    pub bytes: u64,
}

/// The cluster-wide heat table.
///
/// # Hot-path layout
///
/// Segment ids are allocated densely by the catalog, so the table is a
/// flat `Vec` indexed by [`SegmentId::raw`] — the record path is an
/// array index, not a hash probe. Decay stops paying a transcendental
/// per access: the per-half-life factors `2^(−2^j µs / half_life)` are
/// precomputed once, and the factor for an arbitrary elapsed delta is
/// the product over the set bits of its microsecond count (≤ 64
/// multiplies, within ~1e-15 of the closed-form `exp2` — pinned ≤ 1e-9
/// by a regression test). [`HeatTable::decay_sweep`] additionally
/// brings every segment current once per monitoring window in one pass,
/// so planner reads inside the window see zero-elapsed entries.
#[derive(Debug)]
pub struct HeatTable {
    cfg: HeatConfig,
    /// Scalarization of cost vectors into heat; `None` falls back to the
    /// flat per-access weights in `cfg` (the legacy count-based signal).
    model: Option<CostModel>,
    /// `pow2[j] = 2^(−(2^j µs) / half_life)`; all ones when decay is off.
    pow2: [f64; 64],
    /// Tracked segments, indexed by [`SegmentId::raw`] (`None` = never
    /// touched).
    slots: Vec<Option<SegmentHeat>>,
}

/// Decay factor `2^(−elapsed/half_life)` assembled from the cached
/// power-of-two factors: one multiply per set bit of the microsecond
/// delta.
#[inline]
fn factor_of(pow2: &[f64; 64], elapsed: SimDuration) -> f64 {
    let mut d = elapsed.as_micros();
    let mut f = 1.0;
    while d != 0 {
        f *= pow2[d.trailing_zeros() as usize];
        if f == 0.0 {
            return 0.0;
        }
        d &= d - 1;
    }
    f
}

impl HeatTable {
    /// Empty **count-based** table with the given decay/weight
    /// configuration (the legacy signal; cost vectors are ignored).
    pub fn new(cfg: HeatConfig) -> Self {
        Self::with_cost_model(cfg, None)
    }

    /// Empty table; with a [`CostModel`] the heat signal is the
    /// scalarized access cost, without one it is the flat weighted count.
    pub fn with_cost_model(cfg: HeatConfig, model: Option<CostModel>) -> Self {
        let mut pow2 = [1.0f64; 64];
        let hl = cfg.half_life.as_micros();
        if hl > 0 {
            for (j, p) in pow2.iter_mut().enumerate() {
                *p = (-(((1u128 << j) as f64) / hl as f64)).exp2();
            }
        }
        Self {
            cfg,
            model,
            pow2,
            slots: Vec::new(),
        }
    }

    /// `heat` decayed by `elapsed` under the cached factors. Decay-off
    /// (`half_life == 0`) and zero elapsed return the value bit-for-bit
    /// unchanged, exactly like [`Heat::decayed`].
    #[inline]
    fn decay(&self, heat: Heat, elapsed: SimDuration) -> Heat {
        if self.cfg.half_life.as_micros() == 0 || elapsed.as_micros() == 0 {
            heat
        } else {
            Heat(heat.value() * factor_of(&self.pow2, elapsed))
        }
    }

    #[inline]
    fn entry(&self, seg: SegmentId) -> Option<&SegmentHeat> {
        self.slots.get(seg.raw() as usize).and_then(|o| o.as_ref())
    }

    /// Bring every tracked segment's heat current to `now` in one flat
    /// pass. The monitoring loop calls this once per window, so the
    /// planner's `node_heat`/`snapshot` reads inside the window hit
    /// zero-elapsed entries and the record path only ever decays across
    /// short intra-window deltas.
    pub fn decay_sweep(&mut self, now: SimTime) {
        if self.cfg.half_life.as_micros() == 0 {
            return;
        }
        let pow2 = self.pow2;
        for e in self.slots.iter_mut().flatten() {
            let elapsed = now.since(e.last_touch);
            if elapsed.as_micros() != 0 {
                e.heat = Heat(e.heat.value() * factor_of(&pow2, elapsed));
                e.last_touch = now;
            }
        }
    }

    /// The tracking configuration in force.
    pub fn config(&self) -> &HeatConfig {
        &self.cfg
    }

    /// The cost model in force, if the table runs cost-based.
    pub fn cost_model(&self) -> Option<&CostModel> {
        self.model.as_ref()
    }

    /// Label of the heat signal in force — `"cost"` (scalarized access
    /// cost) or `"count"` (flat weighted access counts). The single
    /// source for every surface that reports the signal
    /// (`ClusterStatus::heat_signal`, `ControlEvent::signal`).
    pub fn signal_label(&self) -> &'static str {
        if self.model.is_some() {
            "cost"
        } else {
            "count"
        }
    }

    fn bump(&mut self, seg: SegmentId, now: SimTime, weight: f64) -> &mut SegmentHeat {
        let idx = seg.raw() as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        let slot = &mut self.slots[idx];
        let e = slot.get_or_insert(SegmentHeat {
            heat: Heat::ZERO,
            reads: 0,
            writes: 0,
            remote_fetches: 0,
            scans: 0,
            cost: CostVector::ZERO,
            last_touch: now,
        });
        let elapsed = now.since(e.last_touch);
        if self.cfg.half_life.as_micros() != 0 && elapsed.as_micros() != 0 {
            e.heat = Heat(e.heat.value() * factor_of(&self.pow2, elapsed));
        }
        e.heat += Heat(weight);
        e.last_touch = now;
        e
    }

    /// Charge one record operation. `cost` is the access's measured
    /// hardware demand (CPU charged by the executor, pages pulled through
    /// the buffer pool, remote-fetch bytes); `remote` marks accesses that
    /// needed a remote page fetch. Cost-based tables scalarize the vector;
    /// count-based tables reduce to exactly the legacy flat weights
    /// (`read`/`write` plus the `remote` surcharge) and ignore the vector.
    pub fn record_access(
        &mut self,
        seg: SegmentId,
        now: SimTime,
        kind: AccessKind,
        cost: CostVector,
        remote: bool,
    ) {
        let weight = match &self.model {
            Some(m) => m.heat_of(cost).value(),
            None => {
                let base = match kind {
                    AccessKind::Read => self.cfg.read_weight,
                    AccessKind::Write => self.cfg.write_weight,
                };
                base + if remote { self.cfg.remote_weight } else { 0.0 }
            }
        };
        let costed = self.model.is_some();
        let e = self.bump(seg, now, weight);
        match kind {
            AccessKind::Read => e.reads += 1,
            AccessKind::Write => e.writes += 1,
        }
        if remote {
            e.remote_fetches += 1;
        }
        if costed {
            e.cost += cost;
        }
    }

    /// Weighted variant of [`HeatTable::record_access`]: one executed
    /// carrier access standing in for `n` modeled accesses of the same
    /// shape (pooled client mode). `cost` is the *per-access* vector; the
    /// table scales heat, counters, and the accumulated cost by `n`.
    /// Delegates to `record_access` at `n == 1`, so per-client runs are
    /// bit-for-bit unaffected.
    pub fn record_access_n(
        &mut self,
        seg: SegmentId,
        now: SimTime,
        kind: AccessKind,
        cost: CostVector,
        remote: bool,
        n: u64,
    ) {
        if n == 1 {
            return self.record_access(seg, now, kind, cost, remote);
        }
        let per = match &self.model {
            Some(m) => m.heat_of(cost).value(),
            None => {
                let base = match kind {
                    AccessKind::Read => self.cfg.read_weight,
                    AccessKind::Write => self.cfg.write_weight,
                };
                base + if remote { self.cfg.remote_weight } else { 0.0 }
            }
        };
        let costed = self.model.is_some();
        let e = self.bump(seg, now, per * n as f64);
        match kind {
            AccessKind::Read => e.reads += n,
            AccessKind::Write => e.writes += n,
        }
        if remote {
            e.remote_fetches += n;
        }
        if costed {
            e.cost += CostVector {
                cpu: SimDuration::from_micros(cost.cpu.as_micros() * n),
                pages: cost.pages * n,
                net_bytes: cost.net_bytes * n,
            };
        }
    }

    /// Charge one analytic scan (plus any attached operators) executed
    /// over the segment. Cost-based tables charge the operator cost — the
    /// whole point of cost-heat: a scan weighs its CPU/pages/bytes, not
    /// its single access. Count-based tables charge one `read_weight`
    /// (one access is what the legacy signal can see).
    pub fn record_scan(&mut self, seg: SegmentId, now: SimTime, cost: CostVector) {
        let weight = match &self.model {
            Some(m) => m.heat_of(cost).value(),
            None => self.cfg.read_weight,
        };
        let costed = self.model.is_some();
        let e = self.bump(seg, now, weight);
        e.scans += 1;
        if costed {
            e.cost += cost;
        }
    }

    /// Charge a local read access at the flat `read_weight` (legacy entry
    /// point; synthetic scenario drivers and tests inject heat through
    /// this regardless of the configured signal).
    pub fn record_read(&mut self, seg: SegmentId, now: SimTime) {
        let w = self.cfg.read_weight;
        self.bump(seg, now, w).reads += 1;
    }

    /// Charge a write access at the flat `write_weight` (legacy entry
    /// point, see [`HeatTable::record_read`]).
    pub fn record_write(&mut self, seg: SegmentId, now: SimTime) {
        let w = self.cfg.write_weight;
        self.bump(seg, now, w).writes += 1;
    }

    /// Charge the flat remote-fetch surcharge on top of the read/write
    /// already recorded for the operation (legacy entry point).
    pub fn record_remote_fetch(&mut self, seg: SegmentId, now: SimTime) {
        let w = self.cfg.remote_weight;
        self.bump(seg, now, w).remote_fetches += 1;
    }

    /// `n` local reads at once (pooled carriers; delegates to
    /// [`HeatTable::record_read`] at `n == 1`).
    pub fn record_reads(&mut self, seg: SegmentId, now: SimTime, n: u64) {
        if n == 1 {
            return self.record_read(seg, now);
        }
        let w = self.cfg.read_weight * n as f64;
        self.bump(seg, now, w).reads += n;
    }

    /// `n` write accesses at once (pooled carriers).
    pub fn record_writes(&mut self, seg: SegmentId, now: SimTime, n: u64) {
        if n == 1 {
            return self.record_write(seg, now);
        }
        let w = self.cfg.write_weight * n as f64;
        self.bump(seg, now, w).writes += n;
    }

    /// `n` remote-fetch surcharges at once (pooled carriers).
    pub fn record_remote_fetches(&mut self, seg: SegmentId, now: SimTime, n: u64) {
        if n == 1 {
            return self.record_remote_fetch(seg, now);
        }
        let w = self.cfg.remote_weight * n as f64;
        self.bump(seg, now, w).remote_fetches += n;
    }

    /// The segment's heat decayed to `now` (zero for never-touched
    /// segments).
    pub fn heat_of(&self, seg: SegmentId, now: SimTime) -> Heat {
        match self.entry(seg) {
            Some(e) => self.decay(e.heat, now.since(e.last_touch)),
            None => Heat::ZERO,
        }
    }

    /// Raw tracked state for a segment, if it was ever touched.
    pub fn stats(&self, seg: SegmentId) -> Option<&SegmentHeat> {
        self.entry(seg)
    }

    /// Total heat of the segments stored on `node`, decayed to `now` —
    /// the per-node signal rolled into monitoring reports.
    pub fn node_heat(&self, dir: &SegmentDirectory, node: NodeId, now: SimTime) -> Heat {
        dir.on_node(node)
            .map(|m| self.heat_of(m.id, now))
            .fold(Heat::ZERO, |a, b| a + b)
    }

    /// Joined per-segment snapshot over the whole catalog, hottest first.
    pub fn snapshot(&self, dir: &SegmentDirectory, now: SimTime) -> Vec<SegmentHeatStat> {
        let mut rows: Vec<SegmentHeatStat> = dir
            .iter()
            .map(|m| {
                let tracked = self.entry(m.id);
                SegmentHeatStat {
                    seg: m.id,
                    table: m.table,
                    node: m.node,
                    heat: self.heat_of(m.id, now).value(),
                    reads: tracked.map(|t| t.reads).unwrap_or(0),
                    writes: tracked.map(|t| t.writes).unwrap_or(0),
                    remote_fetches: tracked.map(|t| t.remote_fetches).unwrap_or(0),
                    scans: tracked.map(|t| t.scans).unwrap_or(0),
                    cost: tracked.map(|t| t.cost).unwrap_or(CostVector::ZERO),
                    bytes: m.disk_footprint().as_u64(),
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.heat
                .partial_cmp(&a.heat)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.seg.cmp(&b.seg))
        });
        rows
    }
}

/// Heat-aware scale-out plan over the live cluster state: snapshot
/// [`segment_stats_projected`] and plan with the given tolerance. The
/// single entry point shared by `policy::apply` and the facade, so both
/// always produce the same plan for the same state. Plans run against
/// *projected* heat (heat plus drift velocity over the configured
/// horizon); with a zero horizon or no drift observations this is exactly
/// historical heat.
pub fn plan_scale_out(
    c: &crate::cluster::Cluster,
    now: SimTime,
    tolerance: f64,
    sources: &[NodeId],
    targets: &[NodeId],
) -> wattdb_planner::Plan {
    let stats = segment_stats_projected(c, now);
    wattdb_planner::plan_scale_out(
        &stats,
        sources,
        targets,
        &wattdb_planner::PlanConfig { tolerance },
    )
}

/// Heat-aware drain plan over the live cluster state (see
/// [`plan_scale_out`]). Survivor targets are ranked by projected heat,
/// so a drained node's segments land on the nodes that will *stay* cold.
pub fn plan_drain(
    c: &crate::cluster::Cluster,
    now: SimTime,
    tolerance: f64,
    drain: &[NodeId],
    remaining: &[NodeId],
) -> wattdb_planner::Plan {
    let stats = segment_stats_projected(c, now);
    wattdb_planner::plan_drain(
        &stats,
        drain,
        remaining,
        &wattdb_planner::PlanConfig { tolerance },
    )
}

/// Replica-aware drain plan over the live cluster state: the
/// [`plan_drain`] leader moves *plus* a re-home for every follower copy
/// the drained nodes host, planned atomically so a scale-in never
/// orphans redundancy (see [`wattdb_planner::plan_drain_replicated`]).
/// Re-home hosts are the active, healthy, non-draining survivors with
/// their projected heat and measured NIC utilization — the same pool and
/// ranking background repair uses.
pub fn plan_drain_replicated(
    c: &crate::cluster::Cluster,
    now: SimTime,
    tolerance: f64,
    drain: &[NodeId],
    remaining: &[NodeId],
) -> wattdb_planner::DrainPlan {
    use wattdb_energy::NodeState;
    let stats = segment_stats_projected(c, now);
    let sites: Vec<wattdb_planner::ReplicaSite> = c
        .replicas
        .iter()
        .map(|(seg, set)| wattdb_planner::ReplicaSite {
            seg,
            leader: set.leader,
            followers: set.followers.clone(),
        })
        .collect();
    let hosts: Vec<wattdb_planner::NodeLoadStat> = c
        .nodes
        .iter()
        .filter(|n| {
            n.state == NodeState::Active
                && !c.failed.contains(&n.id)
                && !c.draining.contains(&n.id)
                && !drain.contains(&n.id)
        })
        .map(|n| wattdb_planner::NodeLoadStat {
            node: n.id,
            heat: c.heat.node_heat(&c.seg_dir, n.id, now).value(),
            net_heat: c.net_util.get(n.id.raw() as usize).copied().unwrap_or(0.0),
        })
        .collect();
    wattdb_planner::plan_drain_replicated(
        &stats,
        drain,
        remaining,
        &wattdb_planner::PlanConfig { tolerance },
        &sites,
        &hosts,
        c.cfg.replication.factor,
    )
}

/// Per-node helper-planning rows for the given nodes: total decayed heat
/// and its net/remote-heavy component.
///
/// Under the cost signal each segment's decayed heat is split by the
/// *net share* of its lifetime cost vector (`net_bytes ×
/// net_byte_weight` over the scalarized total), so a node whose heat is
/// mostly remote page fetches and record shipping ranks far above one
/// burning the same heat in local CPU. Under the count signal the
/// components are invisible and `net_heat` falls back to the total heat
/// (see [`wattdb_planner::NodeLoadStat`]).
pub fn node_load_stats(
    c: &crate::cluster::Cluster,
    now: SimTime,
    nodes: &[NodeId],
) -> Vec<wattdb_planner::NodeLoadStat> {
    let model = c.heat.cost_model();
    nodes
        .iter()
        .map(|&n| {
            let mut total = 0.0;
            let mut net = 0.0;
            for m in c.seg_dir.on_node(n) {
                let heat = c.heat.heat_of(m.id, now).value();
                total += heat;
                let share = match (model, c.heat.stats(m.id)) {
                    (Some(model), Some(s)) if !s.cost.is_zero() => {
                        let whole = model.heat_of(s.cost).value();
                        if whole > 0.0 {
                            let net_only = CostVector {
                                net_bytes: s.cost.net_bytes,
                                ..CostVector::ZERO
                            };
                            model.heat_of(net_only).value() / whole
                        } else {
                            0.0
                        }
                    }
                    // Count signal (or a synthetically warmed segment with
                    // no cost trace): components are invisible — fall back
                    // to the total.
                    _ => 1.0,
                };
                net += heat * share;
            }
            wattdb_planner::NodeLoadStat {
                node: n,
                heat: total,
                net_heat: net,
            }
        })
        .collect()
}

/// Helper plan over the live cluster state: rank `sources` by their
/// net/remote-heavy heat and pair the heaviest with helpers drawn from
/// the standbys and coldest actives — never a node entangled in the
/// in-flight migration, never one already helping, never the master
/// while an alternative exists. A source already wired to a helper is
/// dropped (it has its relief; planning is idempotent). The single entry
/// point shared by `policy::apply` and the facade (see
/// [`plan_scale_out`]).
pub fn plan_helpers(
    c: &crate::cluster::Cluster,
    now: SimTime,
    cfg: &wattdb_common::HelperPolicyConfig,
    sources: &[NodeId],
) -> wattdb_planner::HelperPlan {
    use wattdb_energy::NodeState;
    let unhelped: Vec<NodeId> = sources
        .iter()
        .copied()
        .filter(|n| c.nodes[n.raw() as usize].helper.is_none())
        .collect();
    let loads = node_load_stats(c, now, &unhelped);
    let candidates: Vec<wattdb_planner::HelperCandidate> = c
        .nodes
        .iter()
        .map(|n| wattdb_planner::HelperCandidate {
            node: n.id,
            heat: c.heat.node_heat(&c.seg_dir, n.id, now).value(),
            // Last windowed NIC egress, persisted by the monitoring loop:
            // among equally attractive actives the planner takes the one
            // with the idlest interconnect, since helper duty is pure
            // network traffic.
            net: c.net_util.get(n.id.raw() as usize).copied().unwrap_or(0.0),
            standby: n.state == NodeState::Standby,
        })
        .collect();
    let mut excluded: Vec<NodeId> = crate::migration::nodes_in_flight(c).into_iter().collect();
    excluded.extend(c.failed.iter().copied());
    excluded.extend(c.helpers_active.iter().copied());
    // The full source list stays out of the candidate pool even where a
    // member was dropped from the loads above (already helped): a node
    // hot enough to be named a source never moonlights as a helper, and
    // neither does any node currently leaning on one.
    excluded.extend(sources.iter().copied());
    excluded.extend(c.nodes.iter().filter(|n| n.helper.is_some()).map(|n| n.id));
    wattdb_planner::plan_helpers(
        &loads,
        &candidates,
        &excluded,
        &wattdb_planner::HelperConfig {
            max_helpers: cfg.max_helpers,
            min_net_heat: cfg.min_net_heat,
        },
    )
}

/// Replica placement plan over the live cluster state: one
/// [`wattdb_planner::ReplicaNeed`] per segment whose follower count is
/// below `cfg.replication.factor` (leader = the current owner in the
/// segment catalog), hosted on the active, non-failed nodes. Host rows
/// carry total decayed heat plus the *measured* NIC utilization persisted
/// by the monitoring loop, so followers land on cold nodes with idle
/// interconnects — the same failure-domain spread the planner enforces
/// (never the leader's node, distinct nodes per segment). The single
/// entry point shared by bootstrap and post-failover re-replication.
pub fn plan_replicas(c: &crate::cluster::Cluster, now: SimTime) -> wattdb_planner::ReplicaPlan {
    use wattdb_energy::NodeState;
    let factor = c.cfg.replication.factor;
    if factor == 0 {
        return wattdb_planner::ReplicaPlan {
            placements: Vec::new(),
        };
    }
    let needs: Vec<wattdb_planner::ReplicaNeed> = c
        .seg_dir
        .iter()
        .filter(|m| !c.failed.contains(&m.node))
        .filter_map(|m| {
            let existing: Vec<NodeId> = c
                .replicas
                .followers_of(m.id)
                .iter()
                .copied()
                .filter(|f| !c.failed.contains(f))
                .collect();
            if existing.len() < factor {
                Some(wattdb_planner::ReplicaNeed {
                    seg: m.id,
                    leader: m.node,
                    existing,
                })
            } else {
                None
            }
        })
        .collect();
    let hosts: Vec<wattdb_planner::NodeLoadStat> = c
        .nodes
        .iter()
        .filter(|n| {
            // A draining node is about to suspend: placing a fresh copy
            // there would only schedule its own re-home.
            n.state == NodeState::Active && !c.failed.contains(&n.id) && !c.draining.contains(&n.id)
        })
        .map(|n| wattdb_planner::NodeLoadStat {
            node: n.id,
            heat: c.heat.node_heat(&c.seg_dir, n.id, now).value(),
            net_heat: c.net_util.get(n.id.raw() as usize).copied().unwrap_or(0.0),
        })
        .collect();
    wattdb_planner::plan_replicas(&needs, &hosts, factor)
}

/// Planner inputs for the whole catalog: footprint bytes scaled by
/// `io_scale`, heat decayed to `now`.
pub fn segment_stats(
    c: &crate::cluster::Cluster,
    now: SimTime,
) -> Vec<wattdb_planner::SegmentStat> {
    c.seg_dir
        .iter()
        .map(|m| wattdb_planner::SegmentStat {
            seg: m.id,
            table: m.table,
            range: m.key_range.unwrap_or_else(wattdb_common::KeyRange::all),
            node: m.node,
            bytes: m
                .disk_footprint()
                .as_u64()
                .max(wattdb_storage::PAGE_SIZE as u64)
                * c.cfg.io_scale,
            heat: c.heat.heat_of(m.id, now).value(),
        })
        .collect()
}

/// [`segment_stats`] with each segment's heat replaced by its *projected*
/// heat at the cluster's configured drift horizon (`cfg.drift.horizon`).
/// Identical to `segment_stats` when the horizon is zero or no drift has
/// been observed yet.
pub fn segment_stats_projected(
    c: &crate::cluster::Cluster,
    now: SimTime,
) -> Vec<wattdb_planner::SegmentStat> {
    let horizon = c.cfg.drift.horizon;
    let mut stats = segment_stats(c, now);
    if horizon.as_micros() == 0 || c.drift.is_empty() {
        return stats;
    }
    for s in &mut stats {
        s.heat = c.drift.projected(s.seg, s.heat, horizon);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattdb_common::{DiskId, SimDuration};

    fn table() -> HeatTable {
        HeatTable::new(HeatConfig {
            half_life: SimDuration::from_secs(10),
            read_weight: 1.0,
            write_weight: 2.0,
            remote_weight: 0.5,
        })
    }

    #[test]
    fn accesses_accumulate_with_weights() {
        let mut t = table();
        let now = SimTime::from_secs(1);
        t.record_read(SegmentId(1), now);
        t.record_write(SegmentId(1), now);
        t.record_remote_fetch(SegmentId(1), now);
        let h = t.heat_of(SegmentId(1), now).value();
        assert!((h - 3.5).abs() < 1e-9, "{h}");
        let s = t.stats(SegmentId(1)).unwrap();
        assert_eq!((s.reads, s.writes, s.remote_fetches), (1, 1, 1));
    }

    #[test]
    fn heat_decays_between_touches() {
        let mut t = table();
        t.record_read(SegmentId(1), SimTime::from_secs(0));
        // One half-life later the original unit read is worth 0.5.
        let h = t.heat_of(SegmentId(1), SimTime::from_secs(10)).value();
        assert!((h - 0.5).abs() < 1e-9, "{h}");
        // Touching applies the decay before adding the new weight.
        t.record_read(SegmentId(1), SimTime::from_secs(10));
        let h2 = t.heat_of(SegmentId(1), SimTime::from_secs(10)).value();
        assert!((h2 - 1.5).abs() < 1e-9, "{h2}");
    }

    #[test]
    fn untouched_segments_are_cold() {
        let t = table();
        assert_eq!(t.heat_of(SegmentId(9), SimTime::from_secs(5)).value(), 0.0);
        assert!(t.stats(SegmentId(9)).is_none());
    }

    #[test]
    fn node_heat_rolls_up_per_placement() {
        let mut dir = SegmentDirectory::new();
        let a = dir.create(TableId(1), NodeId(0), DiskId::new(NodeId(0), 1), None, 16);
        let b = dir.create(TableId(1), NodeId(1), DiskId::new(NodeId(1), 1), None, 16);
        let mut t = table();
        let now = SimTime::from_secs(1);
        t.record_read(a, now);
        t.record_read(a, now);
        t.record_write(b, now);
        assert!((t.node_heat(&dir, NodeId(0), now).value() - 2.0).abs() < 1e-9);
        assert!((t.node_heat(&dir, NodeId(1), now).value() - 2.0).abs() < 1e-9);
        // Heat follows the segment when the catalog relocates it.
        dir.relocate(a, NodeId(1), DiskId::new(NodeId(1), 1))
            .unwrap();
        assert_eq!(t.node_heat(&dir, NodeId(0), now).value(), 0.0);
        assert!((t.node_heat(&dir, NodeId(1), now).value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_sorts_hottest_first() {
        let mut dir = SegmentDirectory::new();
        let a = dir.create(TableId(1), NodeId(0), DiskId::new(NodeId(0), 1), None, 16);
        let b = dir.create(TableId(1), NodeId(0), DiskId::new(NodeId(0), 1), None, 16);
        let mut t = table();
        let now = SimTime::from_secs(1);
        t.record_read(a, now);
        t.record_write(b, now);
        let snap = t.snapshot(&dir, now);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].seg, b, "writes outweigh reads");
        assert!(snap[0].heat > snap[1].heat);
    }

    // ------------------------------------------------------ cost-based heat

    fn point_read_cost() -> CostVector {
        CostVector {
            cpu: SimDuration::from_micros(12),
            pages: 1,
            net_bytes: 0,
        }
    }

    #[test]
    fn count_fallback_reduces_exactly_to_the_flat_weights() {
        // The regression behind the back-compat guarantee: a count-based
        // table fed through the unified `record_access` path must produce
        // the *identical* heat trajectory as the legacy record_* calls,
        // whatever cost vectors the executor hands it.
        let mut unified = table();
        let mut legacy = table();
        let seg = SegmentId(7);
        let steps: &[(u64, AccessKind, bool)] = &[
            (0, AccessKind::Read, false),
            (3, AccessKind::Write, false),
            (3, AccessKind::Read, true),
            (14, AccessKind::Write, true),
            (40, AccessKind::Read, false),
        ];
        for &(secs, kind, remote) in steps {
            let now = SimTime::from_secs(secs);
            unified.record_access(seg, now, kind, point_read_cost(), remote);
            match kind {
                AccessKind::Read => legacy.record_read(seg, now),
                AccessKind::Write => legacy.record_write(seg, now),
            }
            if remote {
                legacy.record_remote_fetch(seg, now);
            }
            let (hu, hl) = (
                unified.heat_of(seg, now).value(),
                legacy.heat_of(seg, now).value(),
            );
            assert!(
                (hu - hl).abs() < 1e-12,
                "trajectories diverged at t={secs}: unified {hu} vs legacy {hl}"
            );
        }
        let (u, l) = (unified.stats(seg).unwrap(), legacy.stats(seg).unwrap());
        assert_eq!((u.reads, u.writes, u.remote_fetches), (3, 2, 2));
        assert_eq!(
            (u.reads, u.writes, u.remote_fetches),
            (l.reads, l.writes, l.remote_fetches)
        );
        assert!(u.cost.is_zero(), "count-based tables accumulate no cost");
    }

    #[test]
    fn cost_model_scalarizes_instead_of_counting() {
        let mut t = HeatTable::with_cost_model(
            HeatConfig {
                half_life: SimDuration::ZERO,
                ..Default::default()
            },
            Some(CostModel {
                cpu_weight: 0.1,
                page_weight: 1.0,
                net_byte_weight: 0.01,
            }),
        );
        let now = SimTime::from_secs(1);
        let cost = CostVector {
            cpu: SimDuration::from_micros(30),
            pages: 2,
            net_bytes: 100,
        };
        t.record_access(SegmentId(1), now, AccessKind::Read, cost, true);
        let h = t.heat_of(SegmentId(1), now).value();
        assert!((h - (3.0 + 2.0 + 1.0)).abs() < 1e-9, "{h}");
        let s = t.stats(SegmentId(1)).unwrap();
        assert_eq!((s.reads, s.remote_fetches), (1, 1));
        assert_eq!(s.cost, cost, "lifetime cost accumulated");
        assert!(t.cost_model().is_some());
    }

    #[test]
    fn scans_weigh_their_cost_under_the_model_and_one_access_without() {
        let scan_cost = CostVector {
            cpu: SimDuration::from_micros(42_000), // 2000 records × 21 µs
            pages: 100,
            net_bytes: 0,
        };
        let now = SimTime::from_secs(1);
        let mut costed =
            HeatTable::with_cost_model(HeatConfig::default(), Some(CostModel::default()));
        costed.record_scan(SegmentId(1), now, scan_cost);
        costed.record_access(
            SegmentId(2),
            now,
            AccessKind::Read,
            point_read_cost(),
            false,
        );
        let (scan_h, read_h) = (
            costed.heat_of(SegmentId(1), now).value(),
            costed.heat_of(SegmentId(2), now).value(),
        );
        assert!(
            scan_h > 100.0 * read_h,
            "a heavy scan dwarfs a point read under cost-heat: {scan_h} vs {read_h}"
        );
        assert_eq!(costed.stats(SegmentId(1)).unwrap().scans, 1);
        // Count-based: the same scan is one access.
        let mut counted = table();
        counted.record_scan(SegmentId(1), now, scan_cost);
        let h = counted.heat_of(SegmentId(1), now).value();
        assert!((h - counted.config().read_weight).abs() < 1e-9, "{h}");
    }

    // ------------------------------------------------- lazy-decay regression

    /// The legacy per-touch arithmetic: decay with a fresh `exp2` on
    /// every access (what `HeatTable::bump` did before the cached-factor
    /// refactor).
    struct LegacyRef {
        heat: f64,
        last: SimTime,
        half_life: SimDuration,
    }

    impl LegacyRef {
        fn touch(&mut self, now: SimTime, weight: f64) {
            self.heat = Heat(self.heat)
                .decayed(now.since(self.last), self.half_life)
                .value()
                + weight;
            self.last = now;
        }
        fn at(&self, now: SimTime) -> f64 {
            Heat(self.heat)
                .decayed(now.since(self.last), self.half_life)
                .value()
        }
    }

    /// Irregular access gaps — prime-ish microsecond offsets so the
    /// elapsed deltas exercise many bit patterns of the factor cache.
    fn access_schedule() -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        let mut t: u64 = 1;
        for i in 0..200u64 {
            t += 13 + (i * i * 7919) % 5_000_003;
            out.push((SimTime(t), 1.0 + (i % 7) as f64));
        }
        out
    }

    /// An access-then-query sequence through the cached-factor path must
    /// stay within 1e-9 of the legacy fresh-`exp2` arithmetic, with or
    /// without interleaved window sweeps.
    #[test]
    fn cached_decay_matches_legacy_exp2_within_1e9() {
        for sweep_every in [0usize, 3] {
            let half_life = SimDuration::from_secs(30);
            let mut t = HeatTable::new(HeatConfig {
                half_life,
                read_weight: 1.0,
                write_weight: 2.0,
                remote_weight: 0.5,
            });
            let mut r = LegacyRef {
                heat: 0.0,
                last: SimTime::ZERO,
                half_life,
            };
            let seg = SegmentId(3);
            for (i, &(now, w)) in access_schedule().iter().enumerate() {
                t.bump(seg, now, w);
                r.touch(now, w);
                if sweep_every != 0 && i % sweep_every == 0 {
                    t.decay_sweep(now);
                }
                let (new, old) = (t.heat_of(seg, now).value(), r.at(now));
                let tol = 1e-9 * old.abs().max(1.0);
                assert!(
                    (new - old).abs() <= tol,
                    "diverged at step {i} (sweep_every={sweep_every}): \
                     cached {new} vs legacy {old}"
                );
                // …and when queried mid-idle, a half-life later.
                let later = now + half_life;
                let (new_l, old_l) = (t.heat_of(seg, later).value(), r.at(later));
                assert!(
                    (new_l - old_l).abs() <= 1e-9 * old_l.abs().max(1.0),
                    "idle query diverged at step {i}: {new_l} vs {old_l}"
                );
            }
        }
    }

    /// With decay off (`half_life = 0`) the refactor must be *bitwise*
    /// identical to the legacy arithmetic: pure weight accumulation,
    /// no factor ever applied, sweeps are no-ops.
    #[test]
    fn decay_off_is_bitwise_stable() {
        let mut t = HeatTable::new(HeatConfig {
            half_life: SimDuration::ZERO,
            read_weight: 1.0,
            write_weight: 2.0,
            remote_weight: 0.5,
        });
        let mut r = LegacyRef {
            heat: 0.0,
            last: SimTime::ZERO,
            half_life: SimDuration::ZERO,
        };
        let seg = SegmentId(5);
        for (i, &(now, w)) in access_schedule().iter().enumerate() {
            t.bump(seg, now, w);
            r.touch(now, w);
            t.decay_sweep(now);
            let (new, old) = (t.heat_of(seg, now).value(), r.at(now));
            assert_eq!(
                new.to_bits(),
                old.to_bits(),
                "decay-off bits diverged at step {i}: {new} vs {old}"
            );
        }
    }
}
