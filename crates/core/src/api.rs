//! The high-level WattDB facade: build a cluster, drive a workload,
//! rebalance, read out the experiment series.
//!
//! ```
//! use wattdb_core::api::WattDb;
//! use wattdb_core::cluster::Scheme;
//! use wattdb_common::{NodeId, SimDuration};
//!
//! let mut db = WattDb::builder()
//!     .nodes(4)
//!     .scheme(Scheme::Physiological)
//!     .warehouses(2)
//!     .density(0.01)
//!     .initial_data_nodes(&[NodeId(0), NodeId(1)])
//!     .build();
//! db.start_oltp(8, SimDuration::from_millis(100));
//! db.run_for(SimDuration::from_secs(5));
//! assert!(db.completed() > 0);
//! ```

use wattdb_common::{NodeId, SimDuration, SimTime};
use wattdb_sim::Sim;
use wattdb_tpcc::{ClientConfig, TpccConfig};
use wattdb_txn::CcMode;

use crate::cluster::{Cluster, ClusterConfig, ClusterRc, Scheme};
use crate::executor;
use crate::migration;

/// Builder for a ready-to-run WattDB deployment.
pub struct WattDbBuilder {
    cfg: ClusterConfig,
    tpcc: TpccConfig,
    initial: Vec<NodeId>,
}

impl Default for WattDbBuilder {
    fn default() -> Self {
        Self {
            cfg: ClusterConfig::default(),
            tpcc: TpccConfig::default(),
            initial: vec![NodeId(0), NodeId(1)],
        }
    }
}

impl WattDbBuilder {
    /// Total cluster size.
    pub fn nodes(mut self, n: u16) -> Self {
        self.cfg.nodes = n;
        self
    }

    /// Repartitioning scheme.
    pub fn scheme(mut self, s: Scheme) -> Self {
        self.cfg.scheme = s;
        self
    }

    /// Concurrency control mode.
    pub fn cc_mode(mut self, m: CcMode) -> Self {
        self.cfg.cc_mode = m;
        self
    }

    /// TPC-C scale factor.
    pub fn warehouses(mut self, w: u32) -> Self {
        self.tpcc.warehouses = w;
        self
    }

    /// TPC-C cardinality density.
    pub fn density(mut self, d: f64) -> Self {
        self.tpcc.density = d;
        self
    }

    /// Bulk-I/O scale multiplier (see DESIGN.md).
    pub fn io_scale(mut self, s: u64) -> Self {
        self.cfg.io_scale = s;
        self
    }

    /// Pages per segment.
    pub fn segment_pages(mut self, p: u32) -> Self {
        self.cfg.segment_pages = p;
        self
    }

    /// Explicit per-node buffer pool size in pages (0 = auto 1/10 data).
    pub fn buffer_pages(mut self, p: usize) -> Self {
        self.cfg.buffer_pages = p;
        self
    }

    /// Metric bucket width.
    pub fn bucket(mut self, b: SimDuration) -> Self {
        self.cfg.bucket = b;
        self
    }

    /// Override the CPU cost calibration (e.g. scaled-up per-op costs to
    /// model heavier SQL-layer work per transaction).
    pub fn costs(mut self, c: wattdb_common::CostParams) -> Self {
        self.cfg.costs = c;
        self
    }

    /// Experiment seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.cfg.seed = s;
        self.tpcc.seed = s;
        self
    }

    /// Nodes that host the initial data (and start powered).
    pub fn initial_data_nodes(mut self, nodes: &[NodeId]) -> Self {
        self.initial = nodes.to_vec();
        self
    }

    /// Build, load TPC-C, and start the power sampler.
    pub fn build(self) -> WattDb {
        let cluster = Cluster::new(self.cfg, &self.initial);
        let mut sim = Sim::new();
        {
            let mut c = cluster.borrow_mut();
            c.load_tpcc(self.tpcc, &self.initial)
                .expect("dataset loads");
        }
        Cluster::start_power_sampler(&cluster, &mut sim);
        WattDb { sim, cluster }
    }
}

/// A running WattDB deployment under simulation.
pub struct WattDb {
    /// The event loop.
    pub sim: Sim,
    /// The cluster state.
    pub cluster: ClusterRc,
}

impl WattDb {
    /// Start building a deployment.
    pub fn builder() -> WattDbBuilder {
        WattDbBuilder::default()
    }

    /// Spawn `n` closed-loop clients with the given mean think time and
    /// start them.
    pub fn start_oltp(&mut self, n: u32, think: SimDuration) {
        {
            let mut c = self.cluster.borrow_mut();
            c.spawn_clients(
                n,
                ClientConfig {
                    think_time: think,
                    ..Default::default()
                },
            );
        }
        executor::start_clients(&self.cluster, &mut self.sim);
    }

    /// Advance virtual time by `d`.
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.sim.now() + d;
        self.sim.run_until(until);
    }

    /// Advance to absolute time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Kick off a rebalance moving `fraction` of each source's data.
    pub fn rebalance(&mut self, fraction: f64, sources: &[NodeId], targets: &[NodeId]) {
        migration::start_rebalance(&self.cluster, &mut self.sim, fraction, sources, targets);
    }

    /// Rebalance with helper nodes attached for the duration (Fig. 8).
    pub fn rebalance_with_helpers(
        &mut self,
        fraction: f64,
        sources: &[NodeId],
        targets: &[NodeId],
        helpers: &[NodeId],
    ) {
        migration::attach_helpers(&self.cluster, &mut self.sim, sources, helpers);
        migration::start_rebalance(&self.cluster, &mut self.sim, fraction, sources, targets);
    }

    /// Is a rebalance still running?
    pub fn rebalancing(&self) -> bool {
        self.cluster.borrow().mover.is_some()
    }

    /// Stop clients from submitting further transactions.
    pub fn stop_clients(&mut self) {
        self.cluster.borrow_mut().stopped = true;
    }

    /// Completed transactions so far.
    pub fn completed(&self) -> u64 {
        self.cluster.borrow().metrics.completed
    }

    /// Aborted transaction attempts so far.
    pub fn aborted(&self) -> u64 {
        self.cluster.borrow().metrics.aborted
    }

    /// The experiment time series, resolved against the power meter:
    /// `(bucket start, qps, mean response ms, mean power W, J/query)`.
    pub fn timeseries(&self) -> Vec<(SimTime, f64, f64, f64, f64)> {
        let c = self.cluster.borrow();
        let bucket = c.metrics.qps.width();
        let bucket_secs = bucket.as_secs_f64();
        // Aggregate the 1 Hz power samples into metric buckets.
        let mut power_sum: std::collections::HashMap<u64, (f64, u64)> =
            std::collections::HashMap::new();
        for s in c.meter.series() {
            let b = s.at.as_micros() / bucket.as_micros();
            let e = power_sum.entry(b).or_insert((0.0, 0));
            e.0 += s.power.0;
            e.1 += 1;
        }
        c.metrics
            .qps
            .iter()
            .zip(c.metrics.response.iter())
            .map(|((at, count, _), (_, _, resp_sum))| {
                let b = at.as_micros() / bucket.as_micros();
                let power = power_sum
                    .get(&b)
                    .map(|(sum, n)| sum / *n as f64)
                    .unwrap_or(0.0);
                let qps = count as f64 / bucket_secs;
                let resp = if count > 0 {
                    resp_sum / count as f64
                } else {
                    0.0
                };
                let jpq = if count > 0 {
                    power * bucket_secs / count as f64
                } else {
                    0.0
                };
                (at, qps, resp, power, jpq)
            })
            .collect()
    }

    /// Current total cluster power (fresh sample).
    pub fn power_now(&mut self) -> f64 {
        let now = self.sim.now();
        self.cluster.borrow_mut().sample_power(now).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Phase;

    fn small() -> WattDb {
        WattDb::builder()
            .nodes(4)
            .warehouses(2)
            .density(0.01)
            .segment_pages(8)
            .initial_data_nodes(&[NodeId(0), NodeId(1)])
            .seed(7)
            .build()
    }

    #[test]
    fn oltp_completes_transactions() {
        let mut db = small();
        db.start_oltp(4, SimDuration::from_millis(50));
        db.run_for(SimDuration::from_secs(10));
        assert!(db.completed() > 50, "completed {}", db.completed());
        let c = db.cluster.borrow();
        assert!(c.txn.commit_count() > 0);
        // All completions attributed to the normal phase.
        assert!(c.metrics.mean_profile(Phase::Normal).is_some());
    }

    #[test]
    fn physiological_rebalance_moves_ownership() {
        let mut db = small();
        db.start_oltp(4, SimDuration::from_millis(50));
        db.run_for(SimDuration::from_secs(5));
        let before: u64 = {
            let c = db.cluster.borrow();
            c.seg_dir.on_node(NodeId(2)).count() as u64
        };
        assert_eq!(before, 0);
        db.rebalance(0.5, &[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
        db.run_for(SimDuration::from_secs(120));
        assert!(!db.rebalancing(), "rebalance finished");
        let c = db.cluster.borrow();
        assert!(c.seg_dir.on_node(NodeId(2)).count() > 0, "segments arrived");
        assert!(c.last_rebalance.is_some());
        let r = c.last_rebalance.unwrap();
        assert!(r.segments_moved > 0);
    }

    #[test]
    fn no_records_lost_across_physiological_move() {
        let mut db = small();
        // No OLTP load: the record population must be identical.
        let count_all = |db: &WattDb| -> usize {
            let c = db.cluster.borrow();
            c.indexes.values().map(|i| i.len()).sum()
        };
        let before = count_all(&db);
        db.rebalance(0.5, &[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
        db.run_for(SimDuration::from_secs(120));
        assert!(!db.rebalancing());
        assert_eq!(count_all(&db), before, "no records lost or duplicated");
    }

    #[test]
    fn timeseries_has_power_column() {
        let mut db = small();
        db.start_oltp(2, SimDuration::from_millis(50));
        db.run_for(SimDuration::from_secs(15));
        let ts = db.timeseries();
        assert!(!ts.is_empty());
        let (_, qps, _resp, power, _jpq) = ts[0];
        assert!(qps > 0.0);
        assert!(power > 40.0, "cluster draws real power: {power}");
    }

    #[test]
    fn stop_clients_quiesces() {
        let mut db = small();
        db.start_oltp(2, SimDuration::from_millis(50));
        db.run_for(SimDuration::from_secs(5));
        db.stop_clients();
        let at_stop = db.completed();
        db.run_for(SimDuration::from_secs(5));
        let after = db.completed();
        // In-flight work may finish but no flood of new transactions.
        assert!(after - at_stop < 20, "drained: {at_stop} -> {after}");
    }
}
