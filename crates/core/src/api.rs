//! The high-level WattDB facade: build a cluster, drive a workload, let
//! the autopilot resize it, read out the experiment series.
//!
//! The facade owns the simulator and the cluster outright. Everyday
//! operation goes through typed methods — [`WattDb::status`],
//! [`WattDb::events`], [`WattDb::timeseries`], [`WattDb::rebalance`] —
//! and research code that needs the raw engine state borrows it through
//! the scoped [`WattDb::with_cluster`] family instead of reaching into
//! `Rc<RefCell<…>>` internals.
//!
//! ```
//! use wattdb_core::api::WattDb;
//! use wattdb_core::cluster::Scheme;
//! use wattdb_common::{NodeId, SimDuration};
//!
//! let mut db = WattDb::builder()
//!     .nodes(4)
//!     .scheme(Scheme::Physiological)
//!     .warehouses(2)
//!     .density(0.01)
//!     .initial_data_nodes(&[NodeId(0), NodeId(1)])
//!     .autopilot(true)
//!     .build();
//! db.start_oltp(8, SimDuration::from_millis(100));
//! db.run_for(SimDuration::from_secs(5));
//! assert!(db.completed() > 0);
//! let status = db.status();
//! assert_eq!(status.nodes.len(), 4);
//! ```

use wattdb_common::{
    CostModel, DriftConfig, HeatConfig, HelperPolicyConfig, KeyRange, NodeId, ReplicaConfig,
    SimDuration, SimTime, TableId, Watts,
};
use wattdb_energy::NodeState;
use wattdb_planner::{HelperPlan, Plan, Planner};
use wattdb_replica::ReplicaMap;
use wattdb_sim::{Sim, UtilizationProbe};
use wattdb_tpcc::{ClientConfig, LoadTrace, TpccConfig};
use wattdb_txn::CcMode;

use crate::autopilot::{AutoPilot, AutoPilotConfig, ControlEvent};
use crate::cluster::{Cluster, ClusterConfig, ClusterRc, Scheme};
use crate::executor;
use crate::heat::{self, SegmentDriftStat, SegmentHeatStat};
use crate::migration::{self, HelperReport, RebalanceReport, SegmentMove};
use crate::policy::PolicyConfig;

/// Builder for a ready-to-run WattDB deployment.
pub struct WattDbBuilder {
    cfg: ClusterConfig,
    tpcc: TpccConfig,
    initial: Vec<NodeId>,
    policy: PolicyConfig,
    monitoring: SimDuration,
    autopilot: bool,
    telemetry: bool,
    trace: Option<(LoadTrace, SimDuration)>,
}

impl Default for WattDbBuilder {
    fn default() -> Self {
        Self {
            cfg: ClusterConfig::default(),
            tpcc: TpccConfig::default(),
            initial: vec![NodeId(0), NodeId(1)],
            policy: PolicyConfig::default(),
            monitoring: SimDuration::from_secs(5),
            autopilot: false,
            telemetry: false,
            trace: None,
        }
    }
}

impl WattDbBuilder {
    /// Total cluster size.
    pub fn nodes(mut self, n: u16) -> Self {
        self.cfg.nodes = n;
        self
    }

    /// Repartitioning scheme.
    pub fn scheme(mut self, s: Scheme) -> Self {
        self.cfg.scheme = s;
        self
    }

    /// Concurrency control mode.
    pub fn cc_mode(mut self, m: CcMode) -> Self {
        self.cfg.cc_mode = m;
        self
    }

    /// TPC-C scale factor.
    pub fn warehouses(mut self, w: u32) -> Self {
        self.tpcc.warehouses = w;
        self
    }

    /// TPC-C cardinality density.
    pub fn density(mut self, d: f64) -> Self {
        self.tpcc.density = d;
        self
    }

    /// Bulk-I/O scale multiplier. Segment copies and migration scans
    /// charge `bytes × io_scale`, so a memory-friendly scaled-down dataset
    /// still produces the transfer times of the paper's 100 GB deployment;
    /// leave at 1 for functional tests, raise into the hundreds to
    /// reproduce Fig. 6-class rebalance durations.
    pub fn io_scale(mut self, s: u64) -> Self {
        self.cfg.io_scale = s;
        self
    }

    /// Pages per segment.
    pub fn segment_pages(mut self, p: u32) -> Self {
        self.cfg.segment_pages = p;
        self
    }

    /// Explicit per-node buffer pool size in pages (0 = auto 1/10 data).
    pub fn buffer_pages(mut self, p: usize) -> Self {
        self.cfg.buffer_pages = p;
        self
    }

    /// Metric bucket width.
    pub fn bucket(mut self, b: SimDuration) -> Self {
        self.cfg.bucket = b;
        self
    }

    /// Override the CPU cost calibration (e.g. scaled-up per-op costs to
    /// model heavier SQL-layer work per transaction).
    pub fn costs(mut self, c: wattdb_common::CostParams) -> Self {
        self.cfg.costs = c;
        self
    }

    /// Which planner turns elasticity decisions into segment moves
    /// (default: the heat-aware planner).
    pub fn planner(mut self, p: Planner) -> Self {
        self.policy.planner = p;
        self
    }

    /// Heat-tracking parameters: decay half-life and per-access weights.
    pub fn heat_tracking(mut self, h: HeatConfig) -> Self {
        self.cfg.heat = h;
        self
    }

    /// The heat signal's cost model. `Some` (the default) makes heat
    /// **cost-based**: every access charges its scalarized CPU/page/
    /// network demand, so CPU-heavy operators weigh more than cheap point
    /// reads. `None` disables cost tracing; heat falls back to the flat
    /// per-access weights of [`WattDbBuilder::heat_tracking`] — exactly
    /// the legacy weighted-count behaviour.
    pub fn cost_model(mut self, m: impl Into<Option<CostModel>>) -> Self {
        self.cfg.cost_model = m.into();
        self
    }

    /// Heat-drift parameters: how fast per-segment velocity estimates
    /// adapt and how far ahead the planner projects heat. A zero
    /// [`DriftConfig::horizon`] makes every plan use historical heat
    /// (the pre-drift behaviour).
    pub fn drift(mut self, d: DriftConfig) -> Self {
        self.cfg.drift = d;
        self
    }

    /// Shorthand for setting only the projection horizon (see
    /// [`WattDbBuilder::drift`]). `SimDuration::ZERO` disables projection.
    pub fn drift_horizon(mut self, horizon: SimDuration) -> Self {
        self.cfg.drift.horizon = horizon;
        self
    }

    /// Helper-escalation policy: after how many skew fires without
    /// subsidence the policy attaches Fig. 8 helpers instead of shipping
    /// segments, how many helpers at most, and the net-heat floor below
    /// which a source gets none. `escalation_fires: 0` disables helper
    /// escalation (every skew fire rebalances, the pre-helper behaviour).
    pub fn helper_policy(mut self, h: HelperPolicyConfig) -> Self {
        self.policy.helper = h;
        self
    }

    /// Per-segment replication: `factor` log-shipped follower copies per
    /// segment (0, the default, is the paper's single-copy behaviour).
    /// Followers are placed by the heat-aware planner at build time —
    /// coldest nodes first, never the leader's own node — fed from the
    /// leader's WAL, and serve caught-up reads when
    /// [`ReplicaConfig::read_routing`] allows.
    pub fn replication(mut self, factor: usize) -> Self {
        self.cfg.replication.factor = factor;
        self
    }

    /// Full replication knobs: factor, read routing, and the per-segment
    /// heat floor for read fan-out.
    pub fn replication_config(mut self, r: ReplicaConfig) -> Self {
        self.cfg.replication = r;
        self
    }

    /// Experiment seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.cfg.seed = s;
        self.tpcc.seed = s;
        self
    }

    /// Client arrival batching: per-client think timers, the pooled
    /// aggregated arrival process, or `Auto` (the default — pooled above
    /// [`wattdb_tpcc::POOL_AUTO_THRESHOLD`] modeled clients). Forcing
    /// either mode pins the spawn path regardless of population size.
    pub fn client_batching(mut self, b: wattdb_tpcc::ClientBatching) -> Self {
        self.cfg.client_batching = b;
        self
    }

    /// Nodes that host the initial data (and start powered).
    pub fn initial_data_nodes(mut self, nodes: &[NodeId]) -> Self {
        self.initial = nodes.to_vec();
        self
    }

    /// Elasticity thresholds the autopilot enforces (§3.4; the paper's
    /// 80 % CPU ceiling by default).
    pub fn policy(mut self, p: PolicyConfig) -> Self {
        self.policy = p;
        self
    }

    /// Monitoring cadence: how often nodes report utilization to the
    /// master (paper: "every few seconds"; default 5 s).
    pub fn monitoring(mut self, period: SimDuration) -> Self {
        self.monitoring = period;
        self
    }

    /// Engage the elasticity autopilot at build time: the cluster then
    /// monitors itself and powers nodes up/down autonomously, logging
    /// every decision to [`WattDb::events`].
    pub fn autopilot(mut self, enabled: bool) -> Self {
        self.autopilot = enabled;
        self
    }

    /// Sample telemetry windows even without the autopilot: a
    /// monitoring-cadence loop freezes the metrics registry every window.
    /// Redundant (and ignored) when the autopilot is engaged — its
    /// control loop already samples each window, and two loops must never
    /// both drive the stateful utilization probes.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Start a trace-driven workload at build time: the
    /// [`LoadTrace`]'s target-client schedule begins at t = 0 with the
    /// default mean think time ([`ClientConfig::default`]). Equivalent
    /// to calling [`WattDb::start_traced_oltp`] right after `build()`;
    /// use the facade call to pick a different think time or a later
    /// start.
    pub fn workload_trace(mut self, trace: LoadTrace) -> Self {
        self.trace = Some((trace, ClientConfig::default().think_time));
        self
    }

    /// Build, load TPC-C, start the power sampler, and — when requested —
    /// engage the autopilot.
    pub fn build(self) -> WattDb {
        let cluster = Cluster::new(self.cfg, &self.initial);
        let mut sim = Sim::new();
        {
            let mut c = cluster.borrow_mut();
            c.load_tpcc(self.tpcc, &self.initial)
                .expect("dataset loads");
            c.bootstrap_replicas(sim.now());
        }
        Cluster::start_power_sampler(&cluster, &mut sim);
        let autopilot = self.autopilot.then(|| {
            AutoPilot::engage(
                &cluster,
                &mut sim,
                AutoPilotConfig {
                    policy: self.policy,
                    period: self.monitoring,
                },
            )
        });
        if self.telemetry && autopilot.is_none() {
            // Sampling-only loop: the autopilot's loop does this itself,
            // and the stateful utilization probes tolerate exactly one
            // sampler.
            crate::monitor::start_monitoring(
                &cluster,
                &mut sim,
                self.monitoring,
                |cl, sim, view| {
                    let at = sim.now();
                    crate::telemetry_sink::sample_window(
                        &mut cl.borrow_mut(),
                        view,
                        at,
                        sim.events_executed(),
                    );
                    true
                },
            );
        }
        let mut db = WattDb {
            sim,
            cluster,
            autopilot,
            policy: self.policy,
        };
        if let Some((trace, think)) = self.trace {
            db.start_traced_oltp(trace, think);
        }
        db
    }
}

/// One node's line in a [`ClusterStatus`].
#[derive(Debug, Clone)]
pub struct NodeStatus {
    /// Node id.
    pub node: NodeId,
    /// Power state.
    pub state: NodeState,
    /// CPU utilization since the previous `status()` call, in \[0,1\].
    pub cpu: f64,
    /// Segments stored on the node.
    pub segments: usize,
    /// Total decayed access heat of the node's segments.
    pub heat: f64,
    /// Node power draw (CPU-proportional plus drives).
    pub power: Watts,
}

/// Point-in-time snapshot of the whole deployment.
#[derive(Debug, Clone)]
pub struct ClusterStatus {
    /// Virtual time of the snapshot.
    pub at: SimTime,
    /// Per-node state, indexed by `NodeId::raw()`.
    pub nodes: Vec<NodeStatus>,
    /// Total cluster power including the interconnect switch.
    pub total_power: Watts,
    /// Nodes currently active.
    pub active_nodes: usize,
    /// Segments across the cluster.
    pub segments: usize,
    /// Is a rebalance in flight?
    pub rebalancing: bool,
    /// Which heat signal drives placement: `"cost"` (scalarized access
    /// cost, the default) or `"count"` (flat weighted access counts).
    pub heat_signal: &'static str,
}

/// How [`WattDb::rebalance_with_helpers`] chooses its helper nodes.
#[derive(Debug, Clone, Copy)]
pub enum HelperSet<'a> {
    /// Explicit helper list (the legacy manual path): `sources[i]` pairs
    /// with `helpers[i % helpers.len()]`.
    Manual(&'a [NodeId]),
    /// Let the helper planner choose from the heat table's
    /// net/remote-heavy components (see [`WattDb::plan_helpers`]).
    Planned,
}

impl<'a> From<&'a [NodeId]> for HelperSet<'a> {
    fn from(list: &'a [NodeId]) -> Self {
        HelperSet::Manual(list)
    }
}

impl<'a, const N: usize> From<&'a [NodeId; N]> for HelperSet<'a> {
    fn from(list: &'a [NodeId; N]) -> Self {
        HelperSet::Manual(list)
    }
}

impl<'a> From<&'a Vec<NodeId>> for HelperSet<'a> {
    fn from(list: &'a Vec<NodeId>) -> Self {
        HelperSet::Manual(list)
    }
}

/// A running WattDB deployment under simulation.
pub struct WattDb {
    sim: Sim,
    cluster: ClusterRc,
    autopilot: Option<AutoPilot>,
    /// Policy in force — facade-side planning (`plan_scale_out`,
    /// `plan_drain`) reads its `heat_tolerance` so manual plans match
    /// what the autopilot would produce.
    policy: PolicyConfig,
}

impl WattDb {
    /// Start building a deployment.
    pub fn builder() -> WattDbBuilder {
        WattDbBuilder::default()
    }

    // ------------------------------------------------------------ workload

    /// Spawn `n` closed-loop clients with the given mean think time and
    /// start them.
    ///
    /// # Panics
    /// When `n == 0`: an empty population would silently generate no
    /// load and every downstream reading (throughput, heat, autopilot
    /// decisions) would be measuring an idle cluster. Use
    /// [`WattDb::run_for`] without a workload for idle experiments.
    pub fn start_oltp(&mut self, n: u32, think: SimDuration) {
        assert!(
            n > 0,
            "start_oltp: n == 0 clients would spawn no workload — \
             run_for() alone measures an idle cluster"
        );
        {
            let mut c = self.cluster.borrow_mut();
            c.spawn_clients(
                n,
                ClientConfig {
                    think_time: think,
                    ..Default::default()
                },
            );
        }
        executor::start_clients(&self.cluster, &mut self.sim);
    }

    /// Like [`WattDb::start_oltp`], but with a hot-range skew:
    /// `hot_fraction` of the clients are homed inside the first
    /// `hot_warehouses` warehouses, concentrating access heat on the low
    /// end of the key space.
    ///
    /// # Panics
    /// When `n == 0`, for the same reason as [`WattDb::start_oltp`].
    pub fn start_oltp_skewed(
        &mut self,
        n: u32,
        think: SimDuration,
        hot_fraction: f64,
        hot_warehouses: u32,
    ) {
        assert!(
            n > 0,
            "start_oltp_skewed: n == 0 clients would spawn no workload — \
             run_for() alone measures an idle cluster"
        );
        {
            let mut c = self.cluster.borrow_mut();
            c.spawn_clients_skewed(
                n,
                ClientConfig {
                    think_time: think,
                    ..Default::default()
                },
                hot_fraction,
                hot_warehouses,
            );
        }
        executor::start_clients(&self.cluster, &mut self.sim);
    }

    /// Start a trace-driven workload: spawn the [`LoadTrace`]'s carrier
    /// population (one pooled carrier group per tenant, homed by each
    /// tenant's hot-warehouse rule) and schedule the trace's breakpoints
    /// to resize the offered load over sim-time, beginning now. Trace
    /// runs are always pooled; `think` is every carrier's mean think
    /// time, so a target of `n` clients offers `n / think` transactions
    /// per second.
    pub fn start_traced_oltp(&mut self, trace: LoadTrace, think: SimDuration) {
        assert!(
            trace.total_peak() > 0,
            "start_traced_oltp: the trace never targets a single client — \
             an all-zero schedule would spawn no workload"
        );
        {
            let mut c = self.cluster.borrow_mut();
            c.spawn_traced_clients(
                &trace,
                ClientConfig {
                    think_time: think,
                    ..Default::default()
                },
            );
        }
        executor::start_clients(&self.cluster, &mut self.sim);
        executor::schedule_trace(&self.cluster, &mut self.sim, &trace);
    }

    /// The modeled-client target the pooled workload is currently
    /// holding (the sum of per-tenant trace targets), or `None` in
    /// per-client mode. Exported per window as the
    /// `workload.target_clients` gauge.
    pub fn workload_target(&self) -> Option<u64> {
        self.cluster
            .borrow()
            .pool
            .as_ref()
            .map(|p| p.current_target())
    }

    /// Advance virtual time by `d`.
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.sim.now() + d;
        self.sim.run_until(until);
    }

    /// Advance to absolute time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Stop clients from submitting further transactions.
    pub fn stop_clients(&mut self) {
        self.cluster.borrow_mut().stopped = true;
    }

    // ---------------------------------------------------------- elasticity

    /// The autopilot handle, when engaged.
    pub fn autopilot(&self) -> Option<&AutoPilot> {
        self.autopilot.as_ref()
    }

    /// Engage the elasticity control loop on a running deployment.
    /// Replaces (and disengages) any previous loop; facade-side planning
    /// follows the new policy from here on.
    pub fn engage_autopilot(&mut self, config: AutoPilotConfig) {
        if let Some(old) = self.autopilot.take() {
            old.disengage();
        }
        self.policy = config.policy;
        self.autopilot = Some(AutoPilot::engage(&self.cluster, &mut self.sim, config));
    }

    /// The controller's decision log (empty when no autopilot ran).
    pub fn events(&self) -> Vec<ControlEvent> {
        self.autopilot
            .as_ref()
            .map(|a| a.events())
            .unwrap_or_default()
    }

    /// Borrow the cluster's telemetry recorder: tracing spans, the
    /// per-window metrics registry, and the decision timeline.
    pub fn telemetry(&self) -> std::cell::Ref<'_, wattdb_telemetry::Telemetry> {
        std::cell::Ref::map(self.cluster.borrow(), |c| &c.telemetry)
    }

    /// Serialize the full flight-recorder state — spans, window samples,
    /// decision records — as JSONL. Byte-identical across fixed-seed runs.
    pub fn export_timeline_string(&self) -> String {
        self.cluster.borrow().telemetry.export_jsonl()
    }

    /// Write [`WattDb::export_timeline_string`] to `path`.
    pub fn export_timeline(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.export_timeline_string())
    }

    /// Render the explainable autopilot timeline: one line per monitoring
    /// window with the signal values, the decision, and its
    /// predicted-vs-realized outcome. Derived *purely from the exported
    /// form* — the recorder state is serialized to JSONL and re-parsed, so
    /// this output is exactly what an offline reader of the artifact
    /// would reconstruct.
    pub fn explain(&self) -> Vec<String> {
        wattdb_telemetry::parse_jsonl(&self.export_timeline_string())
            .expect("own export parses")
            .explain()
    }

    /// Kick off a manual rebalance moving `fraction` of each source's
    /// data. (The autopilot issues the same call on its own; this remains
    /// for scripted experiments.)
    pub fn rebalance(&mut self, fraction: f64, sources: &[NodeId], targets: &[NodeId]) {
        migration::start_rebalance(&self.cluster, &mut self.sim, fraction, sources, targets);
    }

    /// Rebalance with helper nodes attached for the duration (Fig. 8).
    /// `helpers` is either an explicit node list — the manual path, pairing
    /// `sources[i]` with `helpers[i % len]` exactly as before — or
    /// [`HelperSet::Planned`], which lets the helper planner pick the
    /// attachments from the heat table's net/remote-heavy components (see
    /// [`WattDb::plan_helpers`]). Helpers detach automatically when the
    /// rebalance completes.
    pub fn rebalance_with_helpers<'a>(
        &mut self,
        fraction: f64,
        sources: &[NodeId],
        targets: &[NodeId],
        helpers: impl Into<HelperSet<'a>>,
    ) {
        match helpers.into() {
            HelperSet::Manual(list) => {
                migration::attach_helpers(&self.cluster, &mut self.sim, sources, list);
                migration::start_rebalance(
                    &self.cluster,
                    &mut self.sim,
                    fraction,
                    sources,
                    targets,
                );
            }
            HelperSet::Planned => {
                // Start the rebalance first so the helper planner's
                // in-flight exclusion sees this rebalance's own sources
                // and targets: a node about to receive shipped segments
                // never moonlights as a log-shipping/buffer helper.
                migration::start_rebalance(
                    &self.cluster,
                    &mut self.sim,
                    fraction,
                    sources,
                    targets,
                );
                let plan = self.plan_helpers(sources);
                migration::attach_helper_plan(&self.cluster, &mut self.sim, &plan, true);
            }
        }
    }

    /// Plan (but do not attach) helper placements for `sources`, using the
    /// configured helper policy: sources ranked by the net/remote-heavy
    /// component of their heat, helpers drawn from standbys and the
    /// coldest actives — never a node entangled in the in-flight
    /// migration, never one already helping, never the master while an
    /// alternative exists. The same plan the autopilot attaches when the
    /// skew trigger escalates.
    pub fn plan_helpers(&self, sources: &[NodeId]) -> HelperPlan {
        let c = self.cluster.borrow();
        heat::plan_helpers(&c, self.sim.now(), &self.policy.helper, sources)
    }

    /// Attach an externally produced helper plan (see
    /// [`WattDb::plan_helpers`]). Facade attachments are scripted: the
    /// helpers detach when the next rebalance completes, or on
    /// [`WattDb::detach_helpers`]. (Helpers the autopilot attaches for
    /// transient skew instead stay until the skew subsides.)
    pub fn attach_helpers(&mut self, plan: &HelperPlan) -> bool {
        migration::attach_helper_plan(&self.cluster, &mut self.sim, plan, true)
    }

    /// Detach every attached helper now; returns the nodes released.
    pub fn detach_helpers(&mut self) -> Vec<NodeId> {
        migration::detach_helpers(&self.cluster, self.sim.now())
    }

    /// Helper nodes currently attached (Fig. 8), in attachment order.
    pub fn helpers_active(&self) -> Vec<NodeId> {
        self.cluster.borrow().helpers_active.clone()
    }

    /// Plan (but do not start) a heat-aware scale-out from the current
    /// heat table, using the configured policy's heat tolerance — the
    /// same plan the autopilot would produce. Returns the full plan —
    /// moves, bytes, and the predicted per-node heat — for inspection or
    /// for [`WattDb::rebalance_planned`].
    pub fn plan_scale_out(&self, sources: &[NodeId], targets: &[NodeId]) -> Plan {
        let c = self.cluster.borrow();
        heat::plan_scale_out(
            &c,
            self.sim.now(),
            self.policy.heat_tolerance,
            sources,
            targets,
        )
    }

    /// Plan (but do not start) a heat-aware drain of `drain` onto
    /// `remaining`, using the configured policy's heat tolerance.
    pub fn plan_drain(&self, drain: &[NodeId], remaining: &[NodeId]) -> Plan {
        let c = self.cluster.borrow();
        heat::plan_drain(
            &c,
            self.sim.now(),
            self.policy.heat_tolerance,
            drain,
            remaining,
        )
    }

    /// Execute an externally produced plan (see [`WattDb::plan_scale_out`]
    /// / [`WattDb::plan_drain`]): power on `targets` and start the moves.
    /// Requires a segment scheme (physical/physiological). A no-op when
    /// the plan is empty or another rebalance is already in flight.
    pub fn rebalance_planned(&mut self, plan: &Plan, targets: &[NodeId]) {
        let moves: Vec<SegmentMove> = plan.moves.iter().map(SegmentMove::from).collect();
        migration::start_rebalance_planned(
            &self.cluster,
            &mut self.sim,
            plan.planner,
            moves,
            targets,
        );
    }

    /// Is a rebalance still running?
    pub fn rebalancing(&self) -> bool {
        self.cluster.borrow().mover.is_some()
    }

    /// Summary of the last completed rebalance, manual or autopiloted.
    pub fn last_rebalance(&self) -> Option<RebalanceReport> {
        self.cluster.borrow().last_rebalance
    }

    /// Every completed rebalance of the run, in completion order.
    pub fn rebalance_history(&self) -> Vec<RebalanceReport> {
        self.cluster.borrow().metrics.rebalances.clone()
    }

    // --------------------------------------------------------- replication

    /// Fault injection: kill `node` mid-anything. The node stops serving
    /// immediately (routing to it spins until failover re-points), its
    /// pending migration moves are dropped, and — with an autopilot
    /// engaged — the next monitoring window detects the loss, promotes
    /// the most-caught-up follower for every segment it led, and
    /// schedules re-replication. Idempotent.
    pub fn fail_node(&mut self, node: NodeId) {
        self.cluster.borrow_mut().fail_node(node);
    }

    /// Nodes killed by [`WattDb::fail_node`], in id order.
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        self.cluster.borrow().failed.iter().copied().collect()
    }

    /// Snapshot of the per-segment replica map (leader + follower set,
    /// epoch-versioned).
    pub fn replica_map(&self) -> ReplicaMap {
        self.cluster.borrow().replicas.clone()
    }

    /// Reads served by a follower instead of the leader so far.
    pub fn replica_reads(&self) -> u64 {
        self.cluster.borrow().replica_reads
    }

    /// Total bytes of WAL shipped leader → follower for replication (the
    /// wire cost of read fan-out and durability; helper log shipping is
    /// counted separately).
    pub fn replica_shipped_bytes(&self) -> u64 {
        self.cluster.borrow().replica_shipped_bytes()
    }

    /// Total bytes shipped to rebuild follower copies after failures.
    pub fn rereplication_bytes(&self) -> u64 {
        self.cluster.borrow().rereplication_bytes
    }

    /// Predicted-vs-realized relief for the last completed helper
    /// engagement (first attach to last detach): the planner's predicted
    /// net-heat relief next to the bytes actually shipped and the remote
    /// buffer hits actually served.
    pub fn last_helper_report(&self) -> Option<HelperReport> {
        self.cluster.borrow().last_helper_report.clone()
    }

    // ------------------------------------------------------------- readout

    /// Completed transactions so far.
    pub fn completed(&self) -> u64 {
        self.cluster.borrow().metrics.completed
    }

    /// Aborted transaction attempts so far.
    pub fn aborted(&self) -> u64 {
        self.cluster.borrow().metrics.aborted
    }

    /// Completed transactions by TPC-C profile (modeled counts — pooled
    /// carriers contribute their full weight).
    pub fn mix(&self) -> Vec<(wattdb_tpcc::TxnProfile, u64)> {
        let c = self.cluster.borrow();
        let mut v: Vec<_> = c.metrics.mix.iter().map(|(p, n)| (*p, *n)).collect();
        v.sort_by_key(|(p, _)| format!("{p:?}"));
        v
    }

    /// Modeled completions per home warehouse: the observed workload
    /// skew, in the same units for per-client and pooled runs.
    pub fn completions_by_warehouse(&self) -> Vec<(u32, u64)> {
        let c = self.cluster.borrow();
        let mut by: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for cl in &c.clients {
            *by.entry(cl.home_warehouse).or_insert(0) += cl.completed();
        }
        by.into_iter().collect()
    }

    /// Is the client workload running pooled (aggregated arrivals over
    /// carrier clients) rather than one think timer per client?
    pub fn pooled_clients(&self) -> bool {
        self.cluster.borrow().pool.is_some()
    }

    /// Events the simulator has executed so far (engine-speed readout for
    /// benchmarks; deterministic, sim-domain).
    pub fn events_executed(&self) -> u64 {
        self.sim.events_executed()
    }

    /// Nodes currently active.
    pub fn active_nodes(&self) -> Vec<NodeId> {
        self.cluster.borrow().active_nodes()
    }

    /// Segments stored on `node`.
    pub fn segments_on(&self, node: NodeId) -> usize {
        self.cluster.borrow().seg_dir.on_node(node).count()
    }

    /// Segments across the cluster.
    pub fn segment_count(&self) -> usize {
        self.cluster.borrow().seg_dir.len()
    }

    /// Per-segment access-heat snapshot, hottest first: decayed heat,
    /// lifetime read/write/remote counters, placement, and footprint.
    pub fn heat(&self) -> Vec<SegmentHeatStat> {
        let c = self.cluster.borrow();
        c.heat.snapshot(&c.seg_dir, self.sim.now())
    }

    /// Total decayed access heat of the segments stored on `node`.
    pub fn node_heat(&self, node: NodeId) -> f64 {
        let c = self.cluster.borrow();
        c.heat.node_heat(&c.seg_dir, node, self.sim.now()).value()
    }

    /// The cost model scalarizing access cost into heat, if heat runs
    /// cost-based (`None` = legacy weighted counts).
    pub fn cost_model(&self) -> Option<CostModel> {
        self.cluster.borrow().heat.cost_model().copied()
    }

    /// Dispatch an analytic range scan of `table` over `range`, optionally
    /// topped by a group-aggregation on the storage node. The scan's
    /// operator cost (priced by `wattdb_query` from the shared
    /// [`wattdb_common::CostParams`]) is charged to each covered
    /// segment's heat at dispatch, and its hardware demands replay
    /// through the cluster's shared resources as virtual time advances —
    /// call [`WattDb::run_for`] to let them drain.
    pub fn scan(
        &mut self,
        table: TableId,
        range: KeyRange,
        agg: Option<wattdb_query::AggFunc>,
    ) -> crate::scan::ScanReport {
        crate::scan::submit_scan(&self.cluster, &mut self.sim, table, range, agg)
    }

    /// Per-segment drift snapshot at the given projection horizon,
    /// hottest *projected* first: current heat, estimated velocity, and
    /// `max(0, heat + velocity × horizon)`. Velocities accumulate while a
    /// monitoring loop runs (the autopilot observes drift every window);
    /// before the first observation every velocity is zero and the
    /// projection equals the heat.
    pub fn projected_heat(&self, horizon: SimDuration) -> Vec<SegmentDriftStat> {
        let c = self.cluster.borrow();
        c.drift
            .snapshot(&c.heat, &c.seg_dir, self.sim.now(), horizon)
    }

    /// Live record keys across every segment index.
    pub fn live_records(&self) -> usize {
        self.cluster
            .borrow()
            .indexes
            .values()
            .map(|i| i.len())
            .sum()
    }

    /// Vacuum every segment at the current GC horizon; returns versions
    /// reclaimed.
    pub fn vacuum(&mut self) -> usize {
        self.cluster.borrow_mut().vacuum_all()
    }

    /// Per-node state/CPU/segments/power snapshot. CPU utilizations are
    /// measured over the window since the previous `status()` call, on a
    /// probe independent of the monitoring loop's.
    pub fn status(&mut self) -> ClusterStatus {
        let now = self.sim.now();
        let mut c = self.cluster.borrow_mut();
        let c = &mut *c;
        let mut nodes = Vec::with_capacity(c.nodes.len());
        let mut total = c.power_model.switch_power();
        for n in &mut c.nodes {
            let cpu_res = n.cpu.clone();
            let cpu = n.status_probe.sample(&cpu_res, now);
            let mut power = c.power_model.node_power(n.state, cpu);
            for d in &n.disks {
                power += c.power_model.disk_power(d.kind(), n.state);
            }
            total += power;
            nodes.push(NodeStatus {
                node: n.id,
                state: n.state,
                cpu,
                segments: c.seg_dir.on_node(n.id).count(),
                heat: c.heat.node_heat(&c.seg_dir, n.id, now).value(),
                power,
            });
        }
        ClusterStatus {
            at: now,
            active_nodes: nodes
                .iter()
                .filter(|n| n.state == NodeState::Active)
                .count(),
            segments: c.seg_dir.len(),
            rebalancing: c.mover.is_some(),
            heat_signal: c.heat.signal_label(),
            nodes,
            total_power: total,
        }
    }

    /// The experiment time series, resolved against the power meter:
    /// `(bucket start, qps, mean response ms, mean power W, J/query)`.
    pub fn timeseries(&self) -> Vec<(SimTime, f64, f64, f64, f64)> {
        let c = self.cluster.borrow();
        let bucket = c.metrics.qps.width();
        let bucket_secs = bucket.as_secs_f64();
        // Aggregate the 1 Hz power samples into metric buckets.
        let mut power_sum: std::collections::HashMap<u64, (f64, u64)> =
            std::collections::HashMap::new();
        for s in c.meter.series() {
            let b = s.at.as_micros() / bucket.as_micros();
            let e = power_sum.entry(b).or_insert((0.0, 0));
            e.0 += s.power.0;
            e.1 += 1;
        }
        c.metrics
            .qps
            .iter()
            .zip(c.metrics.response.iter())
            .map(|((at, count, _), (_, _, resp_sum))| {
                let b = at.as_micros() / bucket.as_micros();
                let power = power_sum
                    .get(&b)
                    .map(|(sum, n)| sum / *n as f64)
                    .unwrap_or(0.0);
                let qps = count as f64 / bucket_secs;
                let resp = if count > 0 {
                    resp_sum / count as f64
                } else {
                    0.0
                };
                let jpq = if count > 0 {
                    power * bucket_secs / count as f64
                } else {
                    0.0
                };
                (at, qps, resp, power, jpq)
            })
            .collect()
    }

    /// Current total cluster power (fresh sample on the power probe).
    pub fn power_now(&mut self) -> f64 {
        let now = self.sim.now();
        self.cluster.borrow_mut().sample_power(now).0
    }

    /// The deployment's rated peak power `P_peak`: every node active at
    /// 100 % CPU with all drives spinning, plus the switch — the
    /// denominator of the ideal `P(u) = u · P_peak` proportionality line
    /// (use with [`wattdb_energy::proportionality_index_rated`]).
    /// Normalizing by this, not by the *observed* peak, keeps a trace
    /// that never reaches full load from inflating its score.
    pub fn rated_peak_watts(&self) -> Watts {
        let c = self.cluster.borrow();
        let mut total = c.power_model.switch_power();
        for n in &c.nodes {
            total += c.power_model.node_power(NodeState::Active, 1.0);
            for d in &n.disks {
                total += c.power_model.disk_power(d.kind(), NodeState::Active);
            }
        }
        total
    }

    // ------------------------------------------------------- escape hatch

    /// Scoped read access to the engine state, for assertions and
    /// analyses the typed surface does not cover.
    pub fn with_cluster<R>(&self, f: impl FnOnce(&Cluster) -> R) -> R {
        f(&self.cluster.borrow())
    }

    /// Scoped mutable access to the engine state.
    pub fn with_cluster_mut<R>(&mut self, f: impl FnOnce(&mut Cluster) -> R) -> R {
        f(&mut self.cluster.borrow_mut())
    }

    /// Scoped access to the shared cluster handle *and* the simulator, for
    /// research drivers that schedule their own events (custom workload
    /// loops, probes, repeaters). The closure must not hold the handle
    /// beyond its own scope.
    pub fn with_runtime<R>(&mut self, f: impl FnOnce(&ClusterRc, &mut Sim) -> R) -> R {
        f(&self.cluster, &mut self.sim)
    }
}

/// Probe re-export so facade users can build custom samplers without
/// importing `wattdb_sim` directly.
pub type StatusProbe = UtilizationProbe;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Phase;

    fn small() -> WattDb {
        WattDb::builder()
            .nodes(4)
            .warehouses(2)
            .density(0.01)
            .segment_pages(8)
            .initial_data_nodes(&[NodeId(0), NodeId(1)])
            .seed(7)
            .build()
    }

    #[test]
    fn oltp_completes_transactions() {
        let mut db = small();
        db.start_oltp(4, SimDuration::from_millis(50));
        db.run_for(SimDuration::from_secs(10));
        assert!(db.completed() > 50, "completed {}", db.completed());
        db.with_cluster(|c| {
            assert!(c.txn.commit_count() > 0);
            // All completions attributed to the normal phase.
            assert!(c.metrics.mean_profile(Phase::Normal).is_some());
        });
    }

    #[test]
    fn physiological_rebalance_moves_ownership() {
        let mut db = small();
        db.start_oltp(4, SimDuration::from_millis(50));
        db.run_for(SimDuration::from_secs(5));
        assert_eq!(db.segments_on(NodeId(2)), 0);
        db.rebalance(0.5, &[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
        db.run_for(SimDuration::from_secs(120));
        assert!(!db.rebalancing(), "rebalance finished");
        assert!(db.segments_on(NodeId(2)) > 0, "segments arrived");
        let r = db.last_rebalance().expect("report recorded");
        assert!(r.segments_moved > 0);
    }

    #[test]
    fn no_records_lost_across_physiological_move() {
        let mut db = small();
        // No OLTP load: the record population must be identical.
        let before = db.live_records();
        db.rebalance(0.5, &[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]);
        db.run_for(SimDuration::from_secs(120));
        assert!(!db.rebalancing());
        assert_eq!(db.live_records(), before, "no records lost or duplicated");
    }

    #[test]
    fn timeseries_has_power_column() {
        let mut db = small();
        db.start_oltp(2, SimDuration::from_millis(50));
        db.run_for(SimDuration::from_secs(15));
        let ts = db.timeseries();
        assert!(!ts.is_empty());
        let (_, qps, _resp, power, _jpq) = ts[0];
        assert!(qps > 0.0);
        assert!(power > 40.0, "cluster draws real power: {power}");
    }

    #[test]
    fn stop_clients_quiesces() {
        let mut db = small();
        db.start_oltp(2, SimDuration::from_millis(50));
        db.run_for(SimDuration::from_secs(5));
        db.stop_clients();
        let at_stop = db.completed();
        db.run_for(SimDuration::from_secs(5));
        let after = db.completed();
        // In-flight work may finish but no flood of new transactions.
        assert!(after - at_stop < 20, "drained: {at_stop} -> {after}");
    }

    #[test]
    fn status_reports_states_and_power() {
        let mut db = small();
        db.start_oltp(4, SimDuration::from_millis(50));
        db.run_for(SimDuration::from_secs(10));
        let s = db.status();
        assert_eq!(s.nodes.len(), 4);
        assert_eq!(s.active_nodes, 2, "initial data nodes active");
        assert_eq!(s.nodes[0].state, NodeState::Active);
        assert_eq!(s.nodes[3].state, NodeState::Standby);
        assert!(s.nodes[0].cpu > 0.0, "loaded node shows CPU use");
        assert!(s.nodes[0].segments > 0);
        assert_eq!(s.nodes[3].segments, 0);
        assert!(s.total_power.0 > 40.0, "real power: {}", s.total_power.0);
        assert!(!s.rebalancing);
        assert_eq!(
            s.segments,
            s.nodes.iter().map(|n| n.segments).sum::<usize>()
        );
    }

    #[test]
    #[should_panic(expected = "start_oltp: n == 0 clients would spawn no workload")]
    fn start_oltp_rejects_zero_clients() {
        let mut db = small();
        db.start_oltp(0, SimDuration::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "start_oltp_skewed: n == 0 clients would spawn no workload")]
    fn start_oltp_skewed_rejects_zero_clients() {
        let mut db = small();
        db.start_oltp_skewed(0, SimDuration::from_millis(50), 0.8, 1);
    }

    #[test]
    fn traced_workload_tracks_the_schedule() {
        use wattdb_tpcc::{DiurnalConfig, LoadTrace};
        let trace = LoadTrace::diurnal(DiurnalConfig {
            min_clients: 20,
            max_clients: 400,
            period: SimDuration::from_secs(60),
            phase: 0.0,
            step: SimDuration::from_secs(5),
            horizon: SimDuration::from_secs(60),
            ..Default::default()
        });
        let mut db = small();
        db.start_traced_oltp(trace.clone(), SimDuration::from_millis(200));
        assert!(db.pooled_clients(), "trace runs are always pooled");
        assert_eq!(db.workload_target(), Some(20), "starts in the trough");
        db.run_for(SimDuration::from_secs(32));
        let mid = db.workload_target().unwrap();
        assert_eq!(
            mid,
            trace.total_at(SimDuration::from_secs(32)),
            "pool target follows the breakpoint schedule"
        );
        assert!(mid > 300, "half a period in, near the peak: {mid}");
        assert!(db.completed() > 0, "traced clients commit work");
    }

    #[test]
    fn builder_workload_trace_starts_at_build() {
        use wattdb_tpcc::{DiurnalConfig, LoadTrace};
        let trace = LoadTrace::diurnal(DiurnalConfig {
            min_clients: 10,
            max_clients: 80,
            period: SimDuration::from_secs(40),
            phase: 0.0,
            step: SimDuration::from_secs(5),
            horizon: SimDuration::from_secs(40),
            ..Default::default()
        });
        let mut db = WattDb::builder()
            .nodes(4)
            .warehouses(2)
            .density(0.01)
            .segment_pages(8)
            .initial_data_nodes(&[NodeId(0), NodeId(1)])
            .seed(9)
            .workload_trace(trace)
            .build();
        assert!(db.pooled_clients());
        db.run_for(SimDuration::from_secs(20));
        assert!(db.completed() > 0);
    }

    #[test]
    fn rated_peak_covers_every_node_at_full_tilt() {
        let mut db = small();
        let rated = db.rated_peak_watts().0;
        // 4 nodes × (26 W CPU-max + drives) + 20 W switch, per the §3.1
        // defaults — comfortably above anything a 2-active-node run draws.
        assert!(rated > 100.0, "rated peak {rated} W");
        db.start_oltp(4, SimDuration::from_millis(50));
        db.run_for(SimDuration::from_secs(10));
        assert!(db.power_now() < rated, "observed power stays under rated");
    }

    #[test]
    fn events_empty_without_autopilot() {
        let mut db = small();
        db.run_for(SimDuration::from_secs(10));
        assert!(db.autopilot().is_none());
        assert!(db.events().is_empty());
    }

    #[test]
    fn engage_autopilot_after_build() {
        let mut db = small();
        assert!(db.autopilot().is_none());
        db.engage_autopilot(AutoPilotConfig::default());
        assert!(db.autopilot().is_some());
        db.run_for(SimDuration::from_secs(20));
        assert!(db.autopilot().unwrap().is_engaged());
    }
}
