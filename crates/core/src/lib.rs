//! # WattDB-RS core: dynamic physiological partitioning
//!
//! The primary contribution of Schall & Härder (ICDE 2015): an
//! energy-proportional shared-nothing DBMS cluster that repartitions its
//! data online. This crate assembles the substrate crates (storage, index,
//! txn, WAL, network, query, simulation, energy) into the full WattDB
//! system:
//!
//! * [`cluster`] — nodes, partitions, catalog, TPC-C loading, power;
//! * [`executor`] — the closed-loop OLTP transaction engine;
//! * [`migration`] — physical / logical / physiological repartitioning
//!   protocols (§4), including the §4.3 move protocol with master-first
//!   dual pointers, segment read locks, and helper nodes (Fig. 8);
//! * [`heat`] — per-segment heat tracking (EWMA-decayed in sim-time),
//!   the workload signal behind `wattdb_planner`'s heat-aware rebalance
//!   plans. By default heat is **cost-based**: every access charges its
//!   scalarized CPU/page/network cost (`CostModel`), so CPU-heavy
//!   operators weigh more than point reads; the [`heat::drift`] velocity
//!   layer lets the planner plan against *projected* heat (moving
//!   hotspots);
//! * [`failover`] — node-loss recovery over the per-segment replica map:
//!   most-caught-up follower promotion, key-space re-covering, and
//!   planner-driven re-replication;
//! * [`scan`] — analytic range scans over live segments, evaluated and
//!   costed by `wattdb_query` and replayed through the shared resources;
//! * [`monitor`] / [`policy`] — utilization monitoring and the 80 %-CPU
//!   threshold elasticity policy (§3.4) with a heat-skew rebalance
//!   trigger and coldest-node scale-in, and a pluggable rebalance
//!   planner (legacy fraction vs. heat-aware);
//! * [`autopilot`] — the master's control loop tying monitor and policy
//!   together: autonomous scale-out/scale-in with a queryable decision
//!   log;
//! * [`replay`] — analytic query execution over shared resources
//!   (Figs. 1–2);
//! * [`metrics`] — throughput / response-time / power / energy series
//!   (Figs. 6, 8) and per-phase cost breakdowns (Fig. 7);
//! * [`api`] — the [`api::WattDb`] facade used by examples and benches.

pub mod api;
pub mod autopilot;
pub mod cluster;
pub mod executor;
pub mod failover;
pub mod heat;
pub mod metrics;
pub mod migration;
pub mod monitor;
pub mod policy;
pub mod replay;
pub mod scan;
pub mod telemetry_sink;

pub use api::{ClusterStatus, HelperSet, NodeStatus, WattDb, WattDbBuilder};
pub use autopilot::{AutoPilot, AutoPilotConfig, ControlEvent, Outcome, ViewSummary};
pub use cluster::{Cluster, ClusterConfig, ClusterRc, NodeRuntime, Partition, Scheme};
pub use heat::{
    AccessKind, DriftTracker, HeatTable, SegmentDrift, SegmentDriftStat, SegmentHeat,
    SegmentHeatStat,
};
pub use metrics::{Metrics, Phase};
pub use migration::{HelperBaseline, HelperReport, MoveController, RebalanceReport, SegmentMove};
pub use monitor::{ClusterView, NodeReport};
pub use policy::{coldest_drain_target, Decision, ElasticityPolicy, PolicyConfig};
pub use scan::{submit_scan, ScanReport};
pub use telemetry_sink::{decision_label, outcome_label, sample_window, signal_vector};
pub use wattdb_common::{CostModel, CostVector, HelperPolicyConfig, ReplicaConfig};
pub use wattdb_planner::{
    HelperAssignment, HelperCandidate, HelperConfig, HelperPlan, NodeLoadStat, Plan, PlanConfig,
    PlannedMove, Planner, ReplicaNeed, ReplicaPlacement, ReplicaPlan, SegmentStat,
};
pub use wattdb_replica::{pick_promotion, ReplicaMap, ReplicaSet};
pub use wattdb_telemetry::{
    DecisionRecord, MetricsRegistry, SignalVector, Span, SpanCollector, SpanId, Telemetry,
    TimelineExport, WindowSample,
};
pub use wattdb_tpcc::{ClientBatching, MAX_CARRIERS, POOL_AUTO_THRESHOLD};
