//! Replay of query cost traces through the shared cluster resources.
//!
//! The query engine ([`wattdb_query`]) executes plans functionally and
//! emits a [`CostTrace`]. This module turns a trace into a chain of
//! simulator actions over a cluster's CPUs, disks, and NICs, so analytic
//! queries (the Fig. 1/2 micro-benchmarks and the examples) contend with
//! whatever else the cluster is doing.
//!
//! Sort workspaces go through a per-node memory broker: when concurrent
//! sorts oversubscribe a node's sort memory, the overflow spills — one
//! write + one read of the workspace on the node's SSD — which is exactly
//! the mechanism behind the offloading crossover of Fig. 2.

use std::collections::HashMap;

use wattdb_common::{ByteSize, NodeId, SimDuration, SimTime};
use wattdb_query::{CostTrace, StageKind};
use wattdb_sim::{EventFn, Resource, Sim};

use crate::cluster::ClusterRc;

/// Per-node sort-memory broker.
#[derive(Debug, Default)]
pub struct SortMemoryBroker {
    limits: HashMap<NodeId, u64>,
    in_use: HashMap<NodeId, u64>,
    /// Spills observed (diagnostics).
    pub spills: u64,
}

impl SortMemoryBroker {
    /// Set a node's sort memory.
    pub fn set_limit(&mut self, node: NodeId, bytes: u64) {
        self.limits.insert(node, bytes);
    }

    /// Reserve workspace; returns true if it fits in memory, false if the
    /// sort must spill.
    pub fn reserve(&mut self, node: NodeId, bytes: u64) -> bool {
        let limit = self.limits.get(&node).copied().unwrap_or(u64::MAX);
        let used = self.in_use.entry(node).or_insert(0);
        if *used + bytes <= limit {
            *used += bytes;
            true
        } else {
            self.spills += 1;
            false
        }
    }

    /// Release a previously fitting workspace.
    pub fn release(&mut self, node: NodeId, bytes: u64) {
        if let Some(used) = self.in_use.get_mut(&node) {
            *used = used.saturating_sub(bytes);
        }
    }
}

/// Replay `trace` against the cluster; `done(sim, started)` fires when the
/// last stage completes.
pub fn replay_trace(
    cl: &ClusterRc,
    sim: &mut Sim,
    trace: CostTrace,
    broker: std::rc::Rc<std::cell::RefCell<SortMemoryBroker>>,
    done: impl FnOnce(&mut Sim, SimTime) + 'static,
) {
    let started = sim.now();
    run_stage(
        cl.clone(),
        sim,
        trace,
        0,
        broker,
        Box::new(move |sim| done(sim, started)),
    );
}

fn run_stage(
    cl: ClusterRc,
    sim: &mut Sim,
    trace: CostTrace,
    idx: usize,
    broker: std::rc::Rc<std::cell::RefCell<SortMemoryBroker>>,
    done: EventFn,
) {
    if idx >= trace.stages.len() {
        done(sim);
        return;
    }
    let stage = trace.stages[idx];
    let next: EventFn = {
        let cl2 = cl.clone();
        let broker2 = broker.clone();
        Box::new(move |sim: &mut Sim| run_stage(cl2, sim, trace, idx + 1, broker2, done))
    };
    match stage.kind {
        StageKind::Cpu { dur } => {
            let cpu = cl.borrow().nodes[stage.on.raw() as usize].cpu.clone();
            Resource::submit(&cpu, sim, dur, next);
        }
        StageKind::PageReads { pages } => {
            // Bulk sequential scan I/O on the node's first SSD.
            let bytes = pages * wattdb_storage::PAGE_SIZE as u64;
            let mut c = cl.borrow_mut();
            let n_disks = c.nodes[stage.on.raw() as usize].disks.len();
            let disk = if n_disks > 1 { 1 } else { 0 };
            c.nodes[stage.on.raw() as usize].disks[disk].bulk_transfer(
                sim,
                ByteSize::bytes(bytes),
                next,
            );
        }
        StageKind::NetTransfer {
            from,
            to,
            bytes,
            calls,
            overlapped,
        } => {
            // Per-call round-trip latency plus serialization; a buffering
            // operator's prefetch hides everything but one call's latency
            // and the bandwidth floor.
            let hop = cl.borrow().net.spec().hop_latency;
            let rtt = SimDuration::from_micros(hop.as_micros() * 2);
            let latency_calls = if overlapped { 1 } else { calls };
            let latency = SimDuration::from_micros(rtt.as_micros() * latency_calls);
            let c = cl.borrow();
            let deliver: EventFn = Box::new(move |sim: &mut Sim| {
                sim.after(latency, next);
            });
            c.net.send(sim, from, to, ByteSize::bytes(bytes), deliver);
        }
        StageKind::SortWorkspace { bytes, cpu } => {
            let node = stage.on;
            let fits = broker.borrow_mut().reserve(node, bytes);
            let cpu_res = cl.borrow().nodes[node.raw() as usize].cpu.clone();
            let release: EventFn = {
                let broker3 = broker.clone();
                Box::new(move |sim: &mut Sim| {
                    if fits {
                        broker3.borrow_mut().release(node, bytes);
                    }
                    next(sim);
                })
            };
            if fits {
                Resource::submit(&cpu_res, sim, cpu, release);
            } else {
                // Spill: write + read the workspace around the sort CPU.
                let cl2 = cl.clone();
                let after_cpu: EventFn = Box::new(move |sim: &mut Sim| {
                    let mut c = cl2.borrow_mut();
                    let n_disks = c.nodes[node.raw() as usize].disks.len();
                    let disk = if n_disks > 1 { 1 } else { 0 };
                    c.nodes[node.raw() as usize].disks[disk].bulk_transfer(
                        sim,
                        ByteSize::bytes(bytes * 2),
                        release,
                    );
                });
                Resource::submit(&cpu_res, sim, cpu, after_cpu);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use std::cell::RefCell;
    use std::rc::Rc;
    use wattdb_common::CostParams;
    use wattdb_query::{execute, ExecConfig, PlanNode, SyntheticTable};

    fn cluster() -> ClusterRc {
        Cluster::new(
            ClusterConfig {
                nodes: 3,
                buffer_pages: 128,
                ..Default::default()
            },
            &[NodeId(0), NodeId(1), NodeId(2)],
        )
    }

    fn run_plan(plan: &PlanNode, batch: u64) -> SimDuration {
        let (_, trace) = execute(
            plan,
            &CostParams::default(),
            &ExecConfig {
                batch_size: batch,
                ..Default::default()
            },
        );
        let cl = cluster();
        let mut sim = Sim::new();
        let broker = Rc::new(RefCell::new(SortMemoryBroker::default()));
        let out: Rc<RefCell<Option<SimDuration>>> = Rc::new(RefCell::new(None));
        let o = out.clone();
        replay_trace(&cl, &mut sim, trace, broker, move |sim, started| {
            *o.borrow_mut() = Some(sim.now().since(started));
        });
        sim.run_to_completion();
        let d = out.borrow().expect("trace completed");
        d
    }

    fn scan(n: u64, on: u16) -> PlanNode {
        PlanNode::Scan {
            source: Box::new(SyntheticTable::new(n, 100, 100)),
            on: NodeId(on),
        }
    }

    #[test]
    fn local_faster_than_remote_single_record() {
        let local = PlanNode::Project {
            input: Box::new(scan(2000, 1)),
            keep_width: 50,
            on: NodeId(1),
        };
        let remote = PlanNode::Project {
            input: Box::new(scan(2000, 1)),
            keep_width: 50,
            on: NodeId(2),
        };
        let t_local = run_plan(&local, 1);
        let t_remote = run_plan(&remote, 1);
        assert!(
            t_remote.as_micros() > t_local.as_micros() * 10,
            "single-record remote must collapse: local={t_local} remote={t_remote}"
        );
    }

    #[test]
    fn vectorization_rescues_remote_placement() {
        let remote = PlanNode::Project {
            input: Box::new(scan(2000, 1)),
            keep_width: 50,
            on: NodeId(2),
        };
        let t1 = run_plan(&remote, 1);
        let t128 = run_plan(&remote, 128);
        assert!(
            t128.as_micros() * 5 < t1.as_micros(),
            "batching amortizes round trips: {t1} vs {t128}"
        );
    }

    #[test]
    fn buffering_operator_hides_latency_further() {
        let plain = PlanNode::Project {
            input: Box::new(scan(2000, 1)),
            keep_width: 50,
            on: NodeId(2),
        };
        let buffered = PlanNode::Project {
            input: Box::new(PlanNode::Buffer {
                input: Box::new(scan(2000, 1)),
            }),
            keep_width: 50,
            on: NodeId(2),
        };
        let t_plain = run_plan(&plain, 128);
        let t_buf = run_plan(&buffered, 128);
        assert!(t_buf < t_plain, "prefetch helps: {t_buf} vs {t_plain}");
    }

    #[test]
    fn sort_spills_when_memory_oversubscribed() {
        let cl = cluster();
        let mut sim = Sim::new();
        let broker = Rc::new(RefCell::new(SortMemoryBroker::default()));
        broker.borrow_mut().set_limit(NodeId(1), 50_000);
        // Two concurrent sorts of ~100 KB each: the second spills.
        for _ in 0..2 {
            let plan = PlanNode::Sort {
                input: Box::new(scan(1000, 1)),
                on: NodeId(1),
            };
            let (_, trace) = execute(&plan, &CostParams::default(), &ExecConfig::default());
            replay_trace(&cl, &mut sim, trace, broker.clone(), |_, _| {});
        }
        sim.run_to_completion();
        assert!(broker.borrow().spills >= 1);
    }
}
