//! The transaction executor: closed-loop OLTP over the simulated cluster.
//!
//! Each client transaction is a [`TxnJob`] advancing through its record
//! operations as a small state machine. Everything that costs time becomes
//! a simulator action — CPU slices on the executing node's cores, page
//! fetches through the buffer pool (misses queue on the segment's disk),
//! network hops when an operation's owner is another node, lock waits, and
//! the group-commit log flush — and every wait is attributed to a Fig. 7
//! cost category.
//!
//! ITEM is treated as a read-only replicated table (the standard
//! distributed-TPC-C arrangement): item lookups execute locally and never
//! route.
//!
//! Beyond simulator actions, every operation accumulates its **actual
//! operator cost** — a [`CostVector`] of core CPU, buffer-pool page
//! touches, and remote-fetch bytes, the same currency the query crate's
//! `CostTrace` collapses into — and charges it to the segment's heat
//! at apply time. With a cost model configured (the default) the heat
//! signal therefore measures the *work* each segment causes; with cost
//! tracing off the executor falls back to the legacy flat-weight calls at
//! the original call sites, reproducing the weighted-count signal
//! exactly. All per-operation prices come from the shared
//! [`wattdb_query::CostParams`] calibration — the executor keeps no
//! constants of its own.

use wattdb_common::{
    ByteSize, CostVector, Error, Key, Lsn, NodeId, PageId, PartitionId, SegmentId, SimDuration,
    SimTime, TxnId,
};
use wattdb_query::CostParams;
use wattdb_sim::{CostCategory, CostProfile, EventFn, Resource, Sim};
use wattdb_storage::{Fetch, PAGE_SIZE};
use wattdb_tpcc::{Op, OpKind, TpccTable, TxnProfile};
use wattdb_txn::{CcMode, LockAcquire, LockMode, LockTarget};
use wattdb_wal::LogPayload;

use crate::cluster::{Cluster, ClusterRc};

/// Who is waiting on a queued lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Waiter {
    /// An executor job.
    Job(u64),
    /// A migration step (resumed by the move controller).
    Mover(u64),
}

/// Per-operation progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpStage {
    /// Resolve routing, switch nodes, acquire locks.
    Start,
    /// Charge the operation's CPU.
    Cpu,
    /// Fetch the data page.
    Io,
    /// Apply the engine mutation and advance.
    Apply,
}

/// One in-flight transaction.
pub struct TxnJob {
    /// Job id.
    pub id: u64,
    /// Index into `cluster.clients`.
    pub client: usize,
    /// Profile (for reporting).
    pub profile: TxnProfile,
    ops: Vec<Op>,
    next_op: usize,
    stage: OpStage,
    /// Engine transaction.
    pub txn: TxnId,
    /// Submission time of the current attempt.
    pub started: SimTime,
    current_node: NodeId,
    routed: bool,
    locks_acquired: usize,
    /// Set while parked on a lock.
    pub lock_wait_started: Option<SimTime>,
    /// Resolved execution target of the current op.
    cur: Option<(PartitionId, NodeId, SegmentId)>,
    /// Accumulated CPU not yet charged.
    cpu_accum: SimDuration,
    /// Hardware demand of the current operation attempt, charged to the
    /// segment's cost-heat at apply time.
    op_cost: CostVector,
    /// Did the current operation need a remote page fetch?
    op_remote: bool,
    /// Per-category time attribution.
    pub costs: CostProfile,
    write_nodes: Vec<NodeId>,
    /// Outstanding log-flush acknowledgements at commit.
    pub commit_pending: u32,
    /// When the commit wait began.
    pub commit_wait_started: SimTime,
    retries: u32,
    /// Modeled transactions this job stands in for: 1 in per-client mode,
    /// the pool's carrier weight in pooled mode. Metrics, heat, and
    /// resource occupancy scale by it; the executed control flow (and
    /// therefore per-client determinism) does not depend on it.
    pub weight: u64,
}

/// What the job must do next (computed under the cluster borrow, executed
/// by [`step`] outside it).
enum Action {
    /// Re-enter `advance` immediately.
    Loop,
    /// Occupy the node's CPU, then re-enter.
    Cpu(NodeId, SimDuration, CostCategory),
    /// Read one page from a disk, then re-enter.
    DiskRead(NodeId, u8),
    /// Remote page fetch: disk on the storage node plus a page-sized
    /// network transfer (physical partitioning's penalty).
    RemoteRead {
        /// Node executing the query.
        exec: NodeId,
        /// Node storing the segment.
        storage: NodeId,
        /// Disk index on the storage node.
        disk: u8,
    },
    /// Page served from the rDMA remote-buffer tier: one round trip.
    RemoteBufferFetch(NodeId),
    /// Forward the transaction to another node.
    Hop {
        /// Source.
        from: NodeId,
        /// Destination.
        to: NodeId,
    },
    /// Parked on a lock; a grant resumes the job.
    Parked,
    /// Waiting for the group-commit flush.
    CommitWait,
    /// Transaction finished (read-only or after flush).
    Finished,
    /// Abort: retry after backoff.
    Retry,
}

impl Cluster {
    /// Create a job for `client`'s next transaction. Returns `None` when
    /// the experiment is stopped.
    pub fn new_job(&mut self, client: usize, now: SimTime) -> Option<u64> {
        self.new_job_with(client, None, now)
    }

    /// Create a job with an explicit profile (custom mixes, e.g. the
    /// Fig. 3 read/update-ratio sweep); `None` draws from the standard mix.
    pub fn new_job_with(
        &mut self,
        client: usize,
        profile: Option<TxnProfile>,
        now: SimTime,
    ) -> Option<u64> {
        if self.stopped {
            return None;
        }
        let weight = self.pool.as_ref().map_or(1, |p| p.weight_of(client as u32));
        let workload = self.workload.as_mut().expect("dataset loaded");
        let cl = &mut self.clients[client];
        let drawn = cl.next_profile();
        let profile = profile.unwrap_or(drawn);
        let home = cl.home_warehouse;
        let ops = workload.generate(profile, home, cl.rng());
        let txn = self.txn.begin(wattdb_txn::TxnKind::User);
        let id = self.next_job;
        self.next_job += 1;
        self.jobs.insert(
            id,
            TxnJob {
                id,
                client,
                profile,
                ops,
                next_op: 0,
                stage: OpStage::Start,
                txn,
                started: now,
                current_node: NodeId::MASTER,
                routed: false,
                locks_acquired: 0,
                lock_wait_started: None,
                cur: None,
                cpu_accum: SimDuration::ZERO,
                op_cost: CostVector::ZERO,
                op_remote: false,
                costs: CostProfile::new(),
                write_nodes: Vec::new(),
                commit_pending: 0,
                commit_wait_started: SimTime::ZERO,
                retries: 0,
                weight,
            },
        );
        Some(id)
    }

    /// Advance `job` until it blocks; returns the blocking action.
    fn advance(&mut self, now: SimTime, job_id: u64) -> Action {
        let Some(job) = self.jobs.get_mut(&job_id) else {
            return Action::Finished;
        };
        // One-time master routing work per transaction.
        if !job.routed {
            job.routed = true;
            let route = self.cfg.costs.txn_route;
            return Action::Cpu(NodeId::MASTER, route, CostCategory::Cpu);
        }
        if job.next_op >= job.ops.len() {
            return self.begin_commit(now, job_id);
        }
        let op = self.jobs[&job_id].ops[self.jobs[&job_id].next_op];
        match self.jobs[&job_id].stage {
            OpStage::Start => self.op_start(now, job_id, op),
            OpStage::Cpu => self.op_cpu(job_id, op),
            OpStage::Io => self.op_io(now, job_id, op),
            OpStage::Apply => self.op_apply(now, job_id, op),
        }
    }

    fn op_start(&mut self, now: SimTime, job_id: u64, op: Op) -> Action {
        // ITEM: replicated read-only table — serve locally.
        if op.table == TpccTable::Item {
            let job = self.jobs.get_mut(&job_id).expect("live job");
            job.cur = None;
            job.stage = OpStage::Cpu;
            return Action::Loop;
        }
        let table = op.table.table_id();
        let Ok(route) = self.router.route(table, op.key) else {
            // Unroutable key (shouldn't happen): skip the op.
            let job = self.jobs.get_mut(&job_id).expect("live job");
            job.next_op += 1;
            return Action::Loop;
        };
        // Dual-pointer resolution (§4.3): prefer the location whose top
        // index currently covers the key; fall back to the second pointer.
        let primary_has = self
            .partitions
            .get(&route.primary.partition)
            .and_then(|p| p.top.segment_for(op.key))
            .is_some();
        let (pid, node) = if primary_has {
            (route.primary.partition, route.primary.node)
        } else if let Some(also) = route.also {
            (also.partition, also.node)
        } else {
            (route.primary.partition, route.primary.node)
        };
        let Some(seg) = self
            .partitions
            .get(&pid)
            .and_then(|p| p.top.segment_for(op.key))
        else {
            // Moving window edge: retry shortly via a tiny CPU spin.
            return Action::Cpu(
                self.jobs[&job_id].current_node,
                self.cfg.costs.route_retry_spin,
                CostCategory::Other,
            );
        };
        // A dead owner cannot serve: spin until failover re-points the
        // routing (promotion rewrites the dual pointers within one
        // monitoring window).
        if self.failed.contains(&node) {
            let cur = self.jobs[&job_id].current_node;
            let spin_on = if self.failed.contains(&cur) {
                NodeId::MASTER
            } else {
                cur
            };
            return Action::Cpu(
                spin_on,
                self.cfg.costs.route_retry_spin,
                CostCategory::Other,
            );
        }
        // Heat-aware read scaling: an MVCC read in a transaction that has
        // written nothing yet may be served by a caught-up follower instead
        // of the leader. Staleness is bounded by the follower's
        // acknowledged shipping LSN; a transaction that has written
        // anything keeps reading leaders (read-your-writes).
        let node = if op.kind == OpKind::Read
            && self.cfg.replication.enabled()
            && self.cfg.replication.read_routing
            && self.txn.mode() == CcMode::Mvcc
            && self.jobs[&job_id].write_nodes.is_empty()
        {
            let at = self.jobs[&job_id].current_node;
            let w = self.jobs[&job_id].weight;
            self.replica_read_target(seg, node, at, now, w)
                .unwrap_or(node)
        } else {
            node
        };
        let job = self.jobs.get_mut(&job_id).expect("live job");
        job.cur = Some((pid, node, seg));
        // Ship the operation to its owner if we're elsewhere.
        if job.current_node != node {
            let from = job.current_node;
            job.current_node = node;
            return Action::Hop { from, to: node };
        }
        // Locks, coarse to fine.
        let write = op.kind != OpKind::Read;
        let needed = self.locks_for(table, pid, seg, op.key, write);
        loop {
            let acquired = self.jobs[&job_id].locks_acquired;
            if acquired >= needed.len() {
                break;
            }
            let (target, mode) = needed[acquired];
            let txn = self.jobs[&job_id].txn;
            match self.txn.locks.acquire(txn, target, mode) {
                LockAcquire::Granted => {
                    self.jobs.get_mut(&job_id).expect("live job").locks_acquired += 1;
                }
                LockAcquire::Waiting => {
                    let job = self.jobs.get_mut(&job_id).expect("live job");
                    job.lock_wait_started = Some(now);
                    self.lock_waiters.insert(txn, Waiter::Job(job_id));
                    return Action::Parked;
                }
                LockAcquire::Deadlock => {
                    return Action::Retry;
                }
            }
        }
        let job = self.jobs.get_mut(&job_id).expect("live job");
        job.stage = OpStage::Cpu;
        Action::Loop
    }

    /// Pick the copy to serve a read of `seg`, or `None` to stay on the
    /// leader. The segment must be hot enough to fan out
    /// ([`wattdb_common::ReplicaConfig::read_heat_min`]) and a follower
    /// only joins the pool when live and **caught up**: its acknowledged
    /// shipping LSN at or past the segment's last write, so every
    /// committed write is visible. The leader is always in the pool — the
    /// rotation splits the read load across the copies instead of pushing
    /// it all onto the followers. A job already sitting on an eligible
    /// follower stays there (the start stage re-runs after each hop and
    /// must not ping-pong); otherwise the copies rotate round-robin per
    /// segment.
    fn replica_read_target(
        &mut self,
        seg: SegmentId,
        leader: NodeId,
        at: NodeId,
        now: SimTime,
        weight: u64,
    ) -> Option<NodeId> {
        if self.replicas.leader_of(seg) != Some(leader) {
            return None; // map out of step with routing: serve the owner
        }
        if self.heat.heat_of(seg, now).value() < self.cfg.replication.read_heat_min {
            return None;
        }
        let floor = self.seg_last_write.get(&seg).copied().unwrap_or(Lsn::ZERO);
        let shipper = &self.nodes[leader.raw() as usize].replica_shipper;
        let eligible: Vec<NodeId> = self
            .replicas
            .followers_of(seg)
            .iter()
            .copied()
            .filter(|f| !self.failed.contains(f))
            .filter(|&f| shipper.acked_lsn(f).is_some_and(|a| a >= floor))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        // A carrier resolution stands in for `weight` modeled reads —
        // keeps the fan-out share's denominator in the same units as the
        // weighted served counts.
        self.replica_read_total += weight;
        // A job already sitting on a caught-up follower stays: `op_start`
        // re-runs after every hop, and re-rolling the rotation there would
        // bounce the job between copies forever.
        if eligible.contains(&at) {
            return Some(at);
        }
        // The leader stays in the rotation — fan-out *splits* the read
        // load across every live copy rather than re-homing it wholesale
        // onto the followers (which would merely relocate the hotspot).
        // The split is heat-weighted: each copy's rotation weight scales
        // 1..=4 with how much *colder* its host is than the pool's hottest
        // member, so a cold follower absorbs up to 4× the reads of an
        // already-hot one. Equal heats degrade to the plain round-robin.
        let pool: Vec<NodeId> = std::iter::once(leader)
            .chain(eligible.iter().copied())
            .collect();
        let heats: Vec<f64> = pool
            .iter()
            .map(|&n| self.heat.node_heat(&self.seg_dir, n, now).value())
            .collect();
        let max_h = heats.iter().copied().fold(f64::MIN, f64::max);
        let min_h = heats.iter().copied().fold(f64::MAX, f64::min);
        let spread = max_h - min_h;
        let weights: Vec<u64> = heats
            .iter()
            .map(|&h| {
                if spread > 0.0 {
                    1 + (3.0 * (max_h - h) / spread).round() as u64
                } else {
                    1
                }
            })
            .collect();
        for (&n, &w) in pool.iter().zip(&weights) {
            self.replica_route_weights.insert(n, w);
        }
        let total: u64 = weights.iter().sum();
        let rr = self.replica_rr.entry(seg).or_insert(0);
        let slot = (*rr as u64) % total;
        *rr = rr.wrapping_add(1);
        let mut cum = 0u64;
        let mut pick = leader;
        for (&n, &w) in pool.iter().zip(&weights) {
            cum += w;
            if slot < cum {
                pick = n;
                break;
            }
        }
        Some(pick)
    }

    fn locks_for(
        &self,
        table: wattdb_common::TableId,
        pid: PartitionId,
        seg: SegmentId,
        key: Key,
        write: bool,
    ) -> Vec<(LockTarget, LockMode)> {
        match (self.txn.mode(), write) {
            (CcMode::Mvcc, false) => Vec::new(),
            (_, true) => vec![
                (LockTarget::Table(table), LockMode::IX),
                (LockTarget::Partition(pid), LockMode::IX),
                (LockTarget::Segment(seg), LockMode::IX),
                (LockTarget::Record(table, key), LockMode::X),
            ],
            (CcMode::LockingRx, false) => vec![
                (LockTarget::Table(table), LockMode::IS),
                (LockTarget::Partition(pid), LockMode::IS),
                (LockTarget::Segment(seg), LockMode::IS),
                (LockTarget::Record(table, key), LockMode::S),
            ],
        }
    }

    fn op_cpu(&mut self, job_id: u64, op: Op) -> Action {
        let costs = self.cfg.costs;
        let height = match self.jobs[&job_id].cur {
            Some((_, _, seg)) => self.indexes[&seg].height() as u64,
            None => 2, // ITEM replica
        };
        let cpu = op_cpu_cost(&costs, op.kind, height);
        let job = self.jobs.get_mut(&job_id).expect("live job");
        job.stage = OpStage::Io;
        job.cpu_accum += cpu;
        job.op_cost.cpu += cpu;
        Action::Loop
    }

    fn op_io(&mut self, now: SimTime, job_id: u64, op: Op) -> Action {
        let Some((_, exec_node, seg)) = self.jobs[&job_id].cur else {
            // ITEM replica read: always buffer-resident.
            let job = self.jobs.get_mut(&job_id).expect("live job");
            job.cpu_accum += self.cfg.costs.buffer_hit;
            job.stage = OpStage::Apply;
            return Action::Loop;
        };
        // The page to touch: the record's page for reads/updates/deletes,
        // the segment's fill page for inserts.
        let page: Option<PageId> = match op.kind {
            OpKind::Insert => {
                let n = self.store.page_count(seg);
                (n > 0).then(|| PageId::new(seg, (n - 1) as u32))
            }
            _ => self.indexes[&seg].get(op.key).0.map(|rid| rid.page),
        };
        let job = self.jobs.get_mut(&job_id).expect("live job");
        job.stage = OpStage::Apply;
        let Some(page) = page else {
            return Action::Loop; // nothing resident to touch (miss read)
        };
        // Storage location: under physical partitioning a segment may be
        // stored away from its owner. A follower serving a routed read
        // holds its own log-shipped copy, so the page comes off the
        // executing node's local disk — that locality is the whole point
        // of read fan-out.
        let meta = self.seg_dir.get(seg).expect("segment meta");
        let (storage_node, disk) =
            if meta.node != exec_node && self.replicas.followers_of(seg).contains(&exec_node) {
                let n_disks = self.nodes[exec_node.raw() as usize].disks.len();
                let disk = if n_disks > 1 {
                    1 + (seg.raw() as usize % (n_disks - 1))
                } else {
                    0
                };
                (exec_node, disk as u8)
            } else {
                (meta.node, meta.disk.index)
            };
        let costed = self.heat.cost_model().is_some();
        let w = self.jobs[&job_id].weight;
        let writeback_latch = self.cfg.costs.writeback_latch;
        let buffer_hit = self.cfg.costs.buffer_hit;
        let buf = &mut self.nodes[exec_node.raw() as usize].buffer;
        match buf.fetch_pin(page) {
            Fetch::Hit => {
                buf.unpin(page, op.kind != OpKind::Read);
                let job = self.jobs.get_mut(&job_id).expect("live job");
                job.cpu_accum += buffer_hit;
                job.op_cost.cpu += buffer_hit;
                job.op_cost.pages += 1;
                Action::Loop
            }
            Fetch::Miss { writeback } => {
                buf.unpin(page, op.kind != OpKind::Read);
                if writeback.is_some() {
                    // Asynchronous writeback occupies the disk but does not
                    // block the job; buffer churn shows up as latching.
                    let job = self.jobs.get_mut(&job_id).expect("live job");
                    job.costs.record(CostCategory::Latching, writeback_latch);
                }
                let job = self.jobs.get_mut(&job_id).expect("live job");
                job.op_cost.pages += 1;
                if storage_node == exec_node {
                    Action::DiskRead(storage_node, disk)
                } else {
                    // Physical partitioning's penalty — and the strongest
                    // heat signal for moving the segment to its users. The
                    // cost path folds the wire bytes into the operation's
                    // vector (charged at apply); the count path records the
                    // flat surcharge here, exactly as it always did.
                    job.op_remote = true;
                    job.op_cost.net_bytes += PAGE_SIZE as u64 + 64;
                    if !costed {
                        self.heat.record_remote_fetches(seg, now, w);
                    }
                    Action::RemoteRead {
                        exec: exec_node,
                        storage: storage_node,
                        disk,
                    }
                }
            }
            Fetch::RemoteHit { writeback } => {
                buf.unpin(page, op.kind != OpKind::Read);
                if writeback.is_some() {
                    let job = self.jobs.get_mut(&job_id).expect("live job");
                    job.costs.record(CostCategory::Latching, writeback_latch);
                }
                let job = self.jobs.get_mut(&job_id).expect("live job");
                job.op_cost.pages += 1;
                job.op_remote = true;
                job.op_cost.net_bytes += PAGE_SIZE as u64 + 64;
                if !costed {
                    self.heat.record_remote_fetches(seg, now, w);
                }
                Action::RemoteBufferFetch(exec_node)
            }
        }
    }

    fn op_apply(&mut self, now: SimTime, job_id: u64, op: Op) -> Action {
        let table = op.table.table_id();
        // Feed the heat table here, not in `op_start`: the start stage
        // re-runs after every hop and lock-wait resume, while the apply
        // stage executes exactly once per operation attempt. (ITEM
        // replica reads carry no `cur` and stay heat-free.) With a cost
        // model the operation's accumulated CostVector — its *actual*
        // operator cost — is what gets charged; without one the legacy
        // flat-weight calls run at the original sites.
        if let Some((_, node, seg)) = self.jobs[&job_id].cur {
            let w = self.jobs[&job_id].weight;
            // An off-leader read is a replica-served read (apply runs once
            // per operation, so this counts each fan-out exactly once —
            // or `weight` modeled fan-outs for a pooled carrier).
            if op.kind == OpKind::Read && self.replicas.leader_of(seg).is_some_and(|l| l != node) {
                self.replica_reads += w;
                *self.replica_reads_by.entry(node).or_insert(0) += w;
            }
            let kind = match op.kind {
                OpKind::Read => crate::heat::AccessKind::Read,
                _ => crate::heat::AccessKind::Write,
            };
            if self.heat.cost_model().is_some() {
                let (cost, remote) = {
                    let job = self.jobs.get_mut(&job_id).expect("live job");
                    (
                        std::mem::take(&mut job.op_cost),
                        std::mem::take(&mut job.op_remote),
                    )
                };
                self.heat.record_access_n(seg, now, kind, cost, remote, w);
            } else {
                match kind {
                    crate::heat::AccessKind::Read => self.heat.record_reads(seg, now, w),
                    crate::heat::AccessKind::Write => self.heat.record_writes(seg, now, w),
                }
            }
        }
        let result: Result<(), Error> = match self.jobs[&job_id].cur {
            None => Ok(()), // ITEM replica read
            Some((_, node, seg)) => {
                let max_pages = u32::MAX; // segments soft-cap under load
                let width = op.table.row_width();
                let txn = self.jobs[&job_id].txn;
                let idx = self.indexes.get_mut(&seg).expect("segment index");
                let payload = op.key.raw().to_le_bytes().to_vec();
                let r = match op.kind {
                    OpKind::Read => self.txn.read(txn, idx, &self.store, op.key).map(|_| ()),
                    OpKind::Update => {
                        match self.txn.update(
                            txn,
                            idx,
                            &mut self.store,
                            max_pages,
                            op.key,
                            width,
                            payload,
                        ) {
                            Err(Error::KeyNotFound(_)) => Ok(()), // racing delete
                            other => other,
                        }
                    }
                    OpKind::Insert => self.txn.insert(
                        txn,
                        idx,
                        &mut self.store,
                        max_pages,
                        op.key,
                        width,
                        payload,
                    ),
                    OpKind::Delete => {
                        match self
                            .txn
                            .delete(txn, idx, &mut self.store, max_pages, op.key)
                        {
                            Err(Error::KeyNotFound(_)) => Ok(()),
                            other => other,
                        }
                    }
                };
                if r.is_ok() && op.kind != OpKind::Read {
                    // WAL append on the owner node.
                    let bytes = width as usize + 32;
                    let payload = match op.kind {
                        OpKind::Insert => LogPayload::Insert {
                            segment: seg,
                            after: vec![0; bytes],
                        },
                        OpKind::Delete => LogPayload::Delete {
                            segment: seg,
                            before: vec![0; bytes],
                        },
                        _ => LogPayload::Update {
                            segment: seg,
                            before: vec![0; bytes],
                            after: vec![0; bytes],
                        },
                    };
                    let lsn = self.nodes[node.raw() as usize].log.append(txn, payload);
                    if self.cfg.replication.enabled() {
                        // Followers must acknowledge up to here before they
                        // may serve this segment's reads.
                        self.seg_last_write.insert(seg, lsn);
                    }
                    let job = self.jobs.get_mut(&job_id).expect("live job");
                    if !job.write_nodes.contains(&node) {
                        job.write_nodes.push(node);
                    }
                }
                r
            }
        };
        let _ = table;
        match result {
            Ok(()) => {
                let job = self.jobs.get_mut(&job_id).expect("live job");
                job.next_op += 1;
                job.stage = OpStage::Start;
                job.locks_acquired = 0;
                job.cur = None;
                job.op_cost = CostVector::ZERO;
                job.op_remote = false;
                Action::Loop
            }
            Err(Error::TxnAborted { .. }) | Err(Error::DuplicateKey(_)) => Action::Retry,
            Err(_) => {
                // Unexpected engine error: abort the attempt.
                let _ = now;
                Action::Retry
            }
        }
    }

    fn begin_commit(&mut self, now: SimTime, job_id: u64) -> Action {
        // Flush any residual CPU before committing.
        if self.jobs[&job_id].cpu_accum > SimDuration::ZERO {
            let job = self.jobs.get_mut(&job_id).expect("live job");
            let dur = std::mem::take(&mut job.cpu_accum);
            let node = job.current_node;
            return Action::Cpu(node, dur, CostCategory::Cpu);
        }
        let job = self.jobs.get_mut(&job_id).expect("live job");
        if job.write_nodes.is_empty() {
            return Action::Finished;
        }
        job.commit_pending = job.write_nodes.len() as u32;
        job.commit_wait_started = now;
        let nodes = job.write_nodes.clone();
        let txn = job.txn;
        for node in nodes {
            self.nodes[node.raw() as usize]
                .log
                .append(txn, LogPayload::Commit);
            self.commit_queues.entry(node).or_default().push(job_id);
        }
        Action::CommitWait
    }
}

/// The CPU price of one record operation on an index of the given height,
/// from the shared [`CostParams`] calibration: index descent, the latch
/// pair, and the record/log work of the operation kind. This is the value
/// charged to the node's cores *and* to the segment's cost-heat — one
/// model, two consumers.
pub fn op_cpu_cost(costs: &CostParams, kind: OpKind, index_height: u64) -> SimDuration {
    let mut cpu = costs.index_node_visit * index_height + costs.latch_pair;
    cpu += match kind {
        OpKind::Read => costs.record_read,
        OpKind::Update => costs.record_read + costs.record_write + costs.log_append,
        OpKind::Insert => costs.record_write + costs.log_append,
        OpKind::Delete => costs.record_read + costs.record_write + costs.log_append,
    };
    cpu
}

/// Drive `job` until it blocks, scheduling the blocking action's
/// continuation.
pub fn step(cl: &ClusterRc, sim: &mut Sim, job_id: u64) {
    loop {
        let action = {
            let mut c = cl.borrow_mut();
            // Flush accumulated CPU at genuine blocking points only; the
            // advance loop accumulates between them.
            c.advance(sim.now(), job_id)
        };
        match action {
            Action::Loop => continue,
            Action::Cpu(node, dur, cat) => {
                let (pending, w) = {
                    let mut c = cl.borrow_mut();
                    let job = c.jobs.get_mut(&job_id).expect("live job");
                    (dur + std::mem::take(&mut job.cpu_accum), job.weight)
                };
                let cpu = cl.borrow().nodes[node.raw() as usize].cpu.clone();
                let handle = cl.clone();
                let submitted = sim.now();
                Resource::submit(
                    &cpu,
                    sim,
                    pending,
                    Box::new(move |sim| {
                        {
                            let mut c = handle.borrow_mut();
                            if let Some(job) = c.jobs.get_mut(&job_id) {
                                job.costs.record(cat, sim.now().since(submitted));
                            }
                        }
                        step(&handle, sim, job_id);
                    }),
                );
                if w > 1 {
                    // The carrier executes once on behalf of `w` modeled
                    // transactions: occupy the cores with the remaining
                    // `w − 1` shares without blocking the job, so
                    // utilization (and the monitor/power model) sees the
                    // modeled population's demand.
                    let extra = SimDuration::from_micros(pending.as_micros() * (w - 1));
                    Resource::submit(&cpu, sim, extra, Box::new(|_| {}));
                }
                return;
            }
            Action::DiskRead(node, disk) => {
                let handle = cl.clone();
                let submitted = sim.now();
                let mut c = cl.borrow_mut();
                // Flush CPU accumulated so far onto the profile directly
                // (disk access point is the boundary).
                flush_cpu_inline(&mut c, sim, job_id, node);
                c.nodes[node.raw() as usize].disks[disk as usize].read_page(
                    sim,
                    Box::new(move |sim| {
                        {
                            let mut c = handle.borrow_mut();
                            if let Some(job) = c.jobs.get_mut(&job_id) {
                                job.costs
                                    .record(CostCategory::DiskIo, sim.now().since(submitted));
                            }
                        }
                        step(&handle, sim, job_id);
                    }),
                );
                let w = c.jobs.get(&job_id).map_or(1, |j| j.weight);
                if w > 1 {
                    // The other `w − 1` modeled fetches occupy the drive
                    // as one bulk transfer without blocking the job.
                    let extra = ByteSize::bytes(PAGE_SIZE as u64 * (w - 1));
                    c.nodes[node.raw() as usize].disks[disk as usize].bulk_transfer(
                        sim,
                        extra,
                        Box::new(|_| {}),
                    );
                }
                return;
            }
            Action::RemoteRead {
                exec,
                storage,
                disk,
            } => {
                // Remote disk read + page over the wire (physical scheme).
                let handle = cl.clone();
                let submitted = sim.now();
                let mut c = cl.borrow_mut();
                flush_cpu_inline(&mut c, sim, job_id, exec);
                let w = c.jobs.get(&job_id).map_or(1, |j| j.weight);
                if w > 1 {
                    // Remaining modeled fetches: bulk disk occupancy on the
                    // storage node plus their pages on the wire, detached.
                    let pages = ByteSize::bytes(PAGE_SIZE as u64 * (w - 1));
                    c.nodes[storage.raw() as usize].disks[disk as usize].bulk_transfer(
                        sim,
                        pages,
                        Box::new(|_| {}),
                    );
                    c.net.send(
                        sim,
                        storage,
                        exec,
                        ByteSize::bytes((PAGE_SIZE as u64 + 64) * (w - 1)),
                        Box::new(|_| {}),
                    );
                }
                let inner = cl.clone();
                c.nodes[storage.raw() as usize].disks[disk as usize].read_page(
                    sim,
                    Box::new(move |sim| {
                        let disk_done = sim.now();
                        {
                            let mut c = inner.borrow_mut();
                            if let Some(job) = c.jobs.get_mut(&job_id) {
                                job.costs
                                    .record(CostCategory::DiskIo, disk_done.since(submitted));
                            }
                        }
                        let c = inner.borrow();
                        c.net.send(
                            sim,
                            storage,
                            exec,
                            ByteSize::bytes(PAGE_SIZE as u64 + 64),
                            Box::new(move |sim| {
                                {
                                    let mut c = handle.borrow_mut();
                                    if let Some(job) = c.jobs.get_mut(&job_id) {
                                        job.costs.record(
                                            CostCategory::NetworkIo,
                                            sim.now().since(disk_done),
                                        );
                                    }
                                }
                                step(&handle, sim, job_id);
                            }),
                        );
                    }),
                );
                return;
            }
            Action::RemoteBufferFetch(exec) => {
                // rDMA fetch from a helper's memory: round trip + page.
                let helper = {
                    let c = cl.borrow();
                    c.nodes[exec.raw() as usize].helper.unwrap_or(exec)
                };
                let handle = cl.clone();
                let submitted = sim.now();
                let c = cl.borrow();
                let w = c.jobs.get(&job_id).map_or(1, |j| j.weight);
                if w > 1 {
                    // Remaining modeled rDMA fetches: their pages on the
                    // wire from the helper, detached.
                    c.net.send(
                        sim,
                        helper,
                        exec,
                        ByteSize::bytes((PAGE_SIZE as u64 + 64) * (w - 1)),
                        Box::new(|_| {}),
                    );
                }
                wattdb_net::round_trip(
                    &c.net,
                    sim,
                    exec,
                    helper,
                    ByteSize::bytes(64),
                    ByteSize::bytes(PAGE_SIZE as u64),
                    SimDuration::from_micros(10),
                    Box::new(move |sim| {
                        {
                            let mut c = handle.borrow_mut();
                            if let Some(job) = c.jobs.get_mut(&job_id) {
                                job.costs
                                    .record(CostCategory::NetworkIo, sim.now().since(submitted));
                            }
                        }
                        step(&handle, sim, job_id);
                    }),
                );
                return;
            }
            Action::Hop { from, to } => {
                let handle = cl.clone();
                let submitted = sim.now();
                let c = cl.borrow();
                let w = c.jobs.get(&job_id).map_or(1, |j| j.weight);
                if w > 1 {
                    // Remaining modeled forwards share the wire, detached.
                    c.net.send(
                        sim,
                        from,
                        to,
                        ByteSize::bytes(256 * (w - 1)),
                        Box::new(|_| {}),
                    );
                }
                c.net.send(
                    sim,
                    from,
                    to,
                    ByteSize::bytes(256),
                    Box::new(move |sim| {
                        {
                            let mut c = handle.borrow_mut();
                            if let Some(job) = c.jobs.get_mut(&job_id) {
                                job.costs
                                    .record(CostCategory::NetworkIo, sim.now().since(submitted));
                            }
                        }
                        step(&handle, sim, job_id);
                    }),
                );
                return;
            }
            Action::Parked | Action::CommitWait => {
                schedule_pending_flushes(cl, sim);
                return;
            }
            Action::Finished => {
                finish_job(cl, sim, job_id);
                return;
            }
            Action::Retry => {
                abort_and_retry(cl, sim, job_id);
                return;
            }
        }
    }
}

fn flush_cpu_inline(c: &mut Cluster, sim: &mut Sim, job_id: u64, node: NodeId) {
    // Residual CPU accumulated since the last boundary: attribute it to the
    // job's profile and occupy the node's cores asynchronously (the job is
    // about to wait on I/O anyway, but the cycles must consume capacity or
    // utilization — and the monitor/power model — would undercount).
    if let Some(job) = c.jobs.get_mut(&job_id) {
        let dur = std::mem::take(&mut job.cpu_accum);
        if dur > SimDuration::ZERO {
            job.costs.record(CostCategory::Cpu, dur);
            // Pooled carriers occupy the cores with all `weight` modeled
            // shares (the profile above records the one executed share).
            let occupy = SimDuration::from_micros(dur.as_micros() * job.weight);
            let cpu = c.nodes[node.raw() as usize].cpu.clone();
            Resource::submit(&cpu, sim, occupy, Box::new(|_| {}));
        }
    }
}

/// Ensure every node with queued commits has a flush scheduled.
pub fn schedule_pending_flushes(cl: &ClusterRc, sim: &mut Sim) {
    let nodes: Vec<NodeId> = {
        let c = cl.borrow();
        c.commit_queues
            .iter()
            .filter(|(n, q)| !q.is_empty() && !c.flush_scheduled.contains(n))
            .map(|(n, _)| *n)
            .collect()
    };
    for node in nodes {
        let window = {
            let mut c = cl.borrow_mut();
            c.flush_scheduled.insert(node);
            c.cfg.group_commit
        };
        let handle = cl.clone();
        sim.after(window, move |sim| flush_node_log(&handle, sim, node));
    }
}

fn flush_node_log(cl: &ClusterRc, sim: &mut Sim, node: NodeId) {
    let (jobs, bytes, last_lsn, helper) = {
        let mut c = cl.borrow_mut();
        c.flush_scheduled.remove(&node);
        let jobs = c.commit_queues.remove(&node).unwrap_or_default();
        let n = &c.nodes[node.raw() as usize];
        (jobs, n.log.pending_bytes(), n.log.last_lsn(), n.helper)
    };
    if jobs.is_empty() {
        return;
    }
    let handle = cl.clone();
    let done: EventFn = Box::new(move |sim| {
        {
            let mut c = handle.borrow_mut();
            c.nodes[node.raw() as usize].log.mark_durable(last_lsn);
        }
        // The freshly durable tail fans out to this node's replica
        // followers in the background; commits do not wait on it.
        ship_replica_batches(&handle, sim, node);
        for job_id in jobs {
            commit_ack(&handle, sim, job_id);
        }
        // New commits may have queued while flushing.
        schedule_pending_flushes(&handle, sim);
    });
    match helper {
        Some(h) => {
            // Log shipping: the flush travels the wire instead of the disk.
            let c = cl.borrow();
            c.net
                .send(sim, node, h, ByteSize::bytes(bytes as u64), done);
        }
        None => {
            let mut c = cl.borrow_mut();
            // WAL lives on disk 0 (the HDD).
            c.nodes[node.raw() as usize].disks[0].bulk_transfer(
                sim,
                ByteSize::bytes(bytes as u64),
                done,
            );
        }
    }
}

/// Ship the durable log tail to every live replica follower attached to
/// `node`: one wire transfer per follower cursor with new records,
/// acknowledged on delivery — which advances the staleness bound that
/// gates follower-served reads. An endpoint that fails mid-flight voids
/// its delivery silently.
fn ship_replica_batches(cl: &ClusterRc, sim: &mut Sim, node: NodeId) {
    let ships: Vec<(NodeId, u64, Lsn)> = {
        let mut c = cl.borrow_mut();
        let c = &mut *c;
        if c.failed.contains(&node) {
            return;
        }
        let failed = &c.failed;
        let n = &mut c.nodes[node.raw() as usize];
        n.replica_shipper
            .cursors()
            .into_iter()
            .filter(|(f, _, _)| !failed.contains(f))
            .filter_map(|(f, _, _)| {
                let (_, bytes) = n.replica_shipper.take_batch(f, &n.log)?;
                let to = n.replica_shipper.shipped_lsn(f)?;
                Some((f, bytes as u64, to))
            })
            .collect()
    };
    for (f, bytes, to) in ships {
        let handle = cl.clone();
        let done: EventFn = Box::new(move |_sim| {
            let mut c = handle.borrow_mut();
            if c.failed.contains(&node) || c.failed.contains(&f) {
                return;
            }
            c.nodes[node.raw() as usize]
                .replica_shipper
                .acknowledge(f, to);
        });
        cl.borrow()
            .net
            .send(sim, node, f, ByteSize::bytes(bytes), done);
    }
}

fn commit_ack(cl: &ClusterRc, sim: &mut Sim, job_id: u64) {
    let ready = {
        let mut c = cl.borrow_mut();
        let Some(job) = c.jobs.get_mut(&job_id) else {
            return;
        };
        job.commit_pending -= 1;
        if job.commit_pending == 0 {
            let waited = sim.now().since(job.commit_wait_started);
            job.costs.record(CostCategory::Logging, waited);
            true
        } else {
            false
        }
    };
    if ready {
        finish_job(cl, sim, job_id);
    }
}

fn finish_job(cl: &ClusterRc, sim: &mut Sim, job_id: u64) {
    let (client, grants) = {
        let mut c = cl.borrow_mut();
        let c = &mut *c;
        let Some(job) = c.jobs.remove(&job_id) else {
            return;
        };
        let (_, grants) = c
            .txn
            .commit(job.txn, &mut c.store)
            .unwrap_or((0, Vec::new()));
        let phase = c.phase();
        let response = sim.now().since(job.started);
        c.metrics
            .record_completion_weighted(sim.now(), response, phase, job.costs, job.weight);
        *c.metrics.mix.entry(job.profile).or_insert(0) += job.weight;
        c.clients[job.client].complete_n(job.weight);
        (job.client, grants)
    };
    resume_grants(cl, sim, grants);
    schedule_client(cl, sim, client);
}

fn abort_and_retry(cl: &ClusterRc, sim: &mut Sim, job_id: u64) {
    let (client, grants, backoff, resubmit) = {
        let mut c = cl.borrow_mut();
        let Some(job) = c.jobs.get_mut(&job_id) else {
            return;
        };
        let txn = job.txn;
        job.retries += 1;
        let too_many = job.retries > 10;
        // Undo engine state and release locks.
        let grants = {
            let c2 = &mut *c;
            c2.txn
                .abort(txn, &mut c2.indexes, &mut c2.store)
                .unwrap_or_default()
        };
        c.lock_waiters.remove(&txn);
        c.metrics.record_abort();
        let client = c.jobs[&job_id].client;
        let backoff = c.clients[client].backoff();
        if too_many {
            c.jobs.remove(&job_id);
            (client, grants, backoff, false)
        } else {
            // Fresh attempt: new engine txn, same ops.
            let new_txn = c.txn.begin(wattdb_txn::TxnKind::User);
            let job = c.jobs.get_mut(&job_id).expect("live job");
            job.txn = new_txn;
            job.next_op = 0;
            job.stage = OpStage::Start;
            job.locks_acquired = 0;
            job.cur = None;
            job.op_cost = CostVector::ZERO;
            job.op_remote = false;
            job.write_nodes.clear();
            job.routed = false;
            job.current_node = NodeId::MASTER;
            (client, grants, backoff, true)
        }
    };
    resume_grants(cl, sim, grants);
    if resubmit {
        let handle = cl.clone();
        sim.after(backoff, move |sim| step(&handle, sim, job_id));
    } else {
        schedule_client(cl, sim, client);
    }
}

/// Resume lock waiters granted by a release.
pub fn resume_grants(cl: &ClusterRc, sim: &mut Sim, grants: Vec<(TxnId, LockTarget, LockMode)>) {
    for (txn, _, _) in grants {
        let waiter = {
            let mut c = cl.borrow_mut();
            c.lock_waiters.remove(&txn)
        };
        match waiter {
            Some(Waiter::Job(job_id)) => {
                {
                    let mut c = cl.borrow_mut();
                    if let Some(job) = c.jobs.get_mut(&job_id) {
                        if let Some(started) = job.lock_wait_started.take() {
                            job.costs
                                .record(CostCategory::Locking, sim.now().since(started));
                        }
                        job.locks_acquired += 1;
                    }
                }
                step(cl, sim, job_id);
            }
            Some(Waiter::Mover(move_id)) => {
                crate::migration::resume_mover(cl, sim, move_id);
            }
            None => {}
        }
    }
}

/// Schedule a client's next submission after its think time. In pooled
/// mode the carrier is parked back into the pool instead — the aggregated
/// arrival process (not a per-client timer) decides when it next submits.
pub fn schedule_client(cl: &ClusterRc, sim: &mut Sim, client: usize) {
    let think = {
        let mut c = cl.borrow_mut();
        if c.stopped || !c.auto_resubmit {
            return;
        }
        if let Some(pool) = c.pool.as_mut() {
            pool.park(client as u32);
            return;
        }
        c.clients[client].think()
    };
    let handle = cl.clone();
    sim.after(think, move |sim| {
        let job = {
            let mut c = handle.borrow_mut();
            c.new_job(client, sim.now())
        };
        if let Some(job_id) = job {
            step(&handle, sim, job_id);
        }
    });
}

/// Kick off all clients. Per-client mode staggers each by its first think
/// time; pooled mode starts the single arrival repeater that drives the
/// whole carrier population with one periodic event.
pub fn start_clients(cl: &ClusterRc, sim: &mut Sim) {
    let tick = cl.borrow().pool.as_ref().map(|p| p.tick());
    let Some(tick) = tick else {
        let n = cl.borrow().clients.len();
        for client in 0..n {
            schedule_client(cl, sim, client);
        }
        return;
    };
    let handle = cl.clone();
    wattdb_sim::Repeater::every(sim, tick, move |sim| {
        let due = {
            let mut c = handle.borrow_mut();
            if c.stopped {
                return false; // workload drained: the arrival loop ends
            }
            if !c.auto_resubmit {
                // A custom driver loop owns submission; keep ticking so
                // the pool resumes when auto-resubmit is restored.
                return true;
            }
            match c.pool.as_mut() {
                Some(pool) => pool.arrivals(),
                None => return false, // respawned per-client mid-run
            }
        };
        for (carrier, jitter) in due {
            // Each arrival fires at its own offset inside the tick — the
            // pool's jitter — so carriers hit the lock manager and the
            // resource queues spread out like per-client arrivals do.
            let inner = handle.clone();
            sim.after(jitter, move |sim| {
                let job = {
                    let mut c = inner.borrow_mut();
                    c.new_job(carrier as usize, sim.now())
                };
                match job {
                    Some(job_id) => step(&inner, sim, job_id),
                    // Stopped since the draw: the arrival is moot, but
                    // park the carrier so the pool's books stay balanced.
                    None => {
                        if let Some(pool) = inner.borrow_mut().pool.as_mut() {
                            pool.park(carrier);
                        }
                    }
                }
            });
        }
        true
    });
}

/// Schedule a [`wattdb_tpcc::LoadTrace`]'s breakpoints against the
/// pooled arrival process: each breakpoint after the first becomes one
/// simulator event that retargets the pool's carrier groups (the first
/// breakpoint was applied at spawn). Breakpoint offsets are relative to
/// *now*, so call this when the trace starts. O(points) events total —
/// no spawn storms, no per-client timers.
pub fn schedule_trace(cl: &ClusterRc, sim: &mut Sim, trace: &wattdb_tpcc::LoadTrace) {
    for point in trace.points().iter().skip(1) {
        let targets = point.targets.clone();
        let handle = cl.clone();
        sim.after(point.at, move |_sim| {
            let mut c = handle.borrow_mut();
            if let Some(pool) = c.pool.as_mut() {
                for (group, &target) in targets.iter().enumerate() {
                    pool.set_target(group, target);
                }
            }
        });
    }
}

/// Retry aborted transaction bookkeeping visible for tests.
pub fn inflight_jobs(cl: &ClusterRc) -> usize {
    cl.borrow().jobs.len()
}
