//! Bridge from the cluster's control plane into the
//! [`wattdb_telemetry`] flight recorder.
//!
//! The telemetry crate knows virtual time and metric names; this module
//! owns the *vocabulary* — which gauges exist, how a [`Decision`]
//! renders on the timeline, and how the policy's [`PolicySignals`] and
//! the monitoring view combine into the exported
//! [`SignalVector`]. Everything here is called from the monitoring /
//! autopilot loop, once per window, on already-sampled state: probes
//! are stateful window samplers and are never touched from here.

use wattdb_common::{NodeId, SimTime};
use wattdb_telemetry::{DecisionRecord, SignalVector};

use crate::autopilot::Outcome;
use crate::cluster::Cluster;
use crate::monitor::ClusterView;
use crate::policy::{Decision, PolicySignals};

/// Render a node list as `n0+n1+n2` (compact, deterministic).
fn node_list(nodes: &[NodeId]) -> String {
    let mut out = String::new();
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            out.push('+');
        }
        out.push_str(&n.to_string());
    }
    out
}

/// Render a decision for the timeline and the explain output.
pub fn decision_label(d: &Decision) -> String {
    match d {
        Decision::Hold => "Hold".to_string(),
        Decision::ScaleOut { sources, targets } => {
            format!("ScaleOut({}→{})", node_list(sources), node_list(targets))
        }
        Decision::ScaleIn { drain } => format!("ScaleIn({})", node_list(drain)),
        Decision::Rebalance { sources, targets } => {
            format!("Rebalance({}→{})", node_list(sources), node_list(targets))
        }
        Decision::AttachHelpers { sources, .. } => {
            format!("AttachHelpers({})", node_list(sources))
        }
        Decision::DetachHelpers { helpers } => {
            format!("DetachHelpers({})", node_list(helpers))
        }
        Decision::Promote { failed, orphaned } => {
            format!("Promote({failed}, {} segments)", orphaned.len())
        }
    }
}

/// Render an applied/deferred/suspended outcome for the timeline.
pub fn outcome_label(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Applied => "applied".to_string(),
        Outcome::Deferred { reason } => format!("deferred: {reason}"),
        Outcome::Suspended { nodes } => format!("suspended: {}", node_list(nodes)),
    }
}

/// Combine the monitoring view and the policy's frozen signals into the
/// exported signal vector.
pub fn signal_vector(view: &ClusterView, sig: &PolicySignals) -> SignalVector {
    let active: Vec<_> = view.reports.iter().filter(|r| r.active).collect();
    SignalVector {
        mean_active_cpu: view.mean_active_cpu(),
        max_cpu: active.iter().map(|r| r.cpu).fold(0.0, f64::max),
        max_net: active.iter().map(|r| r.net_tx).fold(0.0, f64::max),
        heat_skew: sig.skew,
        mean_heat: sig.mean_heat,
        active_nodes: active.len() as u64,
        standby_nodes: (view.reports.len() - active.len()) as u64,
        high_streak: sig.high_streak as u64,
        low_streak: sig.low_streak as u64,
        skew_streak: sig.skew_streak as u64,
        cooldown_left: sig.cooldown_left as u64,
        skew_fires: sig.skew_fires as u64,
        subsided: sig.subsided,
    }
}

/// Push one decision record onto the timeline.
#[allow(clippy::too_many_arguments)]
pub fn record_decision(
    c: &mut Cluster,
    window: u64,
    at: SimTime,
    decision: &Decision,
    trigger: &str,
    outcome: String,
    signals: SignalVector,
    predicted: Option<f64>,
    span: Option<wattdb_telemetry::SpanId>,
) {
    c.telemetry.timeline.push(DecisionRecord {
        window,
        at,
        decision: decision_label(decision),
        trigger: trigger.to_string(),
        outcome,
        signals,
        predicted,
        span: span.map(|s| s.0),
    });
}

/// Freeze one monitoring window into the metrics registry: transaction
/// throughput and response percentiles, engine speed, per-node
/// CPU/NIC/heat, replica shipping and read fan-out, WAL shipping lag,
/// re-replication traffic, instantaneous watts, and Wh per committed
/// transaction. `events` is the simulator's cumulative executed-event
/// count — a sim-domain quantity, so the derived engine-speed gauges
/// stay deterministic (no wall clock enters the telemetry). Returns the
/// window index (shared with this window's decision records).
pub fn sample_window(c: &mut Cluster, view: &ClusterView, at: SimTime, events: u64) -> u64 {
    // Throughput: completions since the previous window, over the
    // window length (the first window has no baseline and reads zero).
    let completed = c.metrics.completed;
    let aborted = c.metrics.aborted;
    let prev_completed = c.telemetry.registry.counter("txn.completed");
    let prev_events = c.telemetry.registry.counter("engine.events");
    let prev_at = c.telemetry.registry.latest().map(|s| s.at);
    let (throughput, events_per_sec) = match prev_at {
        Some(t0) if at > t0 => {
            let secs = at.since(t0).as_secs_f64();
            (
                (completed.saturating_sub(prev_completed)) as f64 / secs,
                (events.saturating_sub(prev_events)) as f64 / secs,
            )
        }
        _ => (0.0, 0.0),
    };
    let r = &mut c.telemetry.registry;
    r.set_counter("txn.completed", completed);
    r.set_counter("txn.aborted", aborted);
    r.set_gauge("txn.throughput", throughput);
    // Engine speed, per *simulated* second: how many kernel events (and
    // committed transactions) one second of virtual time costs. The
    // pooled client mode exists to push txns-per-event up — these gauges
    // make that visible per window.
    r.set_counter("engine.events", events);
    r.set_gauge("engine.events_per_sec", events_per_sec);
    r.set_gauge("engine.txns_per_sec", throughput);
    for (name, p) in [("p50", 50.0), ("p95", 95.0), ("p99", 99.0)] {
        r.set_gauge(
            &format!("txn.response_ms.{name}"),
            c.metrics.response_hist.percentile(p).as_millis_f64(),
        );
    }
    // Per-node utilization and heat, straight from the already-sampled
    // view (never from the probes).
    for report in &view.reports {
        let n = report.node.raw();
        r.set_gauge(&format!("node.{n}.cpu"), report.cpu);
        r.set_gauge(&format!("node.{n}.net"), report.net_tx);
        r.set_gauge(&format!("node.{n}.heat"), report.heat);
        r.set_gauge(&format!("node.{n}.replica_ship"), report.replica_ship_tx);
        r.set_gauge(&format!("node.{n}.replica_fanout"), report.replica_fanout);
        r.set_gauge(
            &format!("node.{n}.active"),
            if report.active { 1.0 } else { 0.0 },
        );
    }
    r.set_gauge("heat.skew", view.heat_skew());
    // Replication: shipped bytes, WAL shipping lag (worst follower),
    // follower read fan-out, re-replication repair traffic.
    let shipped: u64 = c
        .nodes
        .iter()
        .map(|n| n.replica_shipper.shipped_bytes())
        .sum();
    let mut lag_max = 0u64;
    for node in &c.nodes {
        for f in node.replica_shipper.followers() {
            if let Some(lag) = node.replica_shipper.lag(f, &node.log) {
                lag_max = lag_max.max(lag);
            }
        }
    }
    let r = &mut c.telemetry.registry;
    r.set_counter("replica.shipped_bytes", shipped);
    r.set_gauge("replica.lag_max", lag_max as f64);
    r.set_counter("replica.reads", c.replica_reads);
    r.set_counter("replica.routed_reads", c.replica_read_total);
    let share = if c.replica_read_total > 0 {
        c.replica_reads as f64 / c.replica_read_total as f64
    } else {
        0.0
    };
    r.set_gauge("replica.read_share", share);
    r.set_counter("rereplication.bytes", c.rereplication_bytes);
    for (&node, &w) in &c.replica_route_weights {
        r.set_gauge(&format!("replica.route_weight.{}", node.raw()), w as f64);
    }
    // Offered load: the pooled workload's modeled-client target in
    // force this window (trace-driven runs move it along the schedule).
    // Per-client runs carry no pool and no gauge — their exports stay
    // byte-identical to the pre-trace format.
    let target = c.pool.as_ref().map(|p| p.current_target());
    let r = &mut c.telemetry.registry;
    if let Some(target) = target {
        r.set_gauge("workload.target_clients", target as f64);
    }
    // Energy: the latest 1 s power sample and Wh per committed txn so
    // far — the paper's proportionality currency.
    if let Some(sample) = c.meter.series().last() {
        r.set_gauge("power.watts", sample.power.0);
    }
    let joules = c.meter.total_energy().0;
    r.set_gauge("energy.joules", joules);
    let wh_per_txn = if completed > 0 {
        joules / 3600.0 / completed as f64
    } else {
        0.0
    };
    r.set_gauge("energy.wh_per_txn", wh_per_txn);
    r.sample_window(at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_compact_and_stable() {
        let d = Decision::ScaleOut {
            sources: vec![NodeId(1), NodeId(2)],
            targets: vec![NodeId(4)],
        };
        assert_eq!(decision_label(&d), "ScaleOut(n1+n2→n4)");
        assert_eq!(decision_label(&Decision::Hold), "Hold");
        assert_eq!(
            outcome_label(&Outcome::Deferred {
                reason: "rebalance in flight"
            }),
            "deferred: rebalance in flight"
        );
        assert_eq!(
            outcome_label(&Outcome::Suspended {
                nodes: vec![NodeId(3)]
            }),
            "suspended: n3"
        );
    }
}
