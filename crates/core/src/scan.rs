//! Analytic scans over live segments, costed by the query engine.
//!
//! The OLTP executor prices point operations; this module is the bridge
//! for the *other* half of the workload: table/range scans (optionally
//! with an aggregation) that run through `wattdb_query`'s volcano
//! executor against the cluster's real segments. Each covered segment
//! becomes one per-segment plan; [`wattdb_query::execute`] evaluates it
//! and emits the [`wattdb_query::CostTrace`] whose stages are replayed
//! through the shared node resources — so scans contend with OLTP for
//! the CPUs the monitor watches — and whose collapsed
//! [`wattdb_common::CostVector`] is charged to the segment's heat.
//!
//! This is where cost-based heat earns its keep: under the cost model a
//! 2 000-record scan with an aggregation charges its full CPU/page bill
//! to the segment, so a scan-heavy segment with a handful of accesses
//! out-weighs a point-read-hot one and the planner ships the *work*. With
//! cost tracing off the same scan is a single access (one `read_weight`),
//! which is all the legacy count signal could see.
//!
//! Heat is charged at **dispatch time** from the trace — i.e. from the
//! optimizer's cost estimate, exactly the signal Arsov et al. plan on —
//! while the hardware demand is replayed in virtual time.

use std::cell::RefCell;
use std::rc::Rc;

use wattdb_common::{KeyRange, NodeId, SegmentId, TableId};
use wattdb_query::{execute, AggFunc, ExecConfig, PlanNode, RowSource, Tuple};

use crate::cluster::{Cluster, ClusterRc};
use crate::replay::{replay_trace, SortMemoryBroker};

/// A materialized snapshot of one segment's live rows, adapted to the
/// query engine's [`RowSource`]. Materializing under the cluster borrow
/// keeps `execute` pure (it runs with no engine access).
struct SegmentSource {
    rows: Vec<Tuple>,
    pages: u64,
}

impl RowSource for SegmentSource {
    fn row_count(&self) -> u64 {
        self.rows.len() as u64
    }

    fn page_count(&self) -> u64 {
        self.pages
    }

    fn rows(&self) -> Vec<Tuple> {
        self.rows.clone()
    }
}

/// One segment's scan assignment: the plan input plus where it lives.
struct SegmentScan {
    seg: SegmentId,
    node: NodeId,
    source: SegmentSource,
}

/// Collect the scan assignments for every segment of `table` intersecting
/// `range`, in segment order.
fn covered_segments(c: &Cluster, table: TableId, range: KeyRange) -> Vec<SegmentScan> {
    let mut scans = Vec::new();
    let mut metas: Vec<_> = c
        .seg_dir
        .iter()
        .filter(|m| m.table == table)
        .filter(|m| match m.key_range {
            Some(r) => r.start < range.end && range.start < r.end,
            None => false,
        })
        .collect();
    metas.sort_by_key(|m| m.id);
    for m in metas {
        let Some(idx) = c.indexes.get(&m.id) else {
            continue;
        };
        let entries = idx.range_scan(range);
        if entries.is_empty() {
            continue;
        }
        // Logical row image shipped between operators (compact column
        // subset; the stored width only matters for disk footprints).
        let width = 64u32;
        let rows: Vec<Tuple> = entries
            .iter()
            .map(|(k, _)| Tuple {
                key: *k,
                // Deterministic pseudo-columns: a value and a group column
                // derived from the key, enough for filter/agg operators.
                values: vec![(k.raw() % 1000) as i64, (k.raw() % 16) as i64],
                width,
            })
            .collect();
        scans.push(SegmentScan {
            seg: m.id,
            node: m.node,
            source: SegmentSource {
                rows,
                pages: (c.store.page_count(m.id) as u64).max(1),
            },
        });
    }
    scans
}

/// Outcome of one dispatched scan.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanReport {
    /// Segments the scan covered.
    pub segments: usize,
    /// Rows produced across all per-segment plans (pre-aggregation).
    pub rows: u64,
    /// Heat charged across the covered segments (cost-scalarized, or one
    /// `read_weight` per segment under the count fallback).
    pub heat_charged: f64,
}

/// Dispatch a range scan of `table` over `range`, optionally topped by a
/// [`AggFunc`] group-aggregation on the storage node (the CPU-heavy
/// shape). Per covered segment: evaluate the plan, charge the trace's
/// cost to the segment's heat at the current virtual time, and replay the
/// hardware demands through the cluster's shared resources. Returns the
/// dispatch-time report; the demands drain asynchronously in virtual
/// time.
pub fn submit_scan(
    cl: &ClusterRc,
    sim: &mut wattdb_sim::Sim,
    table: TableId,
    range: KeyRange,
    agg: Option<AggFunc>,
) -> ScanReport {
    let mut report = ScanReport::default();
    let broker = Rc::new(RefCell::new(SortMemoryBroker::default()));
    let jobs = {
        let mut c = cl.borrow_mut();
        let scans = covered_segments(&c, table, range);
        let params = c.cfg.costs;
        let cfg = ExecConfig::default();
        let now = sim.now();
        let mut jobs = Vec::with_capacity(scans.len());
        for scan in scans {
            let on = scan.node;
            let scanned = scan.source.row_count();
            let mut plan = PlanNode::Scan {
                source: Box::new(scan.source),
                on,
            };
            if let Some(func) = agg {
                plan = PlanNode::GroupAgg {
                    input: Box::new(plan),
                    func,
                    on,
                };
            }
            let (_, trace) = execute(&plan, &params, &cfg);
            let cost = trace.cost_vector();
            let before = c.heat.heat_of(scan.seg, now).value();
            c.heat.record_scan(scan.seg, now, cost);
            report.heat_charged += c.heat.heat_of(scan.seg, now).value() - before;
            report.segments += 1;
            report.rows += scanned;
            jobs.push(trace);
        }
        jobs
    };
    for trace in jobs {
        replay_trace(cl, sim, trace, broker.clone(), |_, _| {});
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::WattDb;
    use wattdb_common::{Key, NodeId, SimDuration};
    use wattdb_tpcc::TpccTable;

    fn db() -> WattDb {
        WattDb::builder()
            .nodes(2)
            .warehouses(2)
            .density(0.02)
            .segment_pages(8)
            .seed(9)
            .initial_data_nodes(&[NodeId(0)])
            .build()
    }

    #[test]
    fn scan_charges_cost_heat_to_the_covered_segments() {
        let mut db = db();
        let table = TpccTable::Stock.table_id();
        let range = wattdb_tpcc::warehouse_range(0, 2);
        let report =
            db.with_runtime(|cl, sim| submit_scan(cl, sim, table, range, Some(AggFunc::Count)));
        assert!(report.segments > 0, "stock segments covered");
        assert!(report.rows > 0, "rows scanned");
        assert!(
            report.heat_charged > 10.0,
            "a scan charges operator cost, not one access: {report:?}"
        );
        let snap = db.heat();
        let scanned: Vec<_> = snap.iter().filter(|s| s.scans > 0).collect();
        assert_eq!(scanned.len(), report.segments);
        assert!(scanned.iter().all(|s| s.cost.cpu.as_micros() > 0));
        // The replayed demands occupy the storage node's resources.
        db.run_for(SimDuration::from_secs(5));
    }

    #[test]
    fn count_fallback_charges_one_access_per_segment() {
        let mut db = WattDb::builder()
            .nodes(2)
            .warehouses(2)
            .density(0.02)
            .segment_pages(8)
            .seed(9)
            .initial_data_nodes(&[NodeId(0)])
            .cost_model(None)
            .build();
        let table = TpccTable::Stock.table_id();
        let range = wattdb_tpcc::warehouse_range(0, 2);
        let report =
            db.with_runtime(|cl, sim| submit_scan(cl, sim, table, range, Some(AggFunc::Count)));
        assert!(report.segments > 0);
        let per_seg = report.heat_charged / report.segments as f64;
        let read_weight = db.with_cluster(|c| c.cfg.heat.read_weight);
        assert!(
            (per_seg - read_weight).abs() < 1e-9,
            "count fallback sees one access per segment: {per_seg}"
        );
    }

    #[test]
    fn scan_outside_any_segment_is_a_noop() {
        let mut db = db();
        let table = TpccTable::Stock.table_id();
        let range = KeyRange::new(Key(u64::MAX - 10), Key(u64::MAX - 1));
        let report = db.with_runtime(|cl, sim| submit_scan(cl, sim, table, range, None));
        assert_eq!(report.segments, 0);
        assert_eq!(report.heat_charged, 0.0);
    }
}
