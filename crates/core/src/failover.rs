//! Failover: re-covering the key space after a node loss.
//!
//! The paper's cluster keeps a single copy of every segment, so §3's
//! master can only *move* data off a node that is still alive. With
//! per-segment replication ([`wattdb_replica`]) a node loss becomes
//! survivable: every segment the dead node led is handed to its
//! **most-caught-up follower** (highest acknowledged LSN on the dead
//! leader's shipping cursors — the candidate that loses the least
//! committed history), the master's routing re-points, and the heat-aware
//! planner schedules fresh followers to restore the replication factor.
//!
//! The ownership switch deliberately mirrors the §4.3 physiological
//! protocol's final step — master first, top-index detach/attach, segment
//! directory relocation — but ships no bytes: the follower already holds
//! the segment via log shipping. Only *re-replication* (new followers for
//! the now under-replicated segments) pays wire time.

use wattdb_common::{ByteSize, Lsn, NodeId, SegmentId, SimTime};
use wattdb_sim::{EventFn, Sim};

use crate::cluster::{Cluster, ClusterRc};

/// Promote a follower for every segment the failed node led, re-pointing
/// routing and placement at the winners. Returns `(segment, new leader)`
/// per promotion, in segment order. The failed node must already be
/// marked via [`Cluster::fail_node`].
pub fn promote_orphans(c: &mut Cluster, now: SimTime, failed: NodeId) -> Vec<(SegmentId, NodeId)> {
    let orphaned = c.replicas.led_by(failed);
    let mut promotions = Vec::new();
    for seg in orphaned {
        // Most-caught-up live follower, per the dead leader's own shipping
        // cursors (they survive `fail_node` for exactly this read).
        let candidates: Vec<(NodeId, Lsn)> = c
            .replicas
            .followers_of(seg)
            .iter()
            .filter(|f| !c.failed.contains(f))
            .map(|&f| {
                let acked = c.nodes[failed.raw() as usize]
                    .replica_shipper
                    .acked_lsn(f)
                    .unwrap_or(Lsn::ZERO);
                (f, acked)
            })
            .collect();
        let follower_winner = wattdb_replica::pick_promotion(&candidates);
        // Every follower died with the leader: fall back to the coldest
        // live node (an archive-rebuild stand-in — the sim's record store
        // survives node death, so re-pointing ownership suffices).
        let winner = follower_winner.or_else(|| coldest_live(c, now, failed));
        let Some(winner) = winner else {
            continue; // no live node at all: nothing to re-cover onto
        };
        // Find the partition (and key range) the segment serves on the
        // dead node.
        let Some((src_pid, table, range)) = c.partitions.values().find_map(|p| {
            if p.node != failed {
                return None;
            }
            p.top
                .segments()
                .into_iter()
                .find(|(s, _)| *s == seg)
                .map(|(_, r)| (p.id, p.table, r))
        }) else {
            // The map is stale: the segment no longer lives on the dead
            // node (a migration landed it elsewhere before the failure
            // was noticed). Re-point the map at the actual owner so
            // detection converges instead of re-firing every window.
            match c.seg_dir.get(seg).ok() {
                Some(meta) if meta.node != failed => c.replicas.set_leader(seg, meta.node),
                _ => c.replicas.remove(seg),
            }
            continue;
        };
        // §4.3-style ownership switch, master first. A migration that died
        // mid-flight may still hold its dual pointer for this range: roll
        // it back before re-pointing.
        let dst_pid = c.partition_on(table, winner);
        if c.router.begin_move(table, range, dst_pid, winner).is_err() {
            c.router.abort_move(table, range).ok();
            c.router
                .begin_move(table, range, dst_pid, winner)
                .expect("re-point after rollback");
        }
        c.partitions
            .get_mut(&src_pid)
            .expect("src")
            .top
            .detach(seg)
            .expect("attached");
        c.partitions
            .get_mut(&dst_pid)
            .expect("dst")
            .top
            .attach(seg, range)
            .expect("tiles");
        let n_disks = c.nodes[winner.raw() as usize].disks.len();
        let disk_idx = if n_disks > 1 {
            1 + (seg.raw() as usize % (n_disks - 1))
        } else {
            0
        };
        c.seg_dir
            .relocate(
                seg,
                winner,
                wattdb_common::DiskId::new(winner, disk_idx as u8),
            )
            .expect("relocate");
        c.router.complete_move(table, range).expect("complete move");
        if follower_winner.is_some() {
            c.replicas.promote(seg, winner);
        } else {
            // Rebuilt from scratch: the old set is history.
            c.replicas.set(seg, winner, Vec::new());
        }
        // The new leader's log is now the segment's staleness reference.
        let lsn = c.nodes[winner.raw() as usize].log.last_lsn();
        c.seg_last_write.insert(seg, lsn);
        promotions.push((seg, winner));
    }
    promotions
}

/// Coldest live active node — the archive-rebuild fallback target.
fn coldest_live(c: &Cluster, now: SimTime, failed: NodeId) -> Option<NodeId> {
    use wattdb_energy::NodeState;
    c.nodes
        .iter()
        .filter(|n| n.id != failed && n.state == NodeState::Active && !c.failed.contains(&n.id))
        .map(|n| (n.id, c.heat.node_heat(&c.seg_dir, n.id, now).value()))
        .min_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        })
        .map(|(n, _)| n)
}

/// Restore the replication factor: ask the heat-aware planner for fresh
/// follower placements and ship each segment's footprint to its new host
/// over the wire. The follower joins the map (and the leader's shipping
/// cursors) only when its copy lands; a host or leader that dies in the
/// meantime voids the delivery. Returns the number of copies scheduled.
pub fn schedule_rereplication(cl: &ClusterRc, sim: &mut Sim) -> usize {
    let plan = {
        let c = cl.borrow();
        crate::heat::plan_replicas(&c, sim.now())
    };
    let mut scheduled = 0;
    for p in &plan.placements {
        let (seg, leader) = (p.seg, p.leader);
        for &f in &p.followers {
            let bytes = {
                let c = cl.borrow();
                let Ok(meta) = c.seg_dir.get(seg) else {
                    continue;
                };
                meta.disk_footprint()
                    .as_u64()
                    .max(wattdb_storage::PAGE_SIZE as u64)
                    * c.cfg.io_scale
            };
            let handle = cl.clone();
            let done: EventFn = Box::new(move |_sim| {
                let mut c = handle.borrow_mut();
                c.rereplication_inflight = c.rereplication_inflight.saturating_sub(1);
                // Void if either end died, the host started draining, or
                // leadership moved mid-copy.
                if c.failed.contains(&f)
                    || c.failed.contains(&leader)
                    || c.draining.contains(&f)
                    || c.replicas.leader_of(seg) != Some(leader)
                {
                    return;
                }
                c.replicas.add_follower(seg, f);
                c.rereplication_bytes += bytes;
                c.sync_replica_cursors();
            });
            {
                let mut c = cl.borrow_mut();
                let c = &mut *c;
                c.rereplication_inflight += 1;
                if let Some(span) = c.failover_span {
                    c.telemetry.spans.add_event(
                        span,
                        sim.now(),
                        "re-replicate",
                        vec![
                            (
                                "segment".into(),
                                wattdb_telemetry::AttrValue::U64(seg.raw()),
                            ),
                            ("follower".into(), f.to_string().into()),
                            ("bytes".into(), bytes.into()),
                        ],
                    );
                }
            }
            cl.borrow()
                .net
                .send(sim, leader, f, ByteSize::bytes(bytes), done);
            scheduled += 1;
        }
    }
    scheduled
}

/// Execute a drain's planned follower re-homes: each copy on a draining
/// node leaves the map immediately (the node must be empty of replica
/// duty before it may suspend) and a replacement copy ships from the
/// segment's leader to the planned host. The replacement joins the map
/// only when its bytes land, through the same void-on-death /
/// void-on-leadership-move rules as failover re-replication, and shares
/// its in-flight accounting — the autopilot's background repair pass
/// remains the single reconciliation point for whatever a voided copy
/// leaves under-replicated. Returns the number of copies scheduled.
pub fn schedule_follower_rehomes(
    cl: &ClusterRc,
    sim: &mut Sim,
    rehomes: &[wattdb_planner::FollowerRehome],
) -> usize {
    {
        let mut c = cl.borrow_mut();
        for r in rehomes {
            c.replicas.remove_follower(r.seg, r.from);
        }
        c.sync_replica_cursors();
    }
    let mut scheduled = 0;
    for r in rehomes {
        let (seg, from, to) = (r.seg, r.from, r.to);
        // Ship from the segment's *current* leader: the planned leader may
        // not have landed yet (the drain's leader moves are still in
        // flight), and the copy must come from a live log.
        let (leader, bytes) = {
            let c = cl.borrow();
            let Some(leader) = c.replicas.leader_of(seg) else {
                continue;
            };
            let Ok(meta) = c.seg_dir.get(seg) else {
                continue;
            };
            let bytes = meta
                .disk_footprint()
                .as_u64()
                .max(wattdb_storage::PAGE_SIZE as u64)
                * c.cfg.io_scale;
            (leader, bytes)
        };
        let handle = cl.clone();
        let done: EventFn = Box::new(move |_sim| {
            let mut c = handle.borrow_mut();
            c.rereplication_inflight = c.rereplication_inflight.saturating_sub(1);
            // Void if the host died, started draining itself, or the
            // segment's leadership ended up on the planned host (a leader
            // is never its own follower); background repair re-plans the
            // deficit.
            if c.failed.contains(&to)
                || c.draining.contains(&to)
                || c.replicas.leader_of(seg) == Some(to)
            {
                return;
            }
            c.replicas.add_follower(seg, to);
            c.rereplication_bytes += bytes;
            c.sync_replica_cursors();
        });
        {
            let mut c = cl.borrow_mut();
            let c = &mut *c;
            c.rereplication_inflight += 1;
            // Re-homed-follower events land on the drain's rebalance span
            // so the exported timeline shows the drain as one atomic
            // "move leaders + re-home followers" account.
            if let Some(span) = c.mover.as_ref().and_then(|m| m.span) {
                c.telemetry.spans.add_event(
                    span,
                    sim.now(),
                    "re-home",
                    vec![
                        (
                            "segment".into(),
                            wattdb_telemetry::AttrValue::U64(seg.raw()),
                        ),
                        ("from".into(), from.to_string().into()),
                        ("to".into(), to.to_string().into()),
                        ("bytes".into(), bytes.into()),
                    ],
                );
            }
        }
        cl.borrow()
            .net
            .send(sim, leader, to, ByteSize::bytes(bytes), done);
        scheduled += 1;
    }
    scheduled
}

/// Full failover for one dead node: promote every segment it led, erase
/// it from all follower sets, re-wire shipping cursors, and schedule
/// re-replication for whatever is now under-replicated (both its led
/// segments, which lost their promotee as a follower, and segments it
/// merely followed). Returns the promotions performed.
pub fn handle_failure(cl: &ClusterRc, sim: &mut Sim, failed: NodeId) -> Vec<(SegmentId, NodeId)> {
    let promotions = {
        let mut c = cl.borrow_mut();
        let c = &mut *c;
        let promotions = promote_orphans(c, sim.now(), failed);
        c.replicas.drop_follower_node(failed);
        c.sync_replica_cursors();
        if let Some(span) = c.failover_span {
            for &(seg, winner) in &promotions {
                c.telemetry.spans.add_event(
                    span,
                    sim.now(),
                    "promote",
                    vec![
                        (
                            "segment".into(),
                            wattdb_telemetry::AttrValue::U64(seg.raw()),
                        ),
                        ("leader".into(), winner.to_string().into()),
                    ],
                );
            }
            c.telemetry
                .spans
                .set_attr(span, "promotions", promotions.len().into());
        }
        promotions
    };
    schedule_rereplication(cl, sim);
    promotions
}
