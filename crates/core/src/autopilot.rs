//! The elasticity autopilot: §3.4's master control loop as a first-class
//! subsystem.
//!
//! The paper's cluster is *self*-resizing: every node reports utilization
//! to the master every few seconds, the master compares the reports to
//! thresholds (80 % CPU bound), powers nodes up or down, and repartitions
//! online. [`AutoPilot`] packages that loop — monitoring
//! ([`crate::monitor`]), the threshold policy ([`crate::policy`]),
//! decision application, and post-drain node suspension — behind one
//! handle, and keeps a queryable [`ControlEvent`] log so Fig. 6-style
//! timeseries can be annotated with the exact moments the cluster decided
//! to change size.
//!
//! Engage it through the facade:
//!
//! ```
//! use wattdb_common::{NodeId, SimDuration};
//! use wattdb_core::api::WattDb;
//!
//! let mut db = WattDb::builder()
//!     .nodes(4)
//!     .warehouses(2)
//!     .density(0.01)
//!     .initial_data_nodes(&[NodeId(0)])
//!     .autopilot(true)
//!     .build();
//! db.run_for(SimDuration::from_secs(30));
//! // Nothing overloaded: the controller held steady.
//! assert!(db.events().is_empty());
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use wattdb_common::{NodeId, SimDuration, SimTime};
use wattdb_energy::NodeState;
use wattdb_sim::Sim;

use crate::cluster::ClusterRc;
use crate::monitor::{self, ClusterView};
use crate::policy::{self, Decision, ElasticityPolicy, PolicyConfig};

/// Controller configuration: the policy thresholds plus the monitoring
/// cadence ("the nodes send their monitoring data every few seconds").
#[derive(Debug, Clone, Copy)]
pub struct AutoPilotConfig {
    /// Elasticity thresholds (§3.4; 80 % CPU ceiling by default).
    pub policy: PolicyConfig,
    /// Monitoring window length.
    pub period: SimDuration,
}

impl Default for AutoPilotConfig {
    fn default() -> Self {
        Self {
            policy: PolicyConfig::default(),
            period: SimDuration::from_secs(5),
        }
    }
}

/// Compact snapshot of the monitoring view a decision was based on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewSummary {
    /// Mean CPU utilization across active nodes.
    pub mean_active_cpu: f64,
    /// Hottest active node's CPU utilization.
    pub max_cpu: f64,
    /// Heat-skew ratio at the time (hottest active node's heat over the
    /// mean; see [`ClusterView::heat_skew`]).
    pub heat_skew: f64,
    /// Active nodes at the time.
    pub active_nodes: usize,
    /// Standby nodes at the time.
    pub standby_nodes: usize,
}

impl ViewSummary {
    fn of(view: &ClusterView) -> Self {
        let active: Vec<_> = view.reports.iter().filter(|r| r.active).collect();
        Self {
            mean_active_cpu: view.mean_active_cpu(),
            max_cpu: active.iter().map(|r| r.cpu).fold(0.0, f64::max),
            heat_skew: view.heat_skew(),
            active_nodes: active.len(),
            standby_nodes: view.reports.len() - active.len(),
        }
    }
}

/// What became of a policy decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The decision was applied: nodes powered, a rebalance started.
    Applied,
    /// The decision could not be acted on this window.
    Deferred {
        /// Why it was deferred (e.g. a rebalance already in flight).
        reason: &'static str,
    },
    /// A completed drain let the controller power nodes down to standby.
    Suspended {
        /// Nodes returned to standby.
        nodes: Vec<NodeId>,
    },
}

/// One entry of the controller's decision log.
#[derive(Debug, Clone)]
pub struct ControlEvent {
    /// Virtual time of the monitoring window.
    pub at: SimTime,
    /// The view the decision was based on.
    pub view: ViewSummary,
    /// What the policy decided.
    pub decision: Decision,
    /// Which threshold drove the decision: `"cpu-high"` (scale-out),
    /// `"cpu-low"` (scale-in), `"heat-skew"` (rebalance-in-place),
    /// `"helper"` (helper attach/detach — the skew trigger escalated or
    /// its skew subsided), `"failover"` (a failed node's segments were
    /// promoted to followers), or `""` for bookkeeping entries like
    /// post-drain suspension.
    pub trigger: &'static str,
    /// What the controller did about it.
    pub outcome: Outcome,
    /// For an applied helper attachment, the plan's predicted
    /// net/remote-traffic relief (the summed net-heat of the helped
    /// sources); zero for every other entry.
    pub relief: f64,
    /// For applied decisions, the planner that actually produced the
    /// moves (the heat-aware path can fall back to the fraction
    /// heuristic); otherwise the planner configured at the time.
    pub planner: wattdb_planner::Planner,
    /// The heat signal the view was built from: `"cost"` (scalarized
    /// access cost) or `"count"` (flat weighted access counts).
    pub signal: &'static str,
}

/// The threshold a decision variant answers to.
fn trigger_of(decision: &Decision) -> &'static str {
    match decision {
        Decision::Hold => "",
        Decision::ScaleOut { .. } => "cpu-high",
        Decision::ScaleIn { .. } => "cpu-low",
        Decision::Rebalance { .. } => "heat-skew",
        Decision::AttachHelpers { .. } | Decision::DetachHelpers { .. } => "helper",
        Decision::Promote { .. } => "failover",
    }
}

struct Shared {
    events: Vec<ControlEvent>,
    /// Nodes being drained by an in-flight scale-in; suspended once the
    /// drain's rebalance completes.
    draining: Vec<NodeId>,
    engaged: bool,
}

/// Handle to a running elasticity control loop.
///
/// Cloning shares the underlying state; the loop itself lives inside the
/// simulator's event queue and keeps running until [`disengage`]d.
///
/// [`disengage`]: AutoPilot::disengage
#[derive(Clone)]
pub struct AutoPilot {
    config: AutoPilotConfig,
    shared: Rc<RefCell<Shared>>,
}

impl AutoPilot {
    /// Start the control loop on `cl`: every `config.period` the master
    /// assembles a [`ClusterView`], evaluates the [`ElasticityPolicy`],
    /// applies scale-out/scale-in decisions, and suspends drained nodes.
    pub fn engage(cl: &ClusterRc, sim: &mut Sim, config: AutoPilotConfig) -> AutoPilot {
        let mut policy_cfg = config.policy;
        // Skew rebalances are heat-planned segment moves; logical
        // repartitioning moves key ranges and cannot execute them, so the
        // trigger is disabled outright rather than firing decisions that
        // would be refused forever.
        if cl.borrow().cfg.scheme == crate::cluster::Scheme::Logical {
            policy_cfg.skew_threshold = 0.0;
        }
        let signal = cl.borrow().heat.signal_label();
        let mut policy = ElasticityPolicy::new(policy_cfg);
        let shared = Rc::new(RefCell::new(Shared {
            events: Vec::new(),
            draining: Vec::new(),
            engaged: true,
        }));
        let handle = shared.clone();
        monitor::start_monitoring(cl, sim, config.period, move |cl, sim, view| {
            let mut sh = handle.borrow_mut();
            if !sh.engaged {
                return false;
            }
            let at = sim.now();
            let summary = ViewSummary::of(view);
            // Freeze this window's metrics first: every decision record
            // below shares the window index with the sample it was based
            // on.
            let window = crate::telemetry_sink::sample_window(
                &mut cl.borrow_mut(),
                view,
                at,
                sim.events_executed(),
            );
            let rebalancing = cl.borrow().mover.is_some();
            // Failover detection outranks every threshold: a failed node
            // still referenced by the replica map means orphaned segments
            // and dangling follower slots, and `policy::apply` acts on a
            // promotion even while a rebalance is in flight. One node per
            // window keeps the event log legible.
            let dead = {
                let c = cl.borrow();
                c.failed.iter().copied().find(|&n| c.replicas.references(n))
            };
            if let Some(failed) = dead {
                let orphaned = cl.borrow().replicas.led_by(failed);
                let decision = Decision::Promote { failed, orphaned };
                // Open the failover span on first detection; promotion and
                // re-replication events attach to it until the replication
                // factor is restored.
                {
                    let mut c = cl.borrow_mut();
                    let c = &mut *c;
                    if c.failover_span.is_none() {
                        let span = c.telemetry.start_span(
                            "failover",
                            at,
                            vec![
                                ("failed".into(), failed.to_string().into()),
                                ("rereplicated_base".into(), c.rereplication_bytes.into()),
                            ],
                        );
                        c.failover_span = Some(span);
                    }
                }
                let used = policy::apply(cl, sim, &decision, &policy_cfg);
                if used.is_some() {
                    cl.borrow().debug_assert_replica_invariants();
                }
                let outcome = match used {
                    Some(_) => Outcome::Applied,
                    None => Outcome::Deferred {
                        reason: "no applicable plan",
                    },
                };
                {
                    let mut c = cl.borrow_mut();
                    let span = c.failover_span;
                    crate::telemetry_sink::record_decision(
                        &mut c,
                        window,
                        at,
                        &decision,
                        "failover",
                        crate::telemetry_sink::outcome_label(&outcome),
                        crate::telemetry_sink::signal_vector(view, &policy.signals()),
                        None,
                        span,
                    );
                }
                sh.events.push(ControlEvent {
                    at,
                    view: summary,
                    decision,
                    trigger: "failover",
                    outcome,
                    planner: used.unwrap_or(policy_cfg.planner),
                    signal,
                    relief: 0.0,
                });
            }
            // Background factor repair: a re-replication copy voided
            // mid-flight (its host died, or a migration moved leadership
            // while the bytes were on the wire) leaves segments under the
            // factor with no failover left to re-fire. Once the wire is
            // clear, re-plan whatever is still missing a follower; with
            // no eligible host this plans nothing and costs nothing.
            let needs_repair = {
                let c = cl.borrow();
                c.cfg.replication.enabled()
                    && c.rereplication_inflight == 0
                    && !c
                        .replicas
                        .under_replicated(c.cfg.replication.factor)
                        .is_empty()
            };
            if needs_repair {
                crate::failover::schedule_rereplication(cl, sim);
            }
            // The failover span stays open across windows until no failed
            // node is referenced and the replication factor is restored
            // (immediately, when replication is off).
            let failover_done = {
                let c = cl.borrow();
                c.failover_span.is_some()
                    && !c.failed.iter().any(|&n| c.replicas.references(n))
                    && (!c.cfg.replication.enabled()
                        || (c.rereplication_inflight == 0
                            && c.replicas
                                .under_replicated(c.cfg.replication.factor)
                                .is_empty()))
            };
            if failover_done {
                let mut c = cl.borrow_mut();
                let c = &mut *c;
                if let Some(span) = c.failover_span.take() {
                    let base = c
                        .telemetry
                        .spans
                        .get(span)
                        .and_then(|s| s.attr_f64("rereplicated_base"))
                        .unwrap_or(0.0) as u64;
                    c.telemetry.spans.set_attr(
                        span,
                        "rereplicated_bytes",
                        c.rereplication_bytes.saturating_sub(base).into(),
                    );
                    c.telemetry.spans.end(span, at);
                }
            }
            // A scale-in's drain finished since the last window: §3.4's
            // "shutdown the nodes currently not needed".
            if !rebalancing && !sh.draining.is_empty() {
                let drained = std::mem::take(&mut sh.draining);
                let off = policy::suspend_empty_nodes(cl);
                // The drain episode is over: whatever could not suspend
                // (leftover segments, follower backfills still on the wire)
                // rejoins the plannable pool rather than staying excluded
                // as "draining" forever — the next window re-decides.
                {
                    let mut c = cl.borrow_mut();
                    for n in &drained {
                        c.draining.remove(n);
                    }
                    c.debug_assert_replica_invariants();
                }
                let decision = Decision::ScaleIn { drain: drained };
                let outcome = Outcome::Suspended { nodes: off.clone() };
                {
                    let mut c = cl.borrow_mut();
                    let c = &mut *c;
                    // The power-down span opened at the drain's start
                    // closes here, when the nodes actually reach standby.
                    let span = c.powerdown_span.take();
                    if let Some(sp) = span {
                        c.telemetry.spans.set_attr(
                            sp,
                            "suspended",
                            off.iter().map(|n| n.to_string()).collect::<Vec<_>>().into(),
                        );
                        c.telemetry.spans.end(sp, at);
                    }
                    crate::telemetry_sink::record_decision(
                        c,
                        window,
                        at,
                        &decision,
                        "",
                        crate::telemetry_sink::outcome_label(&outcome),
                        crate::telemetry_sink::signal_vector(view, &policy.signals()),
                        None,
                        span,
                    );
                }
                sh.events.push(ControlEvent {
                    at,
                    view: summary,
                    decision,
                    trigger: "",
                    outcome,
                    planner: policy_cfg.planner,
                    signal,
                    relief: 0.0,
                });
            }
            // Observe *after* any suspension, so a node just returned to
            // standby is immediately available as a scale-out target.
            let (standby, with_data) = observe(cl);
            // The policy manages only the helpers it attached itself: a
            // scripted `rebalance_with_helpers` set belongs to the
            // migration engine (it detaches with its rebalance's
            // completion) and must be invisible here — the policy must
            // neither hold its skew fire for it nor tear it down on
            // subsidence.
            // The pairing is passed through so a single subsided source
            // can release just its own helper (partial detach) while the
            // others keep theirs. A policy helper whose source vanished
            // (failed or drained away) pairs with itself: it reads as a
            // subsided zero-heat source and is released.
            let pairs: Vec<(NodeId, NodeId)> = {
                let c = cl.borrow();
                let mut pairs: Vec<(NodeId, NodeId)> = c
                    .nodes
                    .iter()
                    .filter_map(|n| n.helper.map(|h| (n.id, h)))
                    .filter(|(_, h)| !c.helpers_scripted.contains(h))
                    .collect();
                for &h in &c.helpers_active {
                    if !c.helpers_scripted.contains(&h) && !pairs.iter().any(|&(_, p)| p == h) {
                        pairs.push((h, h));
                    }
                }
                pairs
            };
            let decision =
                policy.evaluate_with_pairs(view, &standby, &with_data, rebalancing, &pairs);
            // `evaluate` froze this window's signal vector; every record
            // below — Hold included — carries it, so the exported timeline
            // can explain *why* each decision (or non-decision) was made.
            let signals = crate::telemetry_sink::signal_vector(view, &policy.signals());
            if decision != Decision::Hold {
                let trigger = trigger_of(&decision);
                if rebalancing {
                    // A drain aimed at a node the in-flight migration is
                    // filling or emptying gets its own refusal reason: the
                    // drain plan would race the mover.
                    let reason = match &decision {
                        Decision::ScaleIn { drain }
                            if drain.iter().any(|n| {
                                crate::migration::nodes_in_flight(&cl.borrow()).contains(n)
                            }) =>
                        {
                            "drain node is part of the active migration"
                        }
                        _ => "rebalance in flight",
                    };
                    let outcome = Outcome::Deferred { reason };
                    {
                        let mut c = cl.borrow_mut();
                        crate::telemetry_sink::record_decision(
                            &mut c,
                            window,
                            at,
                            &decision,
                            trigger,
                            crate::telemetry_sink::outcome_label(&outcome),
                            signals,
                            None,
                            None,
                        );
                    }
                    sh.events.push(ControlEvent {
                        at,
                        view: summary,
                        decision,
                        trigger,
                        outcome,
                        planner: policy_cfg.planner,
                        signal,
                        relief: 0.0,
                    });
                } else {
                    // Record the planner that actually produced the moves —
                    // the heat-aware path can fall back to the fraction
                    // heuristic (logical scheme, or no heat recorded).
                    // A full detach closes the helper span inside apply:
                    // capture the id first so the record still points at it.
                    let helper_span_before = cl.borrow().helper_span;
                    let used = policy::apply(cl, sim, &decision, &policy_cfg);
                    if used.is_some() {
                        cl.borrow().debug_assert_replica_invariants();
                        if let Decision::ScaleIn { drain } = &decision {
                            sh.draining = drain.clone();
                        }
                    }
                    // An applied helper attachment logs the plan's
                    // predicted net-traffic relief (recorded on the
                    // cluster by the attach path).
                    let relief = match (&decision, used.is_some()) {
                        (Decision::AttachHelpers { .. }, true) => cl.borrow().helper_relief,
                        _ => 0.0,
                    };
                    let outcome = match used {
                        Some(_) => Outcome::Applied,
                        // A drain refused because the node still hosts
                        // follower copies that cannot all be re-homed yet
                        // (backfills in flight, or no surviving host with
                        // room) gets its own reason — powering it off would
                        // drop the cluster under its replication factor.
                        None => {
                            let reason = match &decision {
                                Decision::ScaleIn { drain }
                                    if policy::drain_blocked_on_replicas(
                                        &cl.borrow(),
                                        sim.now(),
                                        drain,
                                    ) =>
                                {
                                    "drain node hosts follower replicas"
                                }
                                _ => "no applicable plan",
                            };
                            Outcome::Deferred { reason }
                        }
                    };
                    // Link the record to the span the decision started and
                    // note what the plan predicted: relief for helpers,
                    // planned heat for moves.
                    let (span, predicted) = {
                        let mut c = cl.borrow_mut();
                        let c = &mut *c;
                        match (&decision, used.is_some()) {
                            (Decision::AttachHelpers { .. }, true) => {
                                (c.helper_span, Some(c.helper_relief))
                            }
                            (Decision::DetachHelpers { .. }, true) => (helper_span_before, None),
                            (Decision::Rebalance { .. } | Decision::ScaleOut { .. }, true) => {
                                let m = c.mover.as_ref();
                                (m.and_then(|m| m.span), m.map(|m| m.heat_planned))
                            }
                            (Decision::ScaleIn { drain }, true) => {
                                let m = c.mover.as_ref();
                                let span = m.and_then(|m| m.span);
                                let predicted = m.map(|m| m.heat_planned);
                                // The drain's eventual suspension is its
                                // own power transition, closed when the
                                // emptied nodes reach standby.
                                let pd = c.telemetry.start_span(
                                    "power-down",
                                    at,
                                    vec![(
                                        "drain".into(),
                                        drain
                                            .iter()
                                            .map(|n| n.to_string())
                                            .collect::<Vec<_>>()
                                            .into(),
                                    )],
                                );
                                c.powerdown_span = Some(pd);
                                (span, predicted)
                            }
                            _ => (None, None),
                        }
                    };
                    {
                        let mut c = cl.borrow_mut();
                        crate::telemetry_sink::record_decision(
                            &mut c,
                            window,
                            at,
                            &decision,
                            trigger,
                            crate::telemetry_sink::outcome_label(&outcome),
                            signals,
                            predicted,
                            span,
                        );
                    }
                    sh.events.push(ControlEvent {
                        at,
                        view: summary,
                        decision,
                        trigger,
                        outcome,
                        planner: used.unwrap_or(policy_cfg.planner),
                        signal,
                        relief,
                    });
                }
            } else {
                // Hold is a decision too: the exported timeline shows the
                // signal vector the policy held on, window by window.
                let mut c = cl.borrow_mut();
                crate::telemetry_sink::record_decision(
                    &mut c,
                    window,
                    at,
                    &Decision::Hold,
                    "",
                    "hold".to_string(),
                    signals,
                    None,
                    None,
                );
            }
            true
        });
        AutoPilot { config, shared }
    }

    /// The configuration the loop runs with.
    pub fn config(&self) -> AutoPilotConfig {
        self.config
    }

    /// Snapshot of the decision log so far.
    pub fn events(&self) -> Vec<ControlEvent> {
        self.shared.borrow().events.clone()
    }

    /// Is the loop still scheduled?
    pub fn is_engaged(&self) -> bool {
        self.shared.borrow().engaged
    }

    /// Stop the loop at the next monitoring window; the event log stays
    /// readable.
    pub fn disengage(&self) {
        self.shared.borrow_mut().engaged = false;
    }
}

/// What the master needs beyond the utilization view: which nodes could
/// power on and which hold data.
fn observe(cl: &ClusterRc) -> (Vec<NodeId>, Vec<NodeId>) {
    let c = cl.borrow();
    // A failed node reports as standby (fail_node forces the state) but
    // must never be picked as a scale-out target.
    let standby: Vec<NodeId> = c
        .nodes
        .iter()
        .filter(|n| n.state == NodeState::Standby && !c.failed.contains(&n.id))
        .map(|n| n.id)
        .collect();
    let mut with_data: Vec<NodeId> = c
        .nodes
        .iter()
        .filter(|n| c.seg_dir.on_node(n.id).next().is_some())
        .map(|n| n.id)
        .collect();
    with_data.sort_unstable();
    (standby, with_data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::WattDb;
    use wattdb_common::NodeId;

    fn quiet_db() -> WattDb {
        WattDb::builder()
            .nodes(4)
            .warehouses(2)
            .density(0.01)
            .segment_pages(8)
            .seed(11)
            .initial_data_nodes(&[NodeId(0), NodeId(1)])
            .autopilot(true)
            .build()
    }

    #[test]
    fn idle_cluster_never_scales_out() {
        let mut db = quiet_db();
        db.run_for(SimDuration::from_secs(60));
        // No load at all: CPUs idle below both bounds, but scale-in needs
        // >1 data node *and* actives under the low bound — which holds, so
        // the only permissible decisions are scale-ins, never scale-outs.
        for e in db.events() {
            assert!(
                !matches!(e.decision, Decision::ScaleOut { .. }),
                "unexpected scale-out: {e:?}"
            );
        }
    }

    #[test]
    fn disengage_stops_the_log() {
        let mut db = quiet_db();
        db.run_for(SimDuration::from_secs(30));
        let pilot = db.autopilot().expect("engaged").clone();
        pilot.disengage();
        db.run_for(SimDuration::from_secs(60));
        let frozen = db.events().len();
        db.run_for(SimDuration::from_secs(60));
        assert_eq!(db.events().len(), frozen, "no decisions after disengage");
        assert!(!pilot.is_engaged());
    }

    #[test]
    fn view_summary_aggregates() {
        use crate::monitor::NodeReport;
        let view = ClusterView {
            reports: vec![
                NodeReport {
                    node: NodeId(0),
                    at: SimTime::ZERO,
                    cpu: 0.9,
                    disk: 0.0,
                    net_tx: 0.0,
                    buffer_hit_ratio: 0.0,
                    heat: 0.0,
                    replica_ship_tx: 0.0,
                    replica_fanout: 0.0,
                    active: true,
                },
                NodeReport {
                    node: NodeId(1),
                    at: SimTime::ZERO,
                    cpu: 0.1,
                    disk: 0.0,
                    net_tx: 0.0,
                    buffer_hit_ratio: 0.0,
                    heat: 0.0,
                    replica_ship_tx: 0.0,
                    replica_fanout: 0.0,
                    active: true,
                },
                NodeReport {
                    node: NodeId(2),
                    at: SimTime::ZERO,
                    cpu: 0.0,
                    disk: 0.0,
                    net_tx: 0.0,
                    buffer_hit_ratio: 0.0,
                    heat: 0.0,
                    replica_ship_tx: 0.0,
                    replica_fanout: 0.0,
                    active: false,
                },
            ],
        };
        let s = ViewSummary::of(&view);
        assert!((s.mean_active_cpu - 0.5).abs() < 1e-9);
        assert!((s.max_cpu - 0.9).abs() < 1e-9);
        assert_eq!(s.heat_skew, 0.0, "no heat, no skew");
        assert_eq!(s.active_nodes, 2);
        assert_eq!(s.standby_nodes, 1);
    }
}
