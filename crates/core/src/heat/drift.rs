//! Heat drift: per-segment heat *velocity* and projected-heat views.
//!
//! Historical heat answers "where was the workload"; for insert-heavy
//! TPC-C tables (ORDER/ORDER-LINE/NEW-ORDER) the hot range *advances*
//! through the key space as inserts move on, so by the time a plan built
//! from history executes, the segments it relocated are already cooling.
//! The [`DriftTracker`] closes that gap: at every monitoring window it
//! observes each segment's decayed heat, folds the per-window delta into
//! an EWMA **velocity** (heat units per simulated second, keyed by the
//! segment and carrying its key-range position), and exposes a
//! [`projected`](DriftTracker::projected) view — `max(0, heat +
//! velocity × horizon)` — that the planner consumes instead of raw heat
//! (see [`super::segment_stats_projected`]).
//!
//! Because every segment is observed at the same instants, the EWMA
//! weights are identical across segments and velocity is *linear* in the
//! observed deltas: when total heat is conserved between observations
//! (the hotspot moves rather than grows), velocities sum to zero and the
//! unclamped projection conserves total heat exactly. Clamping at zero
//! (heat cannot go negative) is the only deviation.

use std::collections::HashMap;

use wattdb_common::{
    DriftConfig, HeatVelocity, Key, NodeId, SegmentId, SimDuration, SimTime, TableId,
};
use wattdb_storage::SegmentDirectory;

use super::HeatTable;

/// One segment's drift state: where it sits in the key space, the heat
/// seen at the last observation, and the current velocity estimate.
#[derive(Debug, Clone, Copy)]
pub struct SegmentDrift {
    /// Key-range start at the last observation — the segment's position
    /// in the key space the hotspot drifts through.
    pub pos: Key,
    /// Decayed heat at the last observation.
    pub heat: f64,
    /// EWMA heat velocity.
    pub velocity: HeatVelocity,
    /// When the segment was last observed.
    pub at: SimTime,
}

/// A per-segment drift snapshot row, joined with catalog placement (what
/// [`crate::api::WattDb::projected_heat`] returns).
#[derive(Debug, Clone, Copy)]
pub struct SegmentDriftStat {
    /// Segment id.
    pub seg: SegmentId,
    /// Owning table.
    pub table: TableId,
    /// Node storing the segment.
    pub node: NodeId,
    /// Key-range start (position in the drifting key space).
    pub pos: Key,
    /// Decayed heat at snapshot time.
    pub heat: f64,
    /// Estimated heat velocity.
    pub velocity: HeatVelocity,
    /// Projected heat at the requested horizon (never negative).
    pub projected: f64,
}

/// The cluster-wide drift tracker: velocity estimates for every segment
/// the heat table knows about.
#[derive(Debug)]
pub struct DriftTracker {
    cfg: DriftConfig,
    segments: HashMap<SegmentId, SegmentDrift>,
}

impl DriftTracker {
    /// Empty tracker with the given adaptation/projection configuration.
    pub fn new(cfg: DriftConfig) -> Self {
        Self {
            cfg,
            segments: HashMap::new(),
        }
    }

    /// The drift configuration in force.
    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }

    /// True until the first observation lands.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Observe the whole catalog: fold each segment's heat delta since the
    /// previous observation into its velocity EWMA. The first observation
    /// of a segment only records its baseline (velocity needs two points).
    ///
    /// The EWMA blend weight derives from the elapsed time and the
    /// configured half-life — `α = 1 − 2^(−Δt / half_life)` — so an
    /// irregular observation cadence still forgets history at a constant
    /// rate per simulated second. A zero half-life makes each observation
    /// replace the estimate.
    pub fn observe(&mut self, table: &HeatTable, dir: &SegmentDirectory, now: SimTime) {
        let hl = self.cfg.velocity_half_life;
        for m in dir.iter() {
            let heat = table.heat_of(m.id, now).value();
            let pos = m.key_range.map(|r| r.start).unwrap_or(Key::MIN);
            let e = self.segments.entry(m.id).or_insert(SegmentDrift {
                pos,
                heat,
                velocity: HeatVelocity::ZERO,
                at: now,
            });
            let dt = now.since(e.at);
            if dt.as_micros() > 0 {
                let raw = (heat - e.heat) / dt.as_secs_f64();
                let alpha = if hl.as_micros() == 0 {
                    1.0
                } else {
                    1.0 - (-(dt.as_micros() as f64 / hl.as_micros() as f64)).exp2()
                };
                e.velocity = HeatVelocity(e.velocity.value() * (1.0 - alpha) + raw * alpha);
            }
            e.heat = heat;
            e.pos = pos;
            e.at = now;
        }
    }

    /// The segment's current velocity estimate (zero until observed twice).
    pub fn velocity(&self, seg: SegmentId) -> HeatVelocity {
        self.segments
            .get(&seg)
            .map(|e| e.velocity)
            .unwrap_or(HeatVelocity::ZERO)
    }

    /// Raw drift state for a segment, if it was ever observed.
    pub fn stats(&self, seg: SegmentId) -> Option<&SegmentDrift> {
        self.segments.get(&seg)
    }

    /// Project `current_heat` ahead by `horizon` along the segment's
    /// velocity: `max(0, heat + velocity × horizon)`. A zero horizon (or a
    /// never-observed segment) returns the heat unchanged, so projection
    /// degrades gracefully to historical planning.
    pub fn projected(&self, seg: SegmentId, current_heat: f64, horizon: SimDuration) -> f64 {
        if horizon.as_micros() == 0 {
            return current_heat;
        }
        let v = self.velocity(seg);
        (current_heat + v.over(horizon).value()).max(0.0)
    }

    /// Joined per-segment snapshot over the whole catalog at the given
    /// projection horizon, hottest projected first.
    pub fn snapshot(
        &self,
        table: &HeatTable,
        dir: &SegmentDirectory,
        now: SimTime,
        horizon: SimDuration,
    ) -> Vec<SegmentDriftStat> {
        let mut rows: Vec<SegmentDriftStat> = dir
            .iter()
            .map(|m| {
                let heat = table.heat_of(m.id, now).value();
                SegmentDriftStat {
                    seg: m.id,
                    table: m.table,
                    node: m.node,
                    pos: m.key_range.map(|r| r.start).unwrap_or(Key::MIN),
                    heat,
                    velocity: self.velocity(m.id),
                    projected: self.projected(m.id, heat, horizon),
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.projected
                .partial_cmp(&a.projected)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.seg.cmp(&b.seg))
        });
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattdb_common::{DiskId, HeatConfig, NodeId, TableId};

    /// A heat table with decay disabled, so injected heats behave as plain
    /// counters and drift arithmetic is exact.
    fn counter_table() -> HeatTable {
        HeatTable::new(HeatConfig {
            half_life: SimDuration::ZERO,
            read_weight: 1.0,
            write_weight: 1.0,
            remote_weight: 1.0,
        })
    }

    fn dir_with(n: u64) -> (SegmentDirectory, Vec<SegmentId>) {
        let mut dir = SegmentDirectory::new();
        let segs = (0..n)
            .map(|i| {
                dir.create(
                    TableId(1),
                    NodeId(0),
                    DiskId::new(NodeId(0), 1),
                    Some(wattdb_common::KeyRange::new(
                        Key(i * 1000),
                        Key((i + 1) * 1000),
                    )),
                    16,
                )
            })
            .collect();
        (dir, segs)
    }

    fn tracker(hl_secs: u64, horizon_secs: u64) -> DriftTracker {
        DriftTracker::new(DriftConfig {
            velocity_half_life: SimDuration::from_secs(hl_secs),
            horizon: SimDuration::from_secs(horizon_secs),
        })
    }

    #[test]
    fn first_observation_is_a_baseline() {
        let (dir, segs) = dir_with(2);
        let mut heat = counter_table();
        heat.record_read(segs[0], SimTime::from_secs(1));
        let mut d = tracker(10, 5);
        d.observe(&heat, &dir, SimTime::from_secs(1));
        assert_eq!(d.velocity(segs[0]), HeatVelocity::ZERO);
        assert_eq!(d.stats(segs[0]).unwrap().heat, 1.0);
        assert!(!d.is_empty());
    }

    #[test]
    fn velocity_converges_on_a_linearly_advancing_hotspot() {
        // Segment 1's heat grows by exactly 2.0 per second; the EWMA must
        // converge to +2.0/s while the untouched neighbour stays at zero.
        let (dir, segs) = dir_with(2);
        let mut heat = counter_table();
        let mut d = tracker(2, 5);
        for t in 0..40u64 {
            let now = SimTime::from_secs(t);
            for _ in 0..2 {
                heat.record_read(segs[1], now);
            }
            d.observe(&heat, &dir, now);
        }
        let v = d.velocity(segs[1]).value();
        assert!((v - 2.0).abs() < 1e-3, "converged velocity: {v}");
        assert_eq!(d.velocity(segs[0]), HeatVelocity::ZERO);
        // A cooling segment converges to a negative velocity symmetrically:
        // replay the same ramp as decrements via a fresh table snapshot.
        let mut cooling = counter_table();
        for _ in 0..100 {
            cooling.record_read(segs[0], SimTime::ZERO);
        }
        let mut d2 = tracker(2, 5);
        d2.observe(&cooling, &dir, SimTime::ZERO);
        // No further touches, decay disabled: heat is flat, velocity ~0.
        for t in 1..20u64 {
            d2.observe(&cooling, &dir, SimTime::from_secs(t));
        }
        assert!(d2.velocity(segs[0]).value().abs() < 1e-9);
    }

    #[test]
    fn projection_is_exact_for_constant_velocity() {
        // Once the velocity has converged on a constant-rate ramp, the
        // projected heat equals the heat the ramp will actually reach.
        let (dir, segs) = dir_with(1);
        let mut heat = counter_table();
        let mut d = tracker(1, 10);
        let rate = 3u64; // heat units per second
        let last = 60u64;
        for t in 0..=last {
            let now = SimTime::from_secs(t);
            if t > 0 {
                for _ in 0..rate {
                    heat.record_read(segs[0], now);
                }
            }
            d.observe(&heat, &dir, now);
        }
        let now_heat = heat.heat_of(segs[0], SimTime::from_secs(last)).value();
        let horizon = SimDuration::from_secs(10);
        let projected = d.projected(segs[0], now_heat, horizon);
        let truth = now_heat + (rate * 10) as f64;
        assert!(
            (projected - truth).abs() < 1e-6,
            "projected {projected} vs true future heat {truth}"
        );
        // Zero horizon returns the heat unchanged.
        assert_eq!(d.projected(segs[0], now_heat, SimDuration::ZERO), now_heat);
    }

    #[test]
    fn projection_clamps_at_zero() {
        let (dir, segs) = dir_with(1);
        let mut heat = counter_table();
        let mut d = tracker(0, 10); // zero half-life: last delta wins
        for _ in 0..10 {
            heat.record_read(segs[0], SimTime::ZERO);
        }
        d.observe(&heat, &dir, SimTime::ZERO);
        // Model a cooling segment by observing a *decayed* view: rebuild
        // the table with decay on and let one half-life pass.
        let mut decaying = HeatTable::new(HeatConfig {
            half_life: SimDuration::from_secs(1),
            read_weight: 1.0,
            write_weight: 1.0,
            remote_weight: 1.0,
        });
        for _ in 0..10 {
            decaying.record_read(segs[0], SimTime::ZERO);
        }
        d.observe(&decaying, &dir, SimTime::from_secs(1));
        assert!(d.velocity(segs[0]).value() < 0.0, "cooling detected");
        let h = decaying.heat_of(segs[0], SimTime::from_secs(1)).value();
        let p = d.projected(segs[0], h, SimDuration::from_secs(100));
        assert_eq!(p, 0.0, "projection clamps instead of going negative");
    }

    #[test]
    fn snapshot_ranks_by_projected_heat() {
        // Segment 0 is hot but cooling hard; segment 1 is cooler but
        // heating: at a long enough horizon their projected order flips.
        let (dir, segs) = dir_with(2);
        let mut heat = counter_table();
        let mut d = tracker(0, 10);
        for _ in 0..20 {
            heat.record_read(segs[0], SimTime::ZERO);
        }
        d.observe(&heat, &dir, SimTime::ZERO);
        // One second later: seg 0 unchanged (velocity 0), seg 1 gained 8.
        for _ in 0..8 {
            heat.record_read(segs[1], SimTime::from_secs(1));
        }
        d.observe(&heat, &dir, SimTime::from_secs(1));
        let snap = d.snapshot(
            &heat,
            &dir,
            SimTime::from_secs(1),
            SimDuration::from_secs(10),
        );
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].seg, segs[1], "projected winner leads: {snap:?}");
        assert!((snap[0].projected - (8.0 + 8.0 * 10.0)).abs() < 1e-9);
        assert!((snap[1].projected - 20.0).abs() < 1e-9);
        assert!(snap[0].velocity.value() > 0.0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Projected heat is never negative, and when total heat is
            /// conserved between observations (the hotspot moves rather
            /// than grows) the unclamped projection conserves total heat:
            /// clamping can only add, never lose.
            #[test]
            fn projection_non_negative_and_conserved(
                shifts in proptest::collection::vec(0u64..5, 4..20),
                horizon_secs in 1u64..30,
            ) {
                let (dir, segs) = dir_with(5);
                let mut heat = counter_table();
                // Start with all heat on segment 0.
                let total = 100u64;
                for _ in 0..total {
                    heat.record_read(segs[0], SimTime::ZERO);
                }
                let mut d = tracker(8, horizon_secs);
                d.observe(&heat, &dir, SimTime::ZERO);
                // Each window: "move" `shift` units one segment to the
                // right by crediting the neighbour (decay is off, so the
                // counter-table total only grows; model the move by
                // tracking a virtual ledger of per-segment totals and
                // rebuilding the table).
                let mut ledger = [total, 0, 0, 0, 0];
                for (t, &s) in shifts.iter().enumerate() {
                    let from = t % 4;
                    let moved = s.min(ledger[from]);
                    ledger[from] -= moved;
                    ledger[from + 1] += moved;
                    let mut fresh = counter_table();
                    let now = SimTime::from_secs(t as u64 + 1);
                    for (i, &amount) in ledger.iter().enumerate() {
                        for _ in 0..amount {
                            fresh.record_read(segs[i], now);
                        }
                    }
                    d.observe(&fresh, &dir, now);
                    heat = fresh;
                }
                let now = SimTime::from_secs(shifts.len() as u64);
                let horizon = SimDuration::from_secs(horizon_secs);
                let mut sum_now = 0.0;
                let mut sum_projected = 0.0;
                let mut sum_unclamped = 0.0;
                for &s in &segs {
                    let h = heat.heat_of(s, now).value();
                    let p = d.projected(s, h, horizon);
                    prop_assert!(p >= 0.0, "projected heat negative: {p}");
                    sum_now += h;
                    sum_projected += p;
                    sum_unclamped += h + d.velocity(s).over(horizon).value();
                }
                // Velocities are a shared-weight EWMA of per-window deltas
                // that sum to zero, so the unclamped totals agree exactly.
                prop_assert!(
                    (sum_unclamped - sum_now).abs() < 1e-6,
                    "unclamped projection conserves heat: {sum_unclamped} vs {sum_now}"
                );
                // Clamping only ever adds heat back.
                prop_assert!(sum_projected >= sum_unclamped - 1e-9);
            }

            /// Velocity estimates are independent of *which* segment id
            /// carries the load: relabelling segments relabels velocities.
            #[test]
            fn velocity_tracks_the_segment_not_the_label(
                rate in 1u64..6,
                windows in 3u64..12,
            ) {
                let (dir, segs) = dir_with(3);
                let mut heat = counter_table();
                let mut d = tracker(5, 5);
                for t in 0..windows {
                    let now = SimTime::from_secs(t);
                    for _ in 0..rate {
                        heat.record_read(segs[2], now);
                    }
                    d.observe(&heat, &dir, now);
                }
                prop_assert!(d.velocity(segs[2]).value() > 0.0);
                prop_assert_eq!(d.velocity(segs[0]), HeatVelocity::ZERO);
                prop_assert_eq!(d.velocity(segs[1]), HeatVelocity::ZERO);
            }
        }
    }
}
