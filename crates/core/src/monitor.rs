//! Node monitoring: the feedback loop of §3.4.
//!
//! "Every node is monitoring its utilization: CPU, memory consumption,
//! network I/O, and disk utilization [...] the nodes send their monitoring
//! data every few seconds to the master node." The master compares reports
//! against thresholds and decides on scale-out/scale-in
//! ([`crate::policy`]).

use wattdb_common::{NodeId, SimDuration, SimTime};
use wattdb_energy::NodeState;
use wattdb_sim::{Repeater, Sim};

use crate::cluster::{Cluster, ClusterRc};

/// One node's utilization report for a monitoring window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeReport {
    /// Reporting node.
    pub node: NodeId,
    /// Window end.
    pub at: SimTime,
    /// CPU utilization in \[0,1\].
    pub cpu: f64,
    /// Disk utilization over the window (max across drives).
    pub disk: f64,
    /// Network egress utilization over the window.
    pub net_tx: f64,
    /// Buffer-pool hit ratio in the window (cumulative approximation).
    pub buffer_hit_ratio: f64,
    /// Total decayed heat of the segments stored on the node — the
    /// planner's placement signal. Under the default cost model this is
    /// scalarized access *cost* (CPU/pages/network), so a node running
    /// scans reports hotter than one serving the same number of point
    /// reads; with cost tracing off it is the legacy weighted access
    /// count.
    pub heat: f64,
    /// NIC egress attributable to steady-state replica shipping over the
    /// window, in the same utilization units as `net_tx` (wire time of
    /// the window's shipped replica bytes over the window). An overload
    /// test on raw `net_tx` would count WAL fan-out as workload — this is
    /// the share to subtract first.
    pub replica_ship_tx: f64,
    /// Share of the cluster's routed replica reads this node served over
    /// the window, in \[0,1\] — how much of the read fan-out this node is
    /// currently absorbing. Zero with replication off or no routed reads.
    pub replica_fanout: f64,
    /// Active (vs. standby).
    pub active: bool,
}

/// Collect a report for one node over the window since the last call.
/// All utilization signals — CPU, every drive, and NIC egress — come from
/// probes persisted on the node runtime, so each reports the true
/// utilization of the window rather than the cumulative-since-t=0 average.
pub fn sample_node(c: &mut Cluster, node: NodeId, now: SimTime) -> NodeReport {
    let idx = node.raw() as usize;
    let cpu_res = c.nodes[idx].cpu.clone();
    let cpu = c.nodes[idx].monitor_probe.sample(&cpu_res, now);
    let n_disks = c.nodes[idx].disks.len();
    let mut disk = 0.0f64;
    for d in 0..n_disks {
        let res = c.nodes[idx].disks[d].resource().clone();
        let u = c.nodes[idx].disk_probes[d].sample(&res, now);
        disk = disk.max(u);
    }
    let tx_res = c.net.tx_resource(node).clone();
    let net_tx = c.nodes[idx].net_probe.sample(&tx_res, now);
    // Persist the NIC reading: planners rank helper and replica hosts by
    // interconnect idleness, and the probe itself must only ever be
    // sampled here (it is a stateful window sampler).
    c.net_util[idx] = net_tx;
    let stats = c.nodes[idx].buffer.stats();
    let heat = c.heat.node_heat(&c.seg_dir, node, now).value();
    // Windowed replica-shipping egress: bytes this leader shipped to its
    // followers since the last sample, converted to NIC utilization via
    // wire time over the window.
    let shipped = c.nodes[idx].replica_shipper.shipped_bytes();
    let ship_delta = shipped.saturating_sub(c.nodes[idx].ship_probe_base);
    c.nodes[idx].ship_probe_base = shipped;
    let window = now.since(c.nodes[idx].ship_probe_at);
    c.nodes[idx].ship_probe_at = now;
    let replica_ship_tx = if ship_delta > 0 && window.as_micros() > 0 {
        let wire = c.net.wire_time(wattdb_common::ByteSize::bytes(ship_delta));
        (wire.as_micros() as f64 / window.as_micros() as f64).min(1.0)
    } else {
        0.0
    };
    // Windowed read fan-out share: follower reads this node served over
    // all routed replica reads in the window.
    let served = c.replica_reads_by.get(&node).copied().unwrap_or(0);
    let served_delta = served.saturating_sub(c.nodes[idx].fanout_reads_base);
    c.nodes[idx].fanout_reads_base = served;
    let total_delta = c
        .replica_read_total
        .saturating_sub(c.nodes[idx].fanout_total_base);
    c.nodes[idx].fanout_total_base = c.replica_read_total;
    let replica_fanout = if total_delta > 0 {
        served_delta as f64 / total_delta as f64
    } else {
        0.0
    };
    NodeReport {
        node,
        at: now,
        cpu,
        disk,
        net_tx,
        buffer_hit_ratio: stats.hit_ratio(),
        heat,
        replica_ship_tx,
        replica_fanout,
        active: c.nodes[idx].state == NodeState::Active,
    }
}

/// The master's rolling view of the cluster.
#[derive(Debug, Default)]
pub struct ClusterView {
    /// Latest report per node.
    pub reports: Vec<NodeReport>,
}

impl ClusterView {
    /// Mean CPU utilization across active nodes.
    pub fn mean_active_cpu(&self) -> f64 {
        let active: Vec<_> = self.reports.iter().filter(|r| r.active).collect();
        if active.is_empty() {
            return 0.0;
        }
        active.iter().map(|r| r.cpu).sum::<f64>() / active.len() as f64
    }

    /// Nodes above the CPU bound.
    pub fn overloaded(&self, bound: f64) -> Vec<NodeId> {
        self.reports
            .iter()
            .filter(|r| r.active && r.cpu > bound)
            .map(|r| r.node)
            .collect()
    }

    /// Active nodes below the lower bound (scale-in candidates).
    pub fn underloaded(&self, bound: f64) -> Vec<NodeId> {
        self.reports
            .iter()
            .filter(|r| r.active && r.cpu < bound)
            .map(|r| r.node)
            .collect()
    }

    /// The hottest active node by access heat, if any heat was observed.
    pub fn hottest(&self) -> Option<(NodeId, f64)> {
        self.reports
            .iter()
            .filter(|r| r.active && r.heat > 0.0)
            .map(|r| (r.node, r.heat))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Ratio of the hottest active node's heat to the mean active heat
    /// (1.0 = perfectly balanced; large = skewed). Zero when no heat.
    pub fn heat_skew(&self) -> f64 {
        let active: Vec<f64> = self
            .reports
            .iter()
            .filter(|r| r.active)
            .map(|r| r.heat)
            .collect();
        if active.is_empty() {
            return 0.0;
        }
        let mean = active.iter().sum::<f64>() / active.len() as f64;
        if mean <= 0.0 {
            return 0.0;
        }
        active.iter().copied().fold(0.0, f64::max) / mean
    }
}

/// Start periodic monitoring: every `period`, all nodes report to the
/// master and `on_view` sees the assembled view (policy hook). The loop
/// runs until `on_view` returns `false` — deliberately independent of the
/// client stop flag, so the master keeps watching (and can scale in) after
/// the workload drains.
///
/// Each window also feeds the master's heat-[`drift`](crate::heat::drift)
/// tracker, so any monitored cluster accumulates per-segment velocity
/// estimates for projected-heat planning.
pub fn start_monitoring(
    cl: &ClusterRc,
    sim: &mut Sim,
    period: SimDuration,
    mut on_view: impl FnMut(&ClusterRc, &mut Sim, &ClusterView) -> bool + 'static,
) {
    let handle = cl.clone();
    Repeater::every(sim, period, move |sim| {
        let view = {
            let mut c = handle.borrow_mut();
            // One flat decay pass per window: every heat read below (and
            // any planner read inside the window) hits a zero-elapsed
            // entry instead of paying per-segment decay on demand.
            c.heat.decay_sweep(sim.now());
            let n = c.nodes.len();
            let mut view = ClusterView::default();
            for i in 0..n {
                let report = sample_node(&mut c, NodeId(i as u16), sim.now());
                view.reports.push(report);
            }
            let c = &mut *c;
            c.drift.observe(&c.heat, &c.seg_dir, sim.now());
            view
        };
        on_view(&handle, sim, &view)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(node: u16, cpu: f64, active: bool) -> NodeReport {
        NodeReport {
            node: NodeId(node),
            at: SimTime::ZERO,
            cpu,
            disk: 0.0,
            net_tx: 0.0,
            buffer_hit_ratio: 0.0,
            heat: 0.0,
            replica_ship_tx: 0.0,
            replica_fanout: 0.0,
            active,
        }
    }

    #[test]
    fn view_aggregations() {
        let view = ClusterView {
            reports: vec![
                report(0, 0.9, true),
                report(1, 0.2, true),
                report(2, 0.0, false), // standby excluded
            ],
        };
        assert!((view.mean_active_cpu() - 0.55).abs() < 1e-9);
        assert_eq!(view.overloaded(0.8), vec![NodeId(0)]);
        assert_eq!(view.underloaded(0.3), vec![NodeId(1)]);
    }

    #[test]
    fn empty_view() {
        let view = ClusterView::default();
        assert_eq!(view.mean_active_cpu(), 0.0);
        assert!(view.overloaded(0.8).is_empty());
        assert_eq!(view.hottest(), None);
        assert_eq!(view.heat_skew(), 0.0);
    }

    #[test]
    fn heat_rollup_helpers() {
        let mut a = report(0, 0.5, true);
        a.heat = 9.0;
        let mut b = report(1, 0.5, true);
        b.heat = 3.0;
        let mut standby = report(2, 0.0, false);
        standby.heat = 100.0; // standby excluded from the active view
        let view = ClusterView {
            reports: vec![a, b, standby],
        };
        assert_eq!(view.hottest(), Some((NodeId(0), 9.0)));
        assert!((view.heat_skew() - 1.5).abs() < 1e-9);
    }
}
