//! Threshold-driven elasticity policy (§3.4).
//!
//! "The master checks the incoming performance data to predefined
//! thresholds — with both upper and lower bounds. If an overloaded
//! component is detected, it will decide where to distribute data and
//! whether to power on additional nodes [...] Similarly, underutilized
//! nodes trigger a scale-in protocol." The CPU ceiling is 80 %.

use wattdb_common::NodeId;
use wattdb_energy::NodeState;
use wattdb_planner::Planner;
use wattdb_sim::Sim;

use crate::cluster::{ClusterRc, Scheme};
use crate::heat;
use crate::migration::{rebalancing, start_rebalance, start_rebalance_planned, SegmentMove};
use crate::monitor::ClusterView;

/// Policy thresholds.
#[derive(Debug, Clone, Copy)]
pub struct PolicyConfig {
    /// Scale out when an active node's CPU exceeds this (paper: 0.8).
    pub cpu_high: f64,
    /// Scale in when all active nodes sit below this.
    pub cpu_low: f64,
    /// Consecutive breaching windows before acting (hysteresis).
    pub patience: u32,
    /// Fraction of the hot node's data to offload (legacy
    /// [`Planner::Fraction`] only).
    pub move_fraction: f64,
    /// Which planner turns decisions into segment moves.
    pub planner: Planner,
    /// Allowed per-node overshoot above mean heat before the heat-aware
    /// planner stops shedding (see [`wattdb_planner::PlanConfig::tolerance`]).
    pub heat_tolerance: f64,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            cpu_high: 0.8,
            cpu_low: 0.25,
            patience: 3,
            move_fraction: 0.5,
            planner: Planner::HeatAware,
            heat_tolerance: 0.1,
        }
    }
}

/// What the policy decided for one monitoring window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Nothing to do.
    Hold,
    /// Spread data from the overloaded sources to fresh targets.
    ScaleOut {
        /// Overloaded nodes to relieve.
        sources: Vec<NodeId>,
        /// Standby nodes to power on.
        targets: Vec<NodeId>,
    },
    /// Consolidate data away from underutilized nodes (drain + power off).
    ScaleIn {
        /// Nodes to drain.
        drain: Vec<NodeId>,
    },
}

/// Stateful policy evaluated once per monitoring window.
#[derive(Debug)]
pub struct ElasticityPolicy {
    cfg: PolicyConfig,
    high_streak: u32,
    low_streak: u32,
}

impl ElasticityPolicy {
    /// Policy with the given thresholds.
    pub fn new(cfg: PolicyConfig) -> Self {
        Self {
            cfg,
            high_streak: 0,
            low_streak: 0,
        }
    }

    /// Evaluate one monitoring view. `standby` lists nodes available to
    /// power on; `active_with_data` the nodes currently serving.
    pub fn evaluate(
        &mut self,
        view: &ClusterView,
        standby: &[NodeId],
        active_with_data: &[NodeId],
    ) -> Decision {
        let hot = view.overloaded(self.cfg.cpu_high);
        if !hot.is_empty() {
            // The hot streak counts breaching windows regardless of
            // standby availability: a cluster that has been hot for longer
            // than `patience` acts the moment a standby frees up, instead
            // of restarting its patience from zero.
            self.high_streak += 1;
            self.low_streak = 0;
            if self.high_streak >= self.cfg.patience && !standby.is_empty() {
                self.high_streak = 0;
                let targets: Vec<NodeId> = standby.iter().copied().take(hot.len()).collect();
                return Decision::ScaleOut {
                    sources: hot,
                    targets,
                };
            }
            return Decision::Hold;
        }
        // Scale-in: every active data node under the low bound and more
        // than one of them (never drain the last node).
        let active: Vec<_> = view.reports.iter().filter(|r| r.active).collect();
        let all_low = !active.is_empty()
            && active.iter().all(|r| r.cpu < self.cfg.cpu_low)
            && active_with_data.len() > 1;
        if all_low {
            self.low_streak += 1;
            self.high_streak = 0;
            if self.low_streak >= self.cfg.patience {
                self.low_streak = 0;
                // Drain the highest-numbered data node.
                let drain = active_with_data
                    .iter()
                    .max()
                    .map(|n| vec![*n])
                    .unwrap_or_default();
                return Decision::ScaleIn { drain };
            }
        } else {
            self.low_streak = 0;
            self.high_streak = 0;
        }
        Decision::Hold
    }

    /// Thresholds in force.
    pub fn config(&self) -> &PolicyConfig {
        &self.cfg
    }
}

/// Apply a decision to the cluster: power nodes, plan the moves with the
/// configured [`Planner`], and start migrations. Logical repartitioning
/// moves key ranges rather than segments, so it always uses the legacy
/// fraction path regardless of the planner choice.
///
/// Returns the planner that actually produced the started rebalance —
/// `Planner::Fraction` when the heat-aware path fell back (logical
/// scheme, no heat recorded, or an empty plan) — or `None` when nothing
/// was started.
pub fn apply(
    cl: &ClusterRc,
    sim: &mut Sim,
    decision: &Decision,
    cfg: &PolicyConfig,
) -> Option<Planner> {
    if rebalancing(cl) {
        return None; // one rebalance at a time
    }
    let scheme = cl.borrow().cfg.scheme;
    let heat_aware = cfg.planner == Planner::HeatAware && scheme != Scheme::Logical;
    match decision {
        Decision::Hold => None,
        Decision::ScaleOut { sources, targets } => {
            if targets.is_empty() {
                return None;
            }
            if heat_aware {
                let moves = {
                    let c = cl.borrow();
                    let plan =
                        heat::plan_scale_out(&c, sim.now(), cfg.heat_tolerance, sources, targets);
                    plan.moves.iter().map(SegmentMove::from).collect::<Vec<_>>()
                };
                if !moves.is_empty() {
                    start_rebalance_planned(cl, sim, Planner::HeatAware, moves, targets);
                    return Some(Planner::HeatAware);
                }
                // No heat recorded (or nothing movable improves balance):
                // fall back to the fraction heuristic so the cluster still
                // reacts to the CPU signal.
            }
            start_rebalance(cl, sim, cfg.move_fraction, sources, targets);
            Some(Planner::Fraction)
        }
        Decision::ScaleIn { drain } => {
            // Move *everything* off the drained nodes onto the remaining
            // data nodes, then the migration engine powers nothing off —
            // the caller re-checks emptiness and powers down.
            let targets: Vec<NodeId> = {
                let c = cl.borrow();
                c.active_nodes()
                    .into_iter()
                    .filter(|n| !drain.contains(n) && c.seg_dir.on_node(*n).next().is_some())
                    .collect()
            };
            if targets.is_empty() {
                return None;
            }
            if heat_aware {
                let (moves, complete) = {
                    let c = cl.borrow();
                    let plan = heat::plan_drain(&c, sim.now(), cfg.heat_tolerance, drain, &targets);
                    // A drain must empty its nodes; anything short of that
                    // (shouldn't happen) falls back to the legacy path.
                    let expected: usize = drain.iter().map(|n| c.seg_dir.on_node(*n).count()).sum();
                    let moves: Vec<SegmentMove> =
                        plan.moves.iter().map(SegmentMove::from).collect();
                    let complete = moves.len() == expected;
                    (moves, complete)
                };
                if complete && !moves.is_empty() {
                    start_rebalance_planned(cl, sim, Planner::HeatAware, moves, &targets);
                    return Some(Planner::HeatAware);
                }
            }
            start_rebalance(cl, sim, 1.0, drain, &targets);
            Some(Planner::Fraction)
        }
    }
}

/// Power off every active node that holds no segments and runs no helper
/// duty (post scale-in cleanup). Returns the nodes suspended.
pub fn suspend_empty_nodes(cl: &ClusterRc) -> Vec<NodeId> {
    let mut c = cl.borrow_mut();
    let c = &mut *c;
    let mut off = Vec::new();
    for i in 1..c.nodes.len() {
        // never the master
        let id = NodeId(i as u16);
        let empty = c.seg_dir.on_node(id).next().is_none();
        let is_helper = c.helpers_active.contains(&id);
        if empty && !is_helper && c.nodes[i].state == NodeState::Active {
            c.nodes[i].state = NodeState::Standby;
            off.push(id);
        }
    }
    off
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::NodeReport;
    use wattdb_common::SimTime;

    fn view(cpus: &[(u16, f64)]) -> ClusterView {
        ClusterView {
            reports: cpus
                .iter()
                .map(|&(n, cpu)| NodeReport {
                    node: NodeId(n),
                    at: SimTime::ZERO,
                    cpu,
                    disk: 0.0,
                    net_tx: 0.0,
                    buffer_hit_ratio: 0.9,
                    heat: 0.0,
                    active: true,
                })
                .collect(),
        }
    }

    #[test]
    fn scale_out_after_patience() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 2,
            ..Default::default()
        });
        let hot = view(&[(0, 0.95), (1, 0.5)]);
        let standby = [NodeId(2), NodeId(3)];
        let data = [NodeId(0), NodeId(1)];
        assert_eq!(p.evaluate(&hot, &standby, &data), Decision::Hold);
        match p.evaluate(&hot, &standby, &data) {
            Decision::ScaleOut { sources, targets } => {
                assert_eq!(sources, vec![NodeId(0)]);
                assert_eq!(targets, vec![NodeId(2)]);
            }
            other => panic!("expected scale-out, got {other:?}"),
        }
    }

    #[test]
    fn no_scale_out_without_standby_nodes() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            ..Default::default()
        });
        let hot = view(&[(0, 0.95)]);
        assert_eq!(p.evaluate(&hot, &[], &[NodeId(0)]), Decision::Hold);
    }

    #[test]
    fn hot_streak_survives_standby_scarcity() {
        // The cluster is hot for `patience` windows while no standby
        // exists; the moment one frees up, the policy acts immediately
        // instead of restarting its patience from zero.
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 3,
            ..Default::default()
        });
        let hot = view(&[(0, 0.95)]);
        let data = [NodeId(0)];
        assert_eq!(p.evaluate(&hot, &[], &data), Decision::Hold);
        assert_eq!(p.evaluate(&hot, &[], &data), Decision::Hold);
        assert_eq!(p.evaluate(&hot, &[], &data), Decision::Hold);
        let standby = [NodeId(2)];
        match p.evaluate(&hot, &standby, &data) {
            Decision::ScaleOut { sources, targets } => {
                assert_eq!(sources, vec![NodeId(0)]);
                assert_eq!(targets, vec![NodeId(2)]);
            }
            other => panic!("expected immediate scale-out, got {other:?}"),
        }
    }

    #[test]
    fn scale_in_when_everyone_idles() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 2,
            ..Default::default()
        });
        let idle = view(&[(0, 0.05), (1, 0.1)]);
        let data = [NodeId(0), NodeId(1)];
        assert_eq!(p.evaluate(&idle, &[], &data), Decision::Hold);
        match p.evaluate(&idle, &[], &data) {
            Decision::ScaleIn { drain } => assert_eq!(drain, vec![NodeId(1)]),
            other => panic!("expected scale-in, got {other:?}"),
        }
    }

    #[test]
    fn never_drain_the_last_data_node() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            ..Default::default()
        });
        let idle = view(&[(0, 0.05)]);
        assert_eq!(p.evaluate(&idle, &[], &[NodeId(0)]), Decision::Hold);
    }

    #[test]
    fn hysteresis_resets_on_recovery() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 3,
            ..Default::default()
        });
        let hot = view(&[(0, 0.95)]);
        let cool = view(&[(0, 0.5)]);
        let standby = [NodeId(2)];
        let data = [NodeId(0)];
        p.evaluate(&hot, &standby, &data);
        p.evaluate(&hot, &standby, &data);
        p.evaluate(&cool, &standby, &data); // streak resets
        assert_eq!(p.evaluate(&hot, &standby, &data), Decision::Hold);
    }
}
